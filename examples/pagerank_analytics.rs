//! Graph-analytics scenario: the PageRank rank-update loop of Fig. 3.2 run
//! under every configuration of the evaluation.
//!
//! ```text
//! cargo run --example pagerank_analytics
//! ```
//!
//! PageRank is the paper's motivating irregular workload: the convergence
//! test `diff += |next_pagerank - pagerank|` is a commutative reduction over
//! the whole vertex set, and the rank swap is a pair of in-memory writes —
//! exactly the pattern `Update(.., abs)` / `Update(.., mov)` /
//! `Update(.., const_assign)` offloads.

use ar_experiments::{speedup, ExperimentScale, Matrix};
use ar_types::config::NamedConfig;
use ar_workloads::{SizeClass, Variant, WorkloadKind};

fn main() {
    let scale = ExperimentScale::Quick;
    println!("PageRank on a synthetic power-law graph (scale: {scale})");

    // Show what the generated kernel looks like before running it.
    let generated = WorkloadKind::Pagerank.generate(
        scale.system_config().cores.count,
        SizeClass::Small,
        Variant::Active,
    );
    println!(
        "  generated {} updates across {} threads ({} work items, {} instructions)",
        generated.updates,
        generated.streams.len(),
        generated.total_items(),
        generated.total_instructions()
    );
    println!(
        "  reference convergence diff = {:.6}",
        generated.references.first().map(|(_, v)| *v).unwrap_or(0.0)
    );

    // Run the full configuration sweep of Fig. 5.1 for this one workload.
    let matrix = Matrix::run(&[WorkloadKind::Pagerank], &NamedConfig::ALL, scale);
    let table = speedup::figure_5_1(&matrix, "PageRank runtime speedup over DRAM");
    println!("\n{table}");

    let arf = matrix.report(WorkloadKind::Pagerank, NamedConfig::ArfTid).expect("run exists");
    let hmc = matrix.report(WorkloadKind::Pagerank, NamedConfig::Hmc).expect("run exists");
    println!("ARF-tid vs HMC:");
    println!("  runtime        : {} vs {} network cycles", arf.network_cycles, hmc.network_cycles);
    println!("  off-chip bytes : {} vs {}", arf.data_movement.total(), hmc.data_movement.total());
    println!("  gathered diff  : {:?}", arf.gather_results.first().map(|(_, v)| *v));
}
