//! Quickstart: offload a dot-product reduction with the Active-Routing
//! programming interface and run it through the full-system simulator.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example builds the same kernel twice — once with ordinary loads (what
//! the HMC baseline runs) and once with `Update`/`Gather` offloads — runs
//! both on the scaled-down platform, checks the gathered result against the
//! functional reference, and prints the speedup.

use active_routing::ActiveKernel;
use ar_system::System;
use ar_types::config::{NamedConfig, SystemConfig};
use ar_types::{Addr, ReduceOp};

fn main() {
    let elements = 2048usize;
    let threads = 4usize;

    // Base addresses for the two source vectors and the accumulator. Pages
    // interleave across cubes, so a multi-page vector spreads over the memory
    // network.
    let a_base = Addr::new(0x1000_0000);
    let b_base = Addr::new(0x2000_0000);
    let sum = Addr::new(0x3000_0000);

    // --- Active variant: sum += A[i] * B[i] offloaded with Update/Gather. ---
    let mut active = ActiveKernel::new(threads);
    let a = active.write_array(a_base, &(0..elements).map(|i| (i % 7) as f64).collect::<Vec<_>>());
    let b = active.write_array(b_base, &(0..elements).map(|i| (i % 5) as f64).collect::<Vec<_>>());
    for i in 0..elements {
        active.update(i % threads, ReduceOp::Mac, a[i], Some(b[i]), None, sum);
    }
    active.gather_all(sum, ReduceOp::Mac);
    let expected = active.reference(sum).expect("the kernel records a reference result");

    // --- Baseline variant: the same loop with ordinary loads. ---
    let mut baseline = ActiveKernel::new(threads);
    baseline.write_array(a_base, &(0..elements).map(|i| (i % 7) as f64).collect::<Vec<_>>());
    baseline.write_array(b_base, &(0..elements).map(|i| (i % 5) as f64).collect::<Vec<_>>());
    for i in 0..elements {
        let t = i % threads;
        baseline.load(t, a[i]);
        baseline.load(t, b[i]);
        baseline.compute(t, 2);
    }
    for t in 0..threads {
        baseline.atomic_rmw(t, sum);
    }

    // --- Run both on the scaled-down platform. ---
    let mut cfg = SystemConfig::small();
    cfg.caches.l1_bytes = 2 * 1024;
    cfg.caches.l2_bytes = 8 * 1024;
    cfg.max_cycles = 10_000_000;

    let hmc_cfg = cfg.clone().named(NamedConfig::Hmc);
    let hmc_report = System::new(hmc_cfg, baseline.into_streams(), Vec::new())
        .expect("valid configuration")
        .with_labels("quickstart", "HMC")
        .run();

    let arf_cfg = cfg.named(NamedConfig::ArfTid);
    let memory = active.memory_image();
    let arf_report = System::new(arf_cfg, active.into_streams(), memory)
        .expect("valid configuration")
        .with_labels("quickstart", "ARF-tid")
        .run();

    let measured = arf_report.gather_result(sum).expect("the gather completed");
    println!("Active-Routing quickstart: sum += A[i] * B[i] over {elements} elements");
    println!("  reference result        : {expected:.1}");
    println!("  in-network reduction    : {measured:.1}");
    println!("  HMC baseline runtime    : {} network cycles", hmc_report.network_cycles);
    println!("  ARF-tid runtime         : {} network cycles", arf_report.network_cycles);
    println!("  speedup (ARF-tid / HMC) : {:.2}x", arf_report.speedup_over(&hmc_report));
    println!(
        "  updates offloaded       : {} ({} gathers)",
        arf_report.updates_offloaded, arf_report.gathers_offloaded
    );
    assert!((measured - expected).abs() < 1e-6 * expected.abs().max(1.0));
}
