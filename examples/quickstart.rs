//! Quickstart: define a custom dot-product workload with the Active-Routing
//! programming interface, run it through the `SimulationBuilder`, stream
//! statistics with an observer, and compare against the HMC baseline.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The `Workload` implementation builds the same kernel two ways — ordinary
//! loads (what the HMC baseline runs) and `Update`/`Gather` offloads — so the
//! builder's scheme-implied variant selection picks the right one per
//! configuration. The gathered result is checked against the functional
//! reference the kernel records.

use active_routing::ActiveKernel;
use ar_system::{runner, SampleRecorder, Simulation};
use ar_types::config::{NamedConfig, SystemConfig};
use ar_types::{Addr, ReduceOp};
use ar_workloads::{GeneratedWorkload, SizeClass, Variant, Workload};

/// `sum += A[i] * B[i]` over `elements` values, as a pluggable workload.
struct DotProduct {
    elements: usize,
}

impl Workload for DotProduct {
    fn name(&self) -> &str {
        "dot_product"
    }

    fn generate(&self, threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
        let elements = self.elements * size.factor();
        let a_values: Vec<f64> = (0..elements).map(|i| (i % 7) as f64).collect();
        let b_values: Vec<f64> = (0..elements).map(|i| (i % 5) as f64).collect();
        let sum = Addr::new(0x3000_0000);

        let mut kernel = ActiveKernel::new(threads);
        // Pages interleave across cubes, so multi-page vectors spread over
        // the memory network.
        let a = kernel.write_array(Addr::new(0x1000_0000), &a_values);
        let b = kernel.write_array(Addr::new(0x2000_0000), &b_values);
        if variant.offloads() {
            for i in 0..elements {
                kernel.update(i % threads, ReduceOp::Mac, a[i], Some(b[i]), None, sum);
            }
            kernel.gather_all(sum, ReduceOp::Mac);
        } else {
            for i in 0..elements {
                let t = i % threads;
                kernel.load(t, a[i]);
                kernel.load(t, b[i]);
                kernel.compute(t, 2);
            }
            for t in 0..threads {
                kernel.atomic_rmw(t, sum);
            }
        }
        GeneratedWorkload::from_kernel("dot_product", variant, kernel)
    }
}

fn main() {
    let mut cfg = SystemConfig::small();
    cfg.caches.l1_bytes = 2 * 1024;
    cfg.caches.l2_bytes = 8 * 1024;
    cfg.max_cycles = 10_000_000;

    // HMC baseline: the builder derives Variant::Baseline from the scheme.
    let hmc_report = Simulation::builder()
        .config(cfg.clone())
        .named(NamedConfig::Hmc)
        .workload(DotProduct { elements: 2048 })
        .size(SizeClass::Tiny)
        .build()
        .expect("valid configuration")
        .run();

    // ARF-tid: the offloaded variant, with an observer streaming IPC samples.
    let sim = Simulation::builder()
        .config(cfg)
        .named(NamedConfig::ArfTid)
        .workload(DotProduct { elements: 2048 })
        .size(SizeClass::Tiny)
        .observer(SampleRecorder::new())
        .build()
        .expect("valid configuration");
    let references = sim.references().to_vec();
    let arf_report = sim.run();

    let (sum, expected) = references.first().expect("the kernel records a reference");
    let measured = arf_report.gather_result(*sum).expect("the gather completed");
    println!("Active-Routing quickstart: sum += A[i] * B[i]");
    println!("  reference result        : {expected:.1}");
    println!("  in-network reduction    : {measured:.1}");
    println!("  HMC baseline runtime    : {} network cycles", hmc_report.network_cycles);
    println!("  ARF-tid runtime         : {} network cycles", arf_report.network_cycles);
    println!("  speedup (ARF-tid / HMC) : {:.2}x", arf_report.speedup_over(&hmc_report));
    println!(
        "  updates offloaded       : {} ({} gathers)",
        arf_report.updates_offloaded, arf_report.gathers_offloaded
    );
    assert_eq!(runner::verify_gathers(&arf_report, &references), 0);
}
