//! Simulation as a service: an in-process sweep server with its
//! content-addressed report cache, driven by two TCP clients.
//!
//! The session below shows every disposition a cell can get — computed
//! fresh (`queued`), served from the persistent cache (`hit`), and joined
//! to a run another client already has in flight (`joined`) — plus the
//! live progress stream and the byte-identity of cached and fresh reports.
//!
//! ```text
//! cargo run --release --example sweep_client
//! ```

use ar_serve::{CellStatus, Event, ServerConfig, SweepClient, SweepServer};
use ar_system::CellKey;
use ar_types::config::{NamedConfig, SystemConfig};
use ar_workloads::SizeClass;

fn quick_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.max_cycles = 2_000_000;
    cfg
}

fn main() -> std::io::Result<()> {
    // Bind an ephemeral port; `ar-experiments serve` wraps the same types
    // behind a command line for a long-running daemon.
    let cache = std::env::temp_dir().join(format!("ar-sweep-example-{}", std::process::id()));
    let server = SweepServer::bind("127.0.0.1:0", ServerConfig::new(quick_cfg(), &cache))
        .expect("bind an ephemeral port")
        .spawn();
    println!("server on {} (cache {})", server.addr(), cache.display());

    let mut client = SweepClient::connect(server.addr())?;
    println!(
        "connected: protocol ok, cache schema v{}, base hash {:016x}\n",
        client.schema(),
        client.base_hash()
    );

    // One cell, observed: `running` marks the start of the simulation and
    // `progress` streams windowed IPC straight out of the kernel.
    let cell = CellKey::new("pagerank", NamedConfig::ArfTid, SizeClass::Small);
    println!("fresh run of {} with progress streaming:", cell.label());
    let (outcomes, totals) =
        client.run_cells_observed(std::slice::from_ref(&cell), true, |event| match event {
            Event::Running { .. } => println!("  running ..."),
            Event::Progress { network_cycle, window_ipc, .. } => {
                println!("  cycle {network_cycle:>8}  window IPC {window_ipc:.3}");
            }
            _ => {}
        })?;
    let fresh = &outcomes[0];
    assert_eq!(fresh.status, CellStatus::Queued, "a cold cache computes");
    println!(
        "  done: {} network cycles, {} updates offloaded ({} computed)\n",
        fresh.report.network_cycles, fresh.report.updates_offloaded, totals.runs
    );

    // The same cell again: a cache hit, byte-identical to the fresh report.
    let cached = &client.run_cells(std::slice::from_ref(&cell))?[0];
    assert_eq!(cached.status, CellStatus::Hit);
    assert_eq!(
        fresh.report.to_json().render(),
        cached.report.to_json().render(),
        "cached reports are byte-identical to fresh ones"
    );
    println!("second request: served from the cache, byte-identical report\n");

    // Two clients, one run: while this client's batch occupies the server,
    // a second connection asking for an in-flight cell joins it instead of
    // simulating again.
    let slow = CellKey::new("reduce", NamedConfig::ArfTid, SizeClass::Small);
    let addr = server.addr();
    let racer = std::thread::spawn(move || {
        let mut second = SweepClient::connect(addr).expect("second client connects");
        while second.stats().expect("stats").in_flight == 0 {
            std::thread::yield_now();
        }
        let slow = CellKey::new("reduce", NamedConfig::ArfTid, SizeClass::Small);
        second.run_cells(std::slice::from_ref(&slow)).expect("joined run")
    });
    let mine = client.run_cells(std::slice::from_ref(&slow))?;
    let theirs = racer.join().expect("second client finishes");
    println!("concurrent request for {}:", slow.label());
    println!("  first client:  {} (shared: {})", mine[0].status.name(), mine[0].shared);
    println!("  second client: {} (shared: {})", theirs[0].status.name(), theirs[0].shared);
    assert_eq!(mine[0].report, theirs[0].report, "one run, one report, two clients");

    let stats = client.stats()?;
    println!(
        "\nserver counters: {} runs, {} cache hits, {} dedup joins",
        stats.runs, stats.cache_hits, stats.dedup_joins
    );
    server.shutdown()?;
    let _ = std::fs::remove_dir_all(&cache);
    Ok(())
}
