//! Machine-learning scenario: the multiply-accumulate aggregation at the
//! heart of neural-network inference (`h[j] += input[i] * weight[j][i]`),
//! the `sum += input[i] * weight[j]` example from the paper's introduction.
//!
//! ```text
//! cargo run --example ml_inference_mac
//! ```
//!
//! Runs the `backprop` feed-forward benchmark and the `mac`/`rand_mac`
//! microbenchmarks under the HMC baseline and both Active-Routing-Forest
//! schemes, and reports runtime, update latency breakdown and data movement.

use ar_experiments::{latency, speedup, traffic, ExperimentScale, Matrix};
use ar_types::config::NamedConfig;
use ar_workloads::WorkloadKind;

fn main() {
    let scale = ExperimentScale::Quick;
    let workloads = [WorkloadKind::Backprop, WorkloadKind::Mac, WorkloadKind::RandMac];
    let configs = [
        NamedConfig::Dram,
        NamedConfig::Hmc,
        NamedConfig::Art,
        NamedConfig::ArfTid,
        NamedConfig::ArfAddr,
    ];

    println!("Deep-learning aggregation workloads (scale: {scale})\n");
    let matrix = Matrix::run(&workloads, &configs, scale);

    println!("{}", speedup::figure_5_1(&matrix, "Runtime speedup over DRAM"));
    println!("{}", latency::figure_5_2(&matrix, "Update roundtrip latency breakdown (cycles)"));
    println!("{}", traffic::figure_5_4(&matrix, "Data movement normalized to HMC"));

    // Highlight the per-flow behaviour the paper's introduction motivates.
    let backprop = matrix.report(WorkloadKind::Backprop, NamedConfig::ArfTid).expect("run exists");
    println!("backprop under ARF-tid:");
    println!("  updates offloaded : {}", backprop.updates_offloaded);
    println!("  gathers           : {}", backprop.gathers_offloaded);
    println!("  ARE ALU ops       : {}", backprop.are_ops);
    println!(
        "  hidden-unit flows gathered : {} (first value {:.3})",
        backprop.gather_results.len(),
        backprop.gather_results.first().map(|(_, v)| *v).unwrap_or(0.0)
    );
}
