//! Parallel experiment sweeps: the 5-config × 3-workload quick-scale matrix
//! fanned out over worker threads, with a determinism check against the
//! serial run and a wall-clock comparison.
//!
//! ```text
//! cargo run --release --example sweep_parallel
//! ```

use ar_system::{Sweep, SweepResults};
use ar_types::config::{NamedConfig, SystemConfig};
use ar_workloads::{SizeClass, WorkloadKind};
use std::time::Instant;

fn quick_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.caches.l1_bytes = 2 * 1024;
    cfg.caches.l2_bytes = 8 * 1024;
    cfg.max_cycles = 10_000_000;
    cfg
}

fn sweep(threads: usize) -> (SweepResults, f64) {
    let start = Instant::now();
    let results = Sweep::new(quick_cfg())
        .configs(NamedConfig::ALL)
        .workloads([WorkloadKind::Pagerank, WorkloadKind::Spmv, WorkloadKind::RandMac])
        .size(SizeClass::Small)
        .threads(threads)
        .run()
        .expect("valid sweep");
    (results, start.elapsed().as_secs_f64())
}

fn main() {
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    // Exercise the threaded path even on a single-CPU machine; the wall-clock
    // win only materialises with real cores to spread over.
    let workers = cores.clamp(2, 8);
    println!("Sweeping 3 workloads x {} configs (quick scale)\n", NamedConfig::ALL.len());

    let (serial, serial_secs) = sweep(1);
    println!("  serial   (1 worker ): {serial_secs:.3} s for {} runs", serial.len());
    let (parallel, parallel_secs) = sweep(workers);
    println!("  parallel ({workers} workers): {parallel_secs:.3} s for {} runs", parallel.len());
    println!("  speedup: {:.2}x", serial_secs / parallel_secs.max(1e-9));
    if cores == 1 {
        println!("  (single-CPU machine: no wall-clock win is possible here)");
    }

    // Determinism: the parallel reports are identical to the serial ones,
    // cell by cell, in the same order.
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.config, b.config);
        assert_eq!(a.report, b.report, "{}/{} diverged", a.workload, a.config);
    }
    println!("  all {} parallel reports are byte-identical to the serial sweep\n", serial.len());

    // The sweep is the engine behind the figures: summarise one metric here.
    println!("network cycles per run:");
    for workload in ["pagerank", "spmv", "rand_mac"] {
        let row: Vec<String> = NamedConfig::ALL
            .iter()
            .map(|&c| {
                let report = serial.report(workload, c, SizeClass::Small).expect("swept");
                format!("{c}={}", report.network_cycles)
            })
            .collect();
        println!("  {workload:<9} {}", row.join("  "));
    }
}
