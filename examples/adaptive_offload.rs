//! Dynamic offloading case study (Section 5.4, Fig. 5.8): LU decomposition
//! whose early phases have good locality (better on the host) and whose late
//! phases have long, low-reuse reductions (better offloaded).
//!
//! ```text
//! cargo run --example adaptive_offload
//! ```

use ar_experiments::{adaptive::AdaptiveStudy, ExperimentScale};
use ar_types::config::NamedConfig;

fn main() {
    let scale = ExperimentScale::Quick;
    println!("LUD phase analysis and dynamic offloading (scale: {scale})\n");

    let study = AdaptiveStudy::run(scale);
    println!("{}", study.speedup_table("Speedup over the HMC baseline"));

    // Print the windowed IPC series (the left panel of Fig. 5.8) for the two
    // always-on configurations.
    for config in [NamedConfig::Hmc, NamedConfig::ArfTid, NamedConfig::ArfTidAdaptive] {
        let report = study.report(config).expect("configuration was run");
        let series = &report.ipc_series;
        println!(
            "{config}: {} network cycles, {} updates offloaded, {} IPC samples",
            report.network_cycles,
            report.updates_offloaded,
            series.len()
        );
        if !series.is_empty() {
            let preview: Vec<String> =
                series.points().iter().take(8).map(|(_, ipc)| format!("{ipc:.2}")).collect();
            println!("  IPC (first windows): {}", preview.join(", "));
        }
    }

    let hmc = study.report(NamedConfig::Hmc).unwrap();
    let adaptive = study.report(NamedConfig::ArfTidAdaptive).unwrap();
    let always = study.report(NamedConfig::ArfTid).unwrap();
    println!(
        "\nadaptive offloads {} of the {} updates the always-offload scheme issues",
        adaptive.updates_offloaded, always.updates_offloaded
    );
    println!(
        "speedup over HMC: always-offload {:.2}x, adaptive {:.2}x",
        always.speedup_over(hmc),
        adaptive.speedup_over(hmc)
    );
}
