//! A minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment of this workspace has no network access, so the real
//! `criterion` crate cannot be fetched from crates.io. This shim implements
//! the small API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — and reports wall-clock statistics (min / mean / max
//! over the configured number of samples) to stdout. Swapping back to the
//! real crate is a one-line change in `Cargo.toml`; no bench source needs to
//! change.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    /// Wall-clock time measurement (the only measurement the shim supports).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
            _measurement: PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark: `routine` is called once per sample with a
    /// [`Bencher`] and must call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // One untimed warm-up sample.
        let mut bencher = Bencher { elapsed: Duration::ZERO };
        routine(&mut bencher);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { elapsed: Duration::ZERO };
            routine(&mut bencher);
            samples.push(bencher.elapsed);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{:<32} time: [{:>12.6?} {:>12.6?} {:>12.6?}]  ({} samples)",
            self.name,
            id,
            min,
            mean,
            max,
            samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark routine to time its hot loop.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (the shim runs exactly one iteration
    /// per sample; the real criterion auto-tunes the iteration count).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        drop(black_box(out));
    }
}

/// Declares a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
