//! Simulation kernel for the Active-Routing reproduction.
//!
//! The full-system model in `ar-system` is cycle-driven: every component is
//! ticked once per memory-network cycle. This crate provides the shared
//! building blocks those components are made of:
//!
//! * [`queue::LatencyQueue`] — items that become visible after a fixed or
//!   per-item delay (pipelines, wire latency, DRAM access completion);
//! * [`queue::BandwidthLink`] — a bandwidth-limited, in-order link that
//!   charges serialization delay per byte;
//! * [`events::EventQueue`] — a classic future-event list for components that
//!   prefer event-driven bookkeeping;
//! * [`stats`] — counters, histograms and windowed time series used to build
//!   every figure of the evaluation;
//! * [`rng`] — a deterministic RNG facade so simulations are reproducible.
//!
//! # Example
//!
//! ```
//! use ar_sim::queue::LatencyQueue;
//!
//! let mut q = LatencyQueue::new();
//! q.push_at(5, "memory response");
//! assert!(q.pop_ready(4).is_none());
//! assert_eq!(q.pop_ready(5), Some("memory response"));
//! ```

pub mod events;
pub mod queue;
pub mod rng;
pub mod stats;

pub use events::EventQueue;
pub use queue::{BandwidthLink, LatencyQueue};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, Stats, TimeSeries};
