//! Simulation kernel for the Active-Routing reproduction.
//!
//! The full-system model in `ar-system` is event-driven: components request
//! their next wake-up cycle through the [`component::Component`] trait and a
//! [`component::Scheduler`] calendar, so only components with pending work
//! are visited. This crate provides that scheduling layer plus the shared
//! building blocks the components are made of:
//!
//! * [`component`] — the [`component::Component`] trait,
//!   [`component::NextWake`] requests and the keyed
//!   [`component::Scheduler`] driving the event loop;
//! * [`shard`] — the [`shard::ShardedScheduler`] (per-shard wake calendars
//!   with a deterministic merged pop) and the persistent
//!   [`shard::WorkerPool`] that tick independent shards concurrently;
//! * [`queue::LatencyQueue`] — items that become visible after a fixed or
//!   per-item delay (pipelines, wire latency, DRAM access completion);
//! * [`queue::BandwidthLink`] — a bandwidth-limited, in-order link that
//!   charges serialization delay per byte;
//! * [`events::EventQueue`] — the future-event list underlying the scheduler;
//! * [`stats`] — counters, histograms and windowed time series used to build
//!   every figure of the evaluation;
//! * [`rng`] — a deterministic RNG facade so simulations are reproducible.
//!
//! # Example
//!
//! ```
//! use ar_sim::queue::LatencyQueue;
//!
//! let mut q = LatencyQueue::new();
//! q.push_at(5, "memory response");
//! assert!(q.pop_ready(4).is_none());
//! assert_eq!(q.pop_ready(5), Some("memory response"));
//! ```

pub mod component;
pub mod events;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;

pub use component::{Component, NextWake, SchedCtx, Scheduler};
pub use events::EventQueue;
pub use queue::{BandwidthLink, LatencyQueue};
pub use rng::SimRng;
pub use shard::{Horizon, ShardedScheduler, TimestampedOutbox, WorkerPool};
pub use stats::{Counter, Histogram, Stats, TimeSeries};
