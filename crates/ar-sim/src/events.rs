//! A classic future-event list for event-driven components.

use ar_types::Cycle;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Scheduled<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A future-event list: events are scheduled for a cycle and popped in
/// chronological order (FIFO among events scheduled for the same cycle).
///
/// # Example
///
/// ```
/// use ar_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "refresh");
/// q.schedule(3, "respond");
/// assert_eq!(q.pop_next(), Some((3, "respond")));
/// assert_eq!(q.pop_next(), Some((10, "refresh")));
/// assert_eq!(q.pop_next(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Last cycle popped; used to detect scheduling in the past.
    last_popped: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, last_popped: 0 }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at the given cycle.
    ///
    /// Scheduling an event earlier than the last popped event is allowed but
    /// it will be delivered immediately after (time does not rewind).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at: at.max(self.last_popped), seq, event });
    }

    /// Pops the chronologically next event together with its cycle.
    pub fn pop_next(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|s| {
            self.last_popped = s.at;
            (s.at, s.event)
        })
    }

    /// Pops the next event only if it is scheduled at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, E)> {
        if self.heap.peek().map(|s| s.at <= now).unwrap_or(false) {
            self.pop_next()
        } else {
            None
        }
    }

    /// The cycle of the next scheduled event, if any.
    pub fn next_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|s| s.at)
    }

    /// Visits every pending event with its scheduled cycle, in arbitrary
    /// order. Meant for whole-queue folds (e.g. per-destination minimum
    /// arrival bounds); use `pop_next`/`pop_due` for chronological access.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &E)> {
        self.heap.iter().map(|s| (s.at, &s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The cycle of the most recently popped event (the queue's notion of
    /// "now", which `schedule` clamps to).
    pub fn last_popped(&self) -> Cycle {
        self.last_popped
    }

    /// Visits pending events ordered by (cycle, scheduling order) — exactly
    /// the order `pop_next` would deliver them. Checkpoint snapshots persist
    /// this order and replay it through `schedule` on a queue primed with
    /// [`EventQueue::restore_last_popped`]; fresh sequence numbers assigned in
    /// replay order preserve same-cycle FIFO delivery.
    pub fn state_entries(&self) -> Vec<(Cycle, &E)> {
        let mut pending: Vec<&Scheduled<E>> = self.heap.iter().collect();
        pending.sort_by_key(|s| (s.at, s.seq));
        pending.into_iter().map(|s| (s.at, &s.event)).collect()
    }

    /// Restores the "now" watermark from a checkpoint. Call before replaying
    /// the serialized events so `schedule`'s past-clamp behaves identically
    /// to the snapshotted queue.
    pub fn restore_last_popped(&mut self, last_popped: Cycle) {
        self.last_popped = last_popped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 'b');
        q.schedule(1, 'a');
        q.schedule(9, 'c');
        assert_eq!(q.pop_next(), Some((1, 'a')));
        assert_eq!(q.pop_next(), Some((5, 'b')));
        assert_eq!(q.pop_next(), Some((9, 'c')));
    }

    #[test]
    fn same_cycle_events_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop_next().unwrap().1, 1);
        assert_eq!(q.pop_next().unwrap().1, 2);
        assert_eq!(q.pop_next().unwrap().1, 3);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(10, "later");
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.pop_due(10), Some((10, "later")));
        assert!(q.is_empty());
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        assert_eq!(q.pop_next(), Some((10, "a")));
        q.schedule(5, "late");
        assert_eq!(q.pop_next(), Some((10, "late")));
    }

    #[test]
    fn iter_visits_all_pending_events() {
        let mut q = EventQueue::new();
        q.schedule(7, "a");
        q.schedule(3, "b");
        q.schedule(7, "c");
        let mut seen: Vec<(Cycle, &&str)> = q.iter().collect();
        seen.sort_by_key(|(at, e)| (*at, **e));
        assert_eq!(
            seen.iter().map(|(at, e)| (*at, **e)).collect::<Vec<_>>(),
            vec![(3, "b"), (7, "a"), (7, "c")]
        );
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn next_at_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_at(), None);
        q.schedule(7, ());
        q.schedule(3, ());
        assert_eq!(q.next_at(), Some(3));
        assert_eq!(q.len(), 2);
    }
}
