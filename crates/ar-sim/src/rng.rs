//! Deterministic random number generation for reproducible simulations.
//!
//! All randomness in the workspace (workload data generation, random access
//! patterns in `rand_reduce` / `rand_mac`, synthetic graph construction) goes
//! through [`SimRng`], a self-contained xoshiro256++ generator seeded through
//! SplitMix64, so a run is fully determined by its configuration and seed and
//! the workspace needs no external RNG crate.

use ar_types::json::{Json, JsonError};

/// A deterministic, seedable random number generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step, used to expand a 64-bit seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state =
            [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)];
        SimRng { state, seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit output of the generator.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Widening-multiply range reduction (Lemire); bias is negligible for
        // simulation purposes and the mapping is deterministic.
        let x = self.next_u64() as u128;
        ((x * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "len must be non-zero");
        self.next_below(len as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Bernoulli draw with probability `p` of returning true.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Forks a new generator whose stream is independent of, but determined
    /// by, this one (used to give each thread / component its own stream).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(seed)
    }

    /// The raw generator state together with the originating seed.
    pub fn state(&self) -> ([u64; 4], u64) {
        (self.state, self.seed)
    }

    /// Rebuilds a generator from a captured [`SimRng::state`], resuming the
    /// stream exactly where the snapshot left it.
    pub fn from_state(state: [u64; 4], seed: u64) -> Self {
        SimRng { state, seed }
    }

    /// Encodes the generator state for checkpointed state.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("state", Json::arr(self.state.iter().map(|&w| Json::hex_u64(w)))),
            ("seed", Json::hex_u64(self.seed)),
        ])
    }

    /// Decodes a generator produced by [`SimRng::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or malformed fields.
    pub fn from_json(doc: &Json) -> Result<SimRng, JsonError> {
        let words = doc.req_array("state")?;
        if words.len() != 4 {
            return Err(JsonError::state("rng state needs exactly 4 words"));
        }
        let mut state = [0u64; 4];
        for (slot, word) in state.iter_mut().zip(words) {
            *slot = word
                .as_hex_u64()
                .ok_or_else(|| JsonError::state("rng state word is not a hex u64"))?;
        }
        Ok(SimRng::from_state(state, doc.req_hex_u64("seed")?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_below(1000), b.next_below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_below(1_000_000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_below(1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            assert!(r.index(3) < 3);
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let x = r.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_below(1 << 40), fb.next_below(1 << 40));
        assert_eq!(a.seed(), 9);
    }

    #[test]
    fn state_json_round_trip_resumes_the_stream() {
        let mut r = SimRng::seed_from_u64(1234);
        for _ in 0..57 {
            r.next_u64();
        }
        let doc_text = r.to_json().render();
        let doc = Json::parse(&doc_text).unwrap();
        let mut restored = SimRng::from_json(&doc).unwrap();
        assert_eq!(restored.seed(), r.seed());
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), r.next_u64());
        }
        assert!(SimRng::from_json(&Json::obj([("seed", Json::hex_u64(1))])).is_err());
        let short =
            Json::obj([("state", Json::arr([Json::hex_u64(1)])), ("seed", Json::hex_u64(1))]);
        assert!(SimRng::from_json(&short).is_err());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
