//! Sharded scheduling: per-shard wake calendars and a persistent worker
//! pool for ticking independent shards of a system concurrently.
//!
//! The keyed [`Scheduler`] of the event-driven kernel is a
//! single calendar: every component of the system shares one future-event
//! list. [`ShardedScheduler`] partitions that calendar by a caller-supplied
//! shard map — in the full system: the core cluster, the memory network, the
//! DRAM backend, and one shard per HMC cube (the cube plus its per-cube
//! Active-Routing engine) — so each shard owns its own wake calendar with
//! local `schedule`/`wake`/`cancel`, and a driver can tick due shards on
//! worker threads without the calendars becoming a point of contention.
//!
//! Determinism is preserved by construction:
//!
//! * [`ShardedScheduler::pop_due_into`] merges the due keys of every shard
//!   into one sorted, deduplicated list — exactly the list a single
//!   [`Scheduler`] holding all keys would produce, so a
//!   driver can swap calendars without changing which components it wakes;
//! * [`WorkerPool::run`] executes one job per shard and *returns only when
//!   every job has finished*, so all cross-shard effects a job records in its
//!   per-shard outbox can be applied serially, in fixed shard-index order, at
//!   the phase boundary. Results are independent of the worker count because
//!   jobs only touch their own shard and their own outbox.
//!
//! # Example
//!
//! ```
//! use ar_sim::{ShardedScheduler, WorkerPool};
//!
//! // Keys 0..8, partitioned into two shards (even / odd).
//! let mut sched: ShardedScheduler<u32> = ShardedScheduler::new(2, |k| (k % 2) as usize);
//! sched.schedule(5, 0);
//! sched.schedule(5, 3);
//! sched.schedule(9, 2);
//! assert_eq!(sched.next_cycle(), Some(5));
//!
//! // The merged due list is sorted and deduplicated across shards.
//! let mut due = Vec::new();
//! sched.pop_due_into(5, &mut due);
//! assert_eq!(due, vec![0, 3]);
//!
//! // Tick the due shards concurrently; each job mutates only its own slot.
//! let mut pool = WorkerPool::new(2);
//! let mut outboxes = vec![Vec::new(); 2];
//! pool.run(&mut outboxes, |shard, outbox| outbox.push(shard));
//! // Merge in fixed shard-index order: deterministic regardless of threads.
//! let merged: Vec<usize> = outboxes.concat();
//! assert_eq!(merged, vec![0, 1]);
//! ```

use crate::component::{NextWake, Scheduler};
use ar_types::Cycle;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A wake-up calendar partitioned into independent shards.
///
/// Each shard is a full [`Scheduler`] (with its own
/// generation-based [`cancel`](ShardedScheduler::cancel) bookkeeping); keys
/// are routed to shards by the map given at construction. The map must be
/// stable — the same key must always land in the same shard — and must
/// return indices below the shard count.
pub struct ShardedScheduler<K> {
    shards: Vec<Scheduler<K>>,
    shard_of: Box<dyn Fn(K) -> usize + Send + Sync>,
}

impl<K: Ord + Copy> std::fmt::Debug for ShardedScheduler<K>
where
    K: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedScheduler").field("shards", &self.shards).finish_non_exhaustive()
    }
}

impl<K: Ord + Copy> ShardedScheduler<K> {
    /// Creates a calendar with `shards` empty shards and the given key→shard
    /// map.
    pub fn new(shards: usize, shard_of: impl Fn(K) -> usize + Send + Sync + 'static) -> Self {
        assert!(shards > 0, "a sharded scheduler needs at least one shard");
        ShardedScheduler {
            shards: (0..shards).map(|_| Scheduler::new()).collect(),
            shard_of: Box::new(shard_of),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key belongs to.
    pub fn shard_of(&self, key: K) -> usize {
        let shard = (self.shard_of)(key);
        debug_assert!(
            shard < self.shards.len(),
            "shard map returned {shard} for a {}-shard calendar",
            self.shards.len()
        );
        shard
    }

    /// Direct access to one shard's calendar, for a shard job that wants to
    /// re-arm its own keys locally while ticking on a worker thread.
    pub fn shard_mut(&mut self, shard: usize) -> &mut Scheduler<K> {
        &mut self.shards[shard]
    }

    /// Schedules a wake-up of component `key` at cycle `at` in its shard's
    /// calendar.
    pub fn schedule(&mut self, at: Cycle, key: K) {
        let shard = self.shard_of(key);
        self.shards[shard].schedule(at, key);
    }

    /// Schedules a wake-up from a component's [`NextWake`] request
    /// (`Idle` requests are dropped).
    pub fn schedule_next(&mut self, wake: NextWake, key: K) {
        if let NextWake::At(at) = wake {
            self.schedule(at, key);
        }
    }

    /// Arms an event-triggered wake of `key` in its shard (see
    /// [`Scheduler::wake`]).
    pub fn wake(&mut self, key: K) {
        let shard = self.shard_of(key);
        self.shards[shard].wake(key);
    }

    /// Cancels every pending wake-up of `key` — local to its shard, other
    /// shards are untouched (see [`Scheduler::cancel`]).
    pub fn cancel(&mut self, key: K) {
        let shard = self.shard_of(key);
        self.shards[shard].cancel(key);
    }

    /// The earliest cycle with a scheduled wake-up across all shards.
    /// Conservative, like the unsharded calendar: the entry may have been
    /// cancelled.
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.shards.iter().filter_map(Scheduler::next_cycle).min()
    }

    /// Removes every wake-up due at or before `now` from every shard and
    /// returns the merged, deduplicated key set.
    pub fn pop_due(&mut self, now: Cycle) -> BTreeSet<K> {
        let mut due = Vec::new();
        self.pop_due_into(now, &mut due);
        due.into_iter().collect()
    }

    /// Allocation-free merged pop for the hot driver loop: fills `due` with
    /// the sorted, deduplicated keys due at or before `now` across all
    /// shards (clearing it first). Byte-identical to what a single
    /// [`Scheduler`] holding every key would produce.
    pub fn pop_due_into(&mut self, now: Cycle, due: &mut Vec<K>) {
        due.clear();
        for shard in &mut self.shards {
            shard.pop_due_append(now, due);
        }
        due.sort_unstable();
        due.dedup();
    }

    /// Total number of scheduled wake-ups over all shards (duplicates and
    /// cancelled entries included).
    pub fn len(&self) -> usize {
        self.shards.iter().map(Scheduler::len).sum()
    }

    /// Returns true if no shard has a scheduled wake-up.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Scheduler::is_empty)
    }
}

/// A running minimum over the event bounds that cap a bounded-lag run-ahead
/// window.
///
/// Conservative cross-cycle execution (Chandy–Misra–Bryant-style lookahead)
/// lets a shard advance its local clock past the global one, but only up to a
/// *horizon*: the earliest cycle at which any other shard's pending event,
/// plus the minimum delivery latency from that shard, could influence it. A
/// `Horizon` folds those bounds — `cap` for absolute cycles, `cap_event` for
/// "event at `t` needs at least `lookahead` cycles to reach me" — and the
/// shard may then process strictly-earlier events without synchronizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Horizon(Cycle);

impl Horizon {
    /// A horizon with no bound yet (admits everything).
    pub fn unbounded() -> Self {
        Horizon(Cycle::MAX)
    }

    /// Caps the horizon at an absolute cycle.
    pub fn cap(&mut self, at: Cycle) {
        self.0 = self.0.min(at);
    }

    /// Caps the horizon by a neighbor event at `at` whose effects need at
    /// least `lookahead` cycles to arrive. `None` (no pending event) leaves
    /// the horizon unchanged; the sum saturates.
    pub fn cap_event(&mut self, at: Option<Cycle>, lookahead: Cycle) {
        if let Some(at) = at {
            self.cap(at.saturating_add(lookahead));
        }
    }

    /// The first cycle the window does *not* cover.
    pub fn cycle(self) -> Cycle {
        self.0
    }

    /// Whether a local event at `at` is inside the window (strictly before
    /// the horizon).
    pub fn admits(self, at: Cycle) -> bool {
        at < self.0
    }
}

/// A FIFO of cross-shard messages produced while a shard ran ahead of the
/// global clock, each stamped with the local cycle it was produced at.
///
/// This generalizes the per-shard outbox merge rule of [`WorkerPool::run`]
/// to cross-*cycle* execution: a run-ahead shard pushes its outputs here in
/// local-clock order, and the driver drains every outbox in (cycle,
/// shard-index) order as the global clock catches up — reproducing exactly
/// the stream a cycle-by-cycle execution would have produced.
#[derive(Debug, Clone)]
pub struct TimestampedOutbox<T> {
    queue: std::collections::VecDeque<(Cycle, T)>,
}

impl<T> Default for TimestampedOutbox<T> {
    fn default() -> Self {
        TimestampedOutbox { queue: std::collections::VecDeque::new() }
    }
}

impl<T> TimestampedOutbox<T> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a message produced at local cycle `at`. Timestamps must be
    /// non-decreasing — the producer runs forward in time.
    pub fn push(&mut self, at: Cycle, item: T) {
        debug_assert!(
            self.queue.back().map(|&(last, _)| last <= at).unwrap_or(true),
            "timestamped outbox pushes must be in non-decreasing cycle order"
        );
        self.queue.push_back((at, item));
    }

    /// The timestamp of the oldest undrained message, if any.
    pub fn next_at(&self) -> Option<Cycle> {
        self.queue.front().map(|&(at, _)| at)
    }

    /// Pops the oldest message if it is stamped at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.queue.front().map(|&(at, _)| at <= now).unwrap_or(false) {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// Returns true if no messages are waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of undrained messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Visits the undrained messages oldest first, each with its timestamp —
    /// the exact order `pop_due` would deliver them. Checkpoint snapshots
    /// persist this order and replay it through `push` on restore.
    pub fn entries(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.queue.iter().map(|(at, item)| (*at, item))
    }
}

/// A batch of indexed work published to the pool: `len` items, each executed
/// by `call(data, index)` exactly once.
#[derive(Clone, Copy)]
struct ErasedJob {
    data: *const (),
    len: usize,
    call: unsafe fn(*const (), usize),
}

// SAFETY: the job only crosses threads inside `WorkerPool::run`, which keeps
// the pointed-to batch alive (and the caller blocked) until every item has
// completed; the item type is constrained to `Send` and the closure to
// `Sync` at the `run` signature.
unsafe impl Send for ErasedJob {}

/// Pads a hot atomic onto its own cache line: the epoch the workers spin on,
/// the claim counter and the completion counter are all written at batch
/// frequency by different threads, and false sharing between them is pure
/// dispatch latency.
#[repr(align(128))]
#[derive(Default)]
struct Padded<T>(T);

struct PoolShared {
    /// Batch generation. Bumped with `Release` after the job slot is
    /// written; workers `Acquire`-load it, so observing a new epoch makes
    /// the job slot visible.
    epoch: Padded<AtomicU64>,
    /// The published batch for the current epoch. Only written by the
    /// single caller of `run`, only read by workers after the epoch bump.
    job: std::cell::UnsafeCell<Option<ErasedJob>>,
    /// Next item index to claim (work is self-scheduled).
    next: Padded<AtomicUsize>,
    /// Items not yet completed in the current batch.
    pending: Padded<AtomicUsize>,
    /// The registration word: [`PUBLISHING`] in the high bit, the count of
    /// workers currently inside a batch in the low bits. Packing both into
    /// *one* atomic is what makes the handshake airtight — every register,
    /// deregister and publish-gate operation is an RMW on the same variable,
    /// so they are totally ordered and each side always observes the other:
    /// a worker that registers mid-publish sees the bit and retreats; a
    /// publisher's gate CAS fails while any worker is registered. A plain
    /// two-variable scheme has no such guarantee (a load may miss the other
    /// side's latest RMW), which is exactly the stale-batch hole this
    /// closes.
    state: Padded<AtomicUsize>,
    /// Workers currently blocked on the condvar. Lets the publisher skip the
    /// notify entirely while everyone is still spinning — the common case
    /// when batches arrive back to back. Checked with an RMW (which always
    /// observes the latest value), and incremented under the park mutex
    /// *after* a final epoch re-check, so a skipped notify can never strand
    /// a worker that was about to park.
    parked: Padded<AtomicUsize>,
    shutdown: AtomicBool,
    /// Parking lot for idle workers (the mutex guards no data — the condvar
    /// predicate is the epoch/shutdown pair).
    park: Mutex<()>,
    work: Condvar,
    /// First panic observed while executing a batch item, rethrown by `run`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: the `UnsafeCell` job slot is synchronized through the
// registration protocol described on `PoolShared::state`: it is only
// written between a successful publish-gate CAS (which requires zero
// registered workers) and the bit-clear, and only read by workers whose
// registration RMW observed the bit clear — the two sides cannot overlap.
unsafe impl Sync for PoolShared {}

/// High bit of [`PoolShared::state`]: a publish (batch-state swap) is in
/// progress.
const PUBLISHING: usize = 1 << (usize::BITS - 1);

/// How many times a worker polls for a new batch before parking on the
/// condvar. Batches arrive back to back within a dispatch burst (a worker
/// stays hot across a burst), while between bursts — and on hosts where the
/// pool is oversubscribed — parking promptly matters more than the futex
/// wake it costs on the next dispatch.
const SPIN_ROUNDS: u32 = 8_192;

/// A persistent pool of worker threads for per-shard jobs.
///
/// Workers are spawned once and reused for every batch (no per-cycle thread
/// spawn); an idle worker spins briefly and then parks on a condvar.
/// [`WorkerPool::run`] publishes a batch of jobs over a mutable slice, the
/// caller participates in executing it, and the call returns only when every
/// job has finished — which is what makes lending the slice's borrows to the
/// workers sound, scoped-thread style, without spawning.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads()).finish()
    }
}

impl WorkerPool {
    /// Creates a pool that executes batches on `threads` threads in total:
    /// the calling thread plus `threads - 1` persistent workers. `threads`
    /// of 0 or 1 spawns no workers (every batch runs serially on the
    /// caller); 0 is *not* interpreted as "available parallelism" here —
    /// resolve that policy at the API that owns the knob.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            epoch: Padded(AtomicU64::new(0)),
            job: std::cell::UnsafeCell::new(None),
            next: Padded(AtomicUsize::new(0)),
            pending: Padded(AtomicUsize::new(0)),
            state: Padded(AtomicUsize::new(0)),
            parked: Padded(AtomicUsize::new(0)),
            shutdown: AtomicBool::new(false),
            park: Mutex::new(()),
            work: Condvar::new(),
            panic: Mutex::new(None),
        });
        let workers = (1..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ar-sim-shard-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn shard worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Total threads that execute a batch (workers + the caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(index, &mut items[index])` for every item, distributing items
    /// over the pool's threads, and returns when all of them have completed.
    /// Items are claimed dynamically, so the *execution order and placement
    /// are nondeterministic* — `f` must confine its effects to its own item
    /// (each item is a disjoint `&mut`), which is exactly the per-shard
    /// outbox discipline.
    ///
    /// A panic in any invocation of `f` is caught, the remaining items still
    /// run, and the first panic is rethrown on the caller once the batch has
    /// drained.
    ///
    /// Takes `&mut self` deliberately: one batch at a time is a soundness
    /// invariant of the publish protocol (two concurrent publishers would
    /// race on the shared batch state), and the exclusive borrow makes it a
    /// compile-time guarantee instead of a usage convention.
    pub fn run<T, F>(&mut self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        if items.len() <= 1 || self.workers.is_empty() {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }

        struct Batch<'a, T, F> {
            items: *mut T,
            f: &'a F,
        }
        unsafe fn call_one<T, F: Fn(usize, &mut T)>(data: *const (), index: usize) {
            // SAFETY: `data` points at the `Batch` on the caller's stack,
            // alive until `run` returns; each index is claimed exactly once,
            // so the `&mut` items are disjoint.
            let batch = unsafe { &*(data as *const Batch<'_, T, F>) };
            (batch.f)(index, unsafe { &mut *batch.items.add(index) });
        }
        let batch = Batch { items: items.as_mut_ptr(), f: &f };
        let job =
            ErasedJob { data: (&raw const batch).cast(), len: items.len(), call: call_one::<T, F> };

        // Open the publish window: the gate CAS succeeds only when no worker
        // is registered in a batch and no publish is in flight, and it sets
        // the PUBLISHING bit in the same RMW. Because registrations are RMWs
        // on this same word, the gate and the registrations are totally
        // ordered: a straggler still claiming indices of the previous batch
        // holds the count non-zero (gate waits), and a worker that registers
        // after the gate observes the bit and retreats — the batch state
        // below is never swapped under anyone. `&mut self` guarantees a
        // single publisher.
        while self
            .shared
            .state
            .0
            .compare_exchange(0, PUBLISHING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            std::hint::spin_loop();
        }

        // Publish the batch: job slot and claim/completion counters first,
        // then the epoch bump that announces it, then close the publish
        // window (Release — a worker whose registration reads the cleared
        // bit sees the whole batch state).
        // SAFETY: inside the publish window no worker reads the slot (the
        // gate/retreat protocol above), so the exclusive write is race-free.
        unsafe { *self.shared.job.get() = Some(job) };
        self.shared.next.0.store(0, Ordering::Relaxed);
        self.shared.pending.0.store(items.len(), Ordering::Relaxed);
        self.shared.epoch.0.fetch_add(1, Ordering::Release);
        self.shared.state.0.fetch_and(!PUBLISHING, Ordering::Release);
        // Skip the notify while every worker is still spinning (batches
        // arriving back to back — the hot path). The parked check is an RMW
        // so it cannot read a stale zero: if a worker's registration as
        // parked is ordered before it, the notify happens; if after, the
        // worker's final epoch re-check under the park mutex (sequenced
        // after its parked RMW, which synchronizes with this one) already
        // sees the bump and it never waits.
        if self.shared.parked.0.compare_exchange(0, 0, Ordering::AcqRel, Ordering::Acquire).is_err()
        {
            let _guard = self.shared.park.lock().expect("pool mutex");
            self.shared.work.notify_all();
        }

        // The caller is a full participant.
        execute_batch(&self.shared, job);

        // Wait until every claimed item has completed (workers may still be
        // finishing items the caller did not claim) — `pending == 0` is what
        // makes returning (and thus dropping the borrowed batch) sound.
        // Spinning is usually right (straggler items are the same size as
        // the ones just executed), but yield eventually in case a worker was
        // descheduled mid-item.
        let mut spins = 0u32;
        while self.shared.pending.0.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }

        // Take the payload out before rethrowing so the guard is dropped
        // first — unwinding through a held guard would poison the mutex.
        let panic = self.shared.panic.lock().expect("pool mutex").take();
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.park.lock().expect("pool mutex");
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Claims and executes items of the published batch until none are left.
fn execute_batch(shared: &PoolShared, job: ErasedJob) {
    loop {
        let index = shared.next.0.fetch_add(1, Ordering::Relaxed);
        if index >= job.len {
            break;
        }
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, index) }));
        if let Err(payload) = result {
            let mut slot = shared.panic.lock().expect("pool mutex");
            slot.get_or_insert(payload);
        }
        shared.pending.0.fetch_sub(1, Ordering::Release);
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        // Wait for a new batch: spin briefly, then park.
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if shared.epoch.0.load(Ordering::Acquire) != seen_epoch {
                break;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                let mut guard = shared.park.lock().expect("pool mutex");
                shared.parked.0.fetch_add(1, Ordering::AcqRel);
                while shared.epoch.0.load(Ordering::Acquire) == seen_epoch
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    guard = shared.work.wait(guard).expect("pool mutex");
                }
                shared.parked.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        // Register in the state word before touching any batch state. The
        // registration is an RMW on the same word as the publish gate, so
        // the two sides are totally ordered and exactly one of these holds:
        //
        // (a) the registration is ordered before the gate CAS — the gate
        //     waits for the deregistration, so the batch state stays frozen
        //     while this worker is inside (a stale batch is harmless: its
        //     `next` is exhausted, the claim loop exits without touching the
        //     job data);
        // (b) the registration observed the PUBLISHING bit — the batch
        //     state may be mid-swap, so retreat and retry;
        // (c) the registration observed a cleared bit after a finished
        //     publish — reading any value in the RMW chain headed by the
        //     publisher's Release clear synchronizes with it, so the whole
        //     batch state (job slot, `next`, `pending`, epoch) of the
        //     latest publication is visible.
        let was = shared.state.0.fetch_add(1, Ordering::AcqRel);
        if was & PUBLISHING != 0 {
            shared.state.0.fetch_sub(1, Ordering::Release);
            continue;
        }
        let epoch = shared.epoch.0.load(Ordering::Acquire);
        if epoch == seen_epoch {
            shared.state.0.fetch_sub(1, Ordering::Release);
            continue;
        }
        // SAFETY: by (a)/(c) above, the slot holds a fully published job and
        // cannot be rewritten while this worker's registration is held.
        let job = unsafe { (*shared.job.get()).expect("epoch bumped without a job") };
        execute_batch(shared, job);
        seen_epoch = epoch;
        shared.state.0.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_pop_matches_a_single_scheduler() {
        // Drive the same schedule/wake/cancel trace through one Scheduler and
        // a 3-shard ShardedScheduler: every pop must yield the same keys.
        let mut single: Scheduler<u32> = Scheduler::new();
        let mut sharded: ShardedScheduler<u32> = ShardedScheduler::new(3, |k| (k % 3) as usize);
        let trace: &[(Cycle, u32)] = &[(5, 0), (5, 7), (3, 2), (9, 4), (5, 7), (4, 9)];
        for &(at, key) in trace {
            single.schedule(at, key);
            sharded.schedule(at, key);
        }
        single.cancel(7);
        sharded.cancel(7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for now in [3, 4, 5, 9] {
            single.pop_due_into(now, &mut a);
            sharded.pop_due_into(now, &mut b);
            assert_eq!(a, b, "due sets diverged at cycle {now}");
        }
        // Event-triggered wakes after the clock advanced.
        single.wake(7);
        sharded.wake(7);
        assert_eq!(single.pop_due(20), sharded.pop_due(20));
        assert!(single.is_empty() && sharded.is_empty());
    }

    #[test]
    fn next_cycle_is_the_minimum_over_shards() {
        let mut sched: ShardedScheduler<u32> = ShardedScheduler::new(2, |k| (k % 2) as usize);
        assert_eq!(sched.next_cycle(), None);
        sched.schedule(9, 0);
        sched.schedule(4, 1);
        assert_eq!(sched.next_cycle(), Some(4));
        assert_eq!(sched.len(), 2);
        assert!(!sched.is_empty());
    }

    #[test]
    fn cancel_is_local_to_the_keys_shard() {
        let mut sched: ShardedScheduler<u32> = ShardedScheduler::new(2, |k| (k % 2) as usize);
        sched.schedule(5, 2); // shard 0
        sched.schedule(5, 3); // shard 1
        sched.cancel(2);
        let due = sched.pop_due(5);
        assert!(!due.contains(&2));
        assert!(due.contains(&3));
    }

    #[test]
    fn shard_mut_exposes_the_local_calendar() {
        let mut sched: ShardedScheduler<u32> = ShardedScheduler::new(2, |k| (k % 2) as usize);
        assert_eq!(sched.shard_of(6), 0);
        sched.shard_mut(0).schedule(7, 6);
        assert_eq!(sched.next_cycle(), Some(7));
        assert!(sched.pop_due(7).contains(&6));
    }

    #[test]
    fn horizon_folds_bounds_and_admits_strictly_earlier_events() {
        let mut h = Horizon::unbounded();
        assert!(h.admits(Cycle::MAX - 1));
        h.cap_event(None, 3); // no pending event: unchanged
        h.cap(100);
        h.cap_event(Some(40), 9); // event at 40, 9 cycles away => bound 49
        h.cap_event(Some(80), 50); // looser than the current bound
        assert_eq!(h.cycle(), 49);
        assert!(h.admits(48));
        assert!(!h.admits(49));
        // Saturating: a far event with a huge lookahead never wraps.
        let mut s = Horizon::unbounded();
        s.cap_event(Some(Cycle::MAX - 1), 10);
        assert_eq!(s.cycle(), Cycle::MAX);
    }

    #[test]
    fn timestamped_outbox_drains_in_stamp_order() {
        let mut outbox: TimestampedOutbox<&str> = TimestampedOutbox::new();
        assert!(outbox.is_empty());
        assert_eq!(outbox.next_at(), None);
        outbox.push(4, "a");
        outbox.push(4, "b");
        outbox.push(7, "c");
        assert_eq!(outbox.len(), 3);
        assert_eq!(outbox.next_at(), Some(4));
        assert_eq!(outbox.pop_due(3), None);
        assert_eq!(outbox.pop_due(4), Some((4, "a")));
        assert_eq!(outbox.pop_due(4), Some((4, "b")));
        assert_eq!(outbox.pop_due(4), None);
        assert_eq!(outbox.next_at(), Some(7));
        assert_eq!(outbox.pop_due(9), Some((7, "c")));
        assert!(outbox.is_empty());
    }

    #[test]
    fn pool_runs_every_item_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let mut counts = vec![0u64; 1024];
        for round in 1..=3u64 {
            pool.run(&mut counts, |i, c| *c += i as u64 + round);
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(*c, 3 * i as u64 + 6, "item {i} ran a wrong number of times");
        }
    }

    #[test]
    fn pool_results_are_independent_of_thread_count() {
        let reference: Vec<u64> = (0..257).map(|i| i * i + 1).collect();
        for threads in [1, 2, 4, 8] {
            let mut pool = WorkerPool::new(threads);
            let mut items = vec![0u64; 257];
            pool.run(&mut items, |i, v| *v = (i * i + 1) as u64);
            assert_eq!(items, reference, "results diverged at {threads} threads");
        }
    }

    #[test]
    fn pool_with_one_thread_runs_inline() {
        let mut pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut items = vec![0u32; 8];
        pool.run(&mut items, |i, v| *v = i as u32);
        assert_eq!(items, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_propagates_a_job_panic_after_draining() {
        let mut pool = WorkerPool::new(2);
        let mut items = vec![0u32; 64];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&mut items, |i, v| {
                if i == 13 {
                    panic!("boom");
                }
                *v = 1;
            });
        }));
        assert!(result.is_err(), "the job panic must surface on the caller");
        // The pool survives the panic and runs the next batch normally.
        let mut again = vec![0u32; 64];
        pool.run(&mut again, |_, v| *v = 2);
        assert!(again.iter().all(|&v| v == 2));
    }

    #[test]
    fn pool_borrows_caller_state_scoped() {
        // The jobs borrow a slice and a closure from the caller's stack;
        // completion-before-return is what makes this sound.
        let mut pool = WorkerPool::new(3);
        let offsets: Vec<u64> = (0..100).collect();
        let mut out = vec![0u64; 100];
        pool.run(&mut out, |i, v| *v = offsets[i] + 1);
        assert_eq!(out[99], 100);
    }
}
