//! The event-driven component layer of the simulation kernel.
//!
//! The original system model advanced in lock-step: every core, router, AR
//! engine, DRAM channel and HMC vault was ticked on every cycle, so almost
//! all wall-clock time went into visiting components with nothing to do. The
//! types in this module invert that relationship: a [`Component`] *requests*
//! the next cycle at which it has internal work ([`NextWake`]), a
//! [`Scheduler`] keeps the calendar of those requests, and the system driver
//! only wakes components that are due.
//!
//! # Contract
//!
//! The equivalence of the event-driven kernel with the lock-step reference
//! rests on two rules every `Component` implementation must obey:
//!
//! 1. **Spurious wakes are harmless.** Waking a component at a cycle where it
//!    has no due work must be a behavioural no-op (identical observable state
//!    and statistics afterwards). The lock-step driver exploits this by
//!    waking everything on every cycle.
//! 2. **Wake requests are conservative.** After `wake(now)` returns
//!    `NextWake::At(t)`, the component must have no observable state change
//!    scheduled strictly before `t`; after `NextWake::Idle` it must be inert
//!    until externally stimulated (a push, an injected packet, a delivered
//!    completion). Whoever stimulates a sleeping component is responsible for
//!    re-arming it in the scheduler.
//!
//! Under these rules, skipping a cycle in which no component is due is
//! exactly equivalent to simulating it — which is what
//! `ar_system::System::run` does, and what the lock-step-vs-event-driven
//! equivalence tests verify end to end.
//!
//! # Example
//!
//! ```
//! use ar_sim::{Component, NextWake, SchedCtx, Scheduler};
//! use ar_types::Cycle;
//!
//! /// A timer that fires once, `delay` cycles after being armed.
//! struct Timer {
//!     fire_at: Option<Cycle>,
//!     fired: u32,
//! }
//!
//! impl Component for Timer {
//!     fn next_wake(&self, _now: Cycle) -> NextWake {
//!         NextWake::from_next(self.fire_at)
//!     }
//!     fn wake(&mut self, now: Cycle, _ctx: &mut SchedCtx) -> NextWake {
//!         if self.fire_at == Some(now) {
//!             self.fire_at = None;
//!             self.fired += 1;
//!         }
//!         self.next_wake(now)
//!     }
//! }
//!
//! let mut timer = Timer { fire_at: Some(7), fired: 0 };
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule_next(timer.next_wake(0), "timer");
//! assert_eq!(sched.next_cycle(), Some(7));
//! let due = sched.pop_due(7);
//! assert!(due.contains("timer"));
//! let mut ctx = SchedCtx::new(7);
//! assert_eq!(timer.wake(7, &mut ctx), NextWake::Idle);
//! assert_eq!(timer.fired, 1);
//! ```

use crate::events::EventQueue;
use ar_types::Cycle;
use std::collections::{BTreeMap, BTreeSet};

/// When a component next has internal work to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextWake {
    /// Wake the component at the given cycle (the scheduler clamps requests
    /// that are already in the past to the next processed cycle).
    At(Cycle),
    /// The component has no internal work: it sleeps until an external
    /// stimulus re-arms it.
    Idle,
}

impl NextWake {
    /// Builds a wake request from an optional next-event cycle.
    pub fn from_next(next: Option<Cycle>) -> NextWake {
        match next {
            Some(at) => NextWake::At(at),
            None => NextWake::Idle,
        }
    }

    /// The earlier of two wake requests (`Idle` is the neutral element).
    pub fn min_with(self, other: NextWake) -> NextWake {
        match (self, other) {
            (NextWake::At(a), NextWake::At(b)) => NextWake::At(a.min(b)),
            (NextWake::At(a), NextWake::Idle) | (NextWake::Idle, NextWake::At(a)) => {
                NextWake::At(a)
            }
            (NextWake::Idle, NextWake::Idle) => NextWake::Idle,
        }
    }

    /// Folds an optional cycle into this wake request.
    pub fn min_opt(self, next: Option<Cycle>) -> NextWake {
        self.min_with(NextWake::from_next(next))
    }

    /// The requested cycle, if any.
    pub fn cycle(self) -> Option<Cycle> {
        match self {
            NextWake::At(at) => Some(at),
            NextWake::Idle => None,
        }
    }

    /// Returns true if the component requested to sleep.
    pub fn is_idle(self) -> bool {
        self == NextWake::Idle
    }
}

/// Context handed to a component while it is being woken.
///
/// Currently it only carries the cycle being processed; it exists as the
/// extension point for driver-mediated services a component may need
/// mid-wake (e.g. cross-shard wake requests once scheduling is sharded —
/// see the ROADMAP), without having to change every `wake` signature.
#[derive(Debug, Clone, Copy)]
pub struct SchedCtx {
    now: Cycle,
}

impl SchedCtx {
    /// Creates a context for the cycle being processed.
    pub fn new(now: Cycle) -> Self {
        SchedCtx { now }
    }

    /// The cycle being processed.
    pub fn now(&self) -> Cycle {
        self.now
    }
}

/// A timed simulation component scheduled through wake-up requests instead of
/// per-cycle polling.
pub trait Component {
    /// The next cycle at which this component has internal work, assuming no
    /// further external stimulus. Must be conservative: no observable state
    /// change may be pending strictly before the returned cycle.
    fn next_wake(&self, now: Cycle) -> NextWake;

    /// Performs all work due at `now` and returns the new wake request.
    /// Waking a component with no due work must be a behavioural no-op.
    fn wake(&mut self, now: Cycle, ctx: &mut SchedCtx) -> NextWake;
}

/// The wake-up calendar of a set of components identified by `K`.
///
/// Scheduling is liberal by design: duplicate or spurious entries are cheap
/// because [`Scheduler::pop_due`] deduplicates into a set and waking an idle
/// component is a no-op. The correctness requirement is only that every cycle
/// at which some component has due work carries at least one entry.
///
/// # Event-triggered wakes
///
/// Components that sleep on an external event (a blocked core waiting for a
/// memory response, a drained vault waiting for nothing at all) return
/// [`NextWake::Idle`] and leave the calendar entirely; whoever delivers the
/// event re-arms them with [`Scheduler::wake`] (fire at the next processed
/// cycle) or [`Scheduler::schedule`] (fire at a known future cycle). If an
/// armed event becomes moot — the work was re-routed, the component was
/// drained by another path — [`Scheduler::cancel`] drops every pending entry
/// for the key without touching other keys.
#[derive(Debug)]
pub struct Scheduler<K> {
    queue: EventQueue<(K, u32)>,
    /// Current wake-entry generation per key. [`Scheduler::cancel`] bumps a
    /// key's generation; entries carrying an older generation are discarded
    /// when they come due. Keys that were never cancelled are not stored
    /// (generation 0).
    generations: BTreeMap<K, u32>,
}

impl<K: Ord + Copy> Default for Scheduler<K> {
    fn default() -> Self {
        Scheduler { queue: EventQueue::new(), generations: BTreeMap::new() }
    }
}

impl<K: Ord + Copy> Scheduler<K> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current generation of `key` (0 until first cancelled).
    fn generation(&self, key: K) -> u32 {
        self.generations.get(&key).copied().unwrap_or(0)
    }

    /// Schedules a wake-up of component `key` at cycle `at`.
    pub fn schedule(&mut self, at: Cycle, key: K) {
        let generation = self.generation(key);
        self.queue.schedule(at, (key, generation));
    }

    /// Schedules a wake-up from a component's [`NextWake`] request
    /// (`Idle` requests are dropped).
    pub fn schedule_next(&mut self, wake: NextWake, key: K) {
        if let NextWake::At(at) = wake {
            self.schedule(at, key);
        }
    }

    /// Arms an *event-triggered* wake of `key`: the component is woken at the
    /// next cycle the driver processes, whenever that is. This is how an
    /// external stimulus re-arms a component that reported
    /// [`NextWake::Idle`] without the stimulator having to know the clock.
    ///
    /// ```
    /// use ar_sim::Scheduler;
    ///
    /// let mut sched: Scheduler<&str> = Scheduler::new();
    /// let _ = sched.pop_due(41); // driver has processed up to cycle 41
    /// sched.wake("vault");
    /// assert!(sched.pop_due(42).contains("vault"));
    /// ```
    pub fn wake(&mut self, key: K) {
        // Cycle 0 is clamped by the event queue to the last popped cycle, so
        // the entry becomes due immediately without rewinding time.
        self.schedule(0, key);
    }

    /// Cancels every pending wake-up of `key`.
    ///
    /// Cancellation is exact per key and lazy in implementation: the entries
    /// stay queued but carry a stale generation and are dropped when they
    /// come due, so cancelling is O(log n) rather than a heap rebuild. A
    /// subsequent [`Scheduler::schedule`] / [`Scheduler::wake`] for the same
    /// key starts a fresh generation and is unaffected by the cancellation.
    ///
    /// [`Scheduler::next_cycle`] stays conservative: it may still report the
    /// cycle of a cancelled entry, in which case the driver pops an empty due
    /// set and moves on — spurious wake cycles are harmless by the
    /// [`Component`] contract.
    ///
    /// ```
    /// use ar_sim::Scheduler;
    ///
    /// let mut sched: Scheduler<&str> = Scheduler::new();
    /// sched.schedule(5, "core");
    /// sched.schedule(9, "core");
    /// sched.schedule(5, "dram");
    /// sched.cancel("core");
    /// assert_eq!(sched.pop_due(10).into_iter().collect::<Vec<_>>(), vec!["dram"]);
    /// sched.schedule(12, "core"); // re-arming after cancel works
    /// assert!(sched.pop_due(12).contains("core"));
    /// ```
    pub fn cancel(&mut self, key: K) {
        *self.generations.entry(key).or_insert(0) += 1;
    }

    /// The earliest cycle with a scheduled wake-up. Conservative: the entry
    /// may have been cancelled, in which case popping that cycle yields no
    /// due components.
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.queue.next_at()
    }

    /// Removes every wake-up scheduled at or before `now` and returns the
    /// (deduplicated) set of components to wake. Cancelled entries are
    /// dropped silently.
    pub fn pop_due(&mut self, now: Cycle) -> BTreeSet<K> {
        let mut due = BTreeSet::new();
        while let Some((_, (key, generation))) = self.queue.pop_due(now) {
            if generation == self.generation(key) {
                due.insert(key);
            }
        }
        due
    }

    /// Allocation-free variant of [`Scheduler::pop_due`] for the hot driver
    /// loop: fills `due` with the sorted, deduplicated keys scheduled at or
    /// before `now` (clearing it first). Cancelled entries are dropped
    /// silently.
    pub fn pop_due_into(&mut self, now: Cycle, due: &mut Vec<K>) {
        due.clear();
        self.pop_due_append(now, due);
        due.sort_unstable();
        due.dedup();
    }

    /// Appends the raw due keys (unsorted, undeduplicated) to `due` without
    /// clearing it — the building block the sharded calendar's cross-shard
    /// merge is made of.
    pub(crate) fn pop_due_append(&mut self, now: Cycle, due: &mut Vec<K>) {
        while let Some((_, (key, generation))) = self.queue.pop_due(now) {
            if generation == self.generation(key) {
                due.push(key);
            }
        }
    }

    /// Number of scheduled wake-ups (duplicates and cancelled entries
    /// included).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns true if no wake-ups are scheduled.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A component that performs one unit of work per cycle for `remaining`
    /// cycles, then idles until `push`ed again.
    struct Worker {
        remaining: u32,
        work_done: u32,
    }

    impl Worker {
        fn push(&mut self, units: u32) {
            self.remaining += units;
        }
    }

    impl Component for Worker {
        fn next_wake(&self, now: Cycle) -> NextWake {
            if self.remaining > 0 {
                NextWake::At(now + 1)
            } else {
                NextWake::Idle
            }
        }

        fn wake(&mut self, now: Cycle, _ctx: &mut SchedCtx) -> NextWake {
            if self.remaining > 0 {
                self.remaining -= 1;
                self.work_done += 1;
            }
            self.next_wake(now)
        }
    }

    #[test]
    fn next_wake_min_folds_correctly() {
        assert_eq!(NextWake::At(3).min_with(NextWake::At(7)), NextWake::At(3));
        assert_eq!(NextWake::Idle.min_with(NextWake::At(7)), NextWake::At(7));
        assert_eq!(NextWake::At(7).min_with(NextWake::Idle), NextWake::At(7));
        assert_eq!(NextWake::Idle.min_with(NextWake::Idle), NextWake::Idle);
        assert_eq!(NextWake::Idle.min_opt(Some(4)), NextWake::At(4));
        assert_eq!(NextWake::At(2).min_opt(None), NextWake::At(2));
        assert_eq!(NextWake::Idle.cycle(), None);
        assert!(NextWake::Idle.is_idle());
    }

    #[test]
    fn scheduler_pops_due_keys_deduplicated() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.schedule(5, 1);
        sched.schedule(5, 1); // duplicate
        sched.schedule(5, 2);
        sched.schedule(9, 3);
        assert_eq!(sched.next_cycle(), Some(5));
        let due = sched.pop_due(5);
        assert_eq!(due.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(sched.next_cycle(), Some(9));
        assert!(sched.pop_due(8).is_empty());
        assert!(!sched.is_empty());
        assert_eq!(sched.pop_due(100).len(), 1);
        assert!(sched.is_empty());
    }

    #[test]
    fn wake_fires_at_the_next_processed_cycle() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.schedule(7, 1);
        assert!(sched.pop_due(7).contains(&1));
        // Event-triggered wake after the clock reached 7: due immediately.
        sched.wake(2);
        assert_eq!(sched.next_cycle(), Some(7));
        assert!(sched.pop_due(7).contains(&2));
    }

    #[test]
    fn cancel_drops_only_the_cancelled_key() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.schedule(3, 1);
        sched.schedule(3, 1);
        sched.schedule(3, 2);
        sched.schedule(8, 1);
        sched.cancel(1);
        assert_eq!(sched.pop_due(3).into_iter().collect::<Vec<_>>(), vec![2]);
        assert!(sched.pop_due(8).is_empty(), "the later entry of key 1 is cancelled too");
        // Re-arming after a cancel starts a fresh generation.
        sched.schedule(9, 1);
        assert!(sched.pop_due(9).contains(&1));
        // Cancelling twice and interleaving schedules keeps keys precise.
        sched.schedule(12, 1);
        sched.cancel(1);
        sched.cancel(1);
        sched.schedule(12, 2);
        let due = sched.pop_due(12);
        assert!(!due.contains(&1));
        assert!(due.contains(&2));
    }

    #[test]
    fn cancelled_entries_are_dropped_by_pop_due_into() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.schedule(4, 5);
        sched.schedule(4, 6);
        sched.cancel(5);
        let mut due = Vec::new();
        sched.pop_due_into(4, &mut due);
        assert_eq!(due, vec![6]);
    }

    #[test]
    fn idle_requests_are_not_scheduled() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.schedule_next(NextWake::Idle, 1);
        assert!(sched.is_empty());
        sched.schedule_next(NextWake::At(3), 1);
        assert_eq!(sched.len(), 1);
    }

    #[test]
    fn component_wake_and_rearm_cycle() {
        // Drive a Worker exactly the way the system driver does: wake it only
        // when due, re-arm from its NextWake, re-arm on external stimulus.
        let mut worker = Worker { remaining: 2, work_done: 0 };
        let mut sched: Scheduler<&'static str> = Scheduler::new();
        sched.schedule(0, "worker");

        let mut now = 0;
        let mut processed = Vec::new();
        while let Some(next) = sched.next_cycle() {
            now = next.max(now);
            let due = sched.pop_due(now);
            if due.contains("worker") {
                processed.push(now);
                let mut ctx = SchedCtx::new(now);
                let wake = worker.wake(now, &mut ctx);
                sched.schedule_next(wake, "worker");
            }
        }
        // Two units of work, one per cycle, then idle: cycles 0 and 1 only.
        assert_eq!(processed, vec![0, 1]);
        assert_eq!(worker.work_done, 2);
        assert_eq!(worker.next_wake(now), NextWake::Idle);

        // External stimulus: the caller must re-arm the sleeping component.
        worker.push(1);
        sched.schedule_next(worker.next_wake(5), "worker");
        assert_eq!(sched.next_cycle(), Some(6));
        let due = sched.pop_due(6);
        assert!(due.contains("worker"));
        let mut ctx = SchedCtx::new(6);
        assert_eq!(worker.wake(6, &mut ctx), NextWake::Idle);
        assert_eq!(worker.work_done, 3);
    }

    #[test]
    fn spurious_wake_is_a_no_op() {
        let mut worker = Worker { remaining: 0, work_done: 0 };
        let mut ctx = SchedCtx::new(4);
        assert_eq!(worker.wake(4, &mut ctx), NextWake::Idle);
        assert_eq!(worker.work_done, 0);
    }
}
