//! Statistics primitives: counters, histograms, and windowed time series.
//!
//! Every figure of the paper's evaluation is built from these: runtime cycles
//! (Fig. 5.1), latency breakdowns (Fig. 5.2), per-cube heatmaps (Fig. 5.3),
//! traffic bytes (Fig. 5.4), energy (Figs. 5.5-5.7) and windowed IPC
//! (Fig. 5.8).

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An accumulating sample statistic (count / sum / min / max / mean).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    sum_sq: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, sum_sq: 0.0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance of the samples, or 0.0 when empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            let m = self.mean();
            (self.sum_sq / self.count as f64 - m * m).max(0.0)
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A time series sampled in fixed-size windows (e.g. IPC per 1M instructions,
/// Fig. 5.8).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Creates an empty series with room for `capacity` points, so a sampler
    /// that knows its maximum window count up front never reallocates on the
    /// sampling hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries { points: Vec::with_capacity(capacity) }
    }

    /// Appends a point (x = window position, y = value).
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Drops the spare capacity of an up-front reservation, so a finished
    /// series retained in a report (or a cache of reports) only holds its
    /// actual points.
    pub fn shrink_to_fit(&mut self) {
        self.points.shrink_to_fit();
    }

    /// The recorded points, in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the y values, or 0.0 when empty.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|(_, y)| y).sum::<f64>() / self.points.len() as f64
        }
    }
}

/// A string-keyed registry of counters and histograms.
///
/// Components register their statistics here with hierarchical names such as
/// `"network.cube3.operand_buffer_stalls"`; the experiments crate reads them
/// back to build figures.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter, creating it if necessary.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_string()).or_default().add(n);
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter, returning 0 if it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Records a sample into the named histogram.
    pub fn record(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Reads a histogram, returning an empty one if it was never touched.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, histograms merge).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            self.counters.entry(k.clone()).or_default().add(v.get());
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v.get())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
        assert!((h.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.variance(), 0.0);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1.0, 5.0, 9.0] {
            a.record(v);
            all.record(v);
        }
        for v in [2.0, 4.0] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn stats_registry_counts_and_records() {
        let mut s = Stats::new();
        s.incr("a.x");
        s.add("a.y", 10);
        s.record("lat", 42.0);
        assert_eq!(s.counter("a.x"), 1);
        assert_eq!(s.counter("a.y"), 10);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.histogram("lat").count(), 1);
        assert_eq!(s.sum_prefix("a."), 11);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = Stats::new();
        let mut b = Stats::new();
        a.add("n", 3);
        b.add("n", 4);
        b.add("m", 1);
        b.record("h", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 7);
        assert_eq!(a.counter("m"), 1);
        assert_eq!(a.histogram("h").count(), 1);
    }

    #[test]
    fn time_series_means() {
        let mut t = TimeSeries::new();
        assert!(t.is_empty());
        t.push(0.0, 2.0);
        t.push(1.0, 4.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.mean_y(), 3.0);
        assert_eq!(t.points()[1], (1.0, 4.0));
    }
}
