//! Latency and bandwidth primitives used by every timed component.

use ar_types::Cycle;
use std::collections::{BinaryHeap, VecDeque};

/// An entry of the latency queue, ordered by readiness time (earliest first).
#[derive(Debug)]
struct Timed<T> {
    ready_at: Cycle,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Timed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.seq == other.seq
    }
}
impl<T> Eq for Timed<T> {}
impl<T> PartialOrd for Timed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Timed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest item is popped first.
        other.ready_at.cmp(&self.ready_at).then(other.seq.cmp(&self.seq))
    }
}

/// A queue whose items only become visible once the simulation clock reaches
/// their readiness time. Items with equal readiness are delivered in push
/// order (FIFO), which preserves per-link packet ordering.
#[derive(Debug)]
pub struct LatencyQueue<T> {
    heap: BinaryHeap<Timed<T>>,
    next_seq: u64,
}

impl<T> Default for LatencyQueue<T> {
    fn default() -> Self {
        LatencyQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<T> LatencyQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with room for `capacity` in-flight items, so a
    /// component whose occupancy bound is known up front (e.g. a vault's
    /// controller-queue depth) never grows the heap on the hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        LatencyQueue { heap: BinaryHeap::with_capacity(capacity), next_seq: 0 }
    }

    /// Inserts an item that becomes ready at the given cycle.
    pub fn push_at(&mut self, ready_at: Cycle, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Timed { ready_at, seq, item });
    }

    /// Inserts an item that becomes ready `delay` cycles after `now`.
    pub fn push_after(&mut self, now: Cycle, delay: Cycle, item: T) {
        self.push_at(now.saturating_add(delay), item);
    }

    /// Removes and returns one item whose readiness time is `<= now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().map(|t| t.ready_at <= now).unwrap_or(false) {
            self.heap.pop().map(|t| t.item)
        } else {
            None
        }
    }

    /// Removes and returns all items ready at or before `now`.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.pop_ready(now) {
            out.push(item);
        }
        out
    }

    /// Earliest readiness time among queued items.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|t| t.ready_at)
    }

    /// Number of queued items (ready or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Visits the queued items ordered by (readiness time, insertion order) —
    /// exactly the order `pop_ready` would deliver them. Checkpoint snapshots
    /// serialize this order and replay it through `push_at` on restore, which
    /// assigns fresh sequence numbers that preserve the relative order.
    pub fn state_entries(&self) -> Vec<(Cycle, &T)> {
        let mut timed: Vec<&Timed<T>> = self.heap.iter().collect();
        timed.sort_by_key(|t| (t.ready_at, t.seq));
        timed.into_iter().map(|t| (t.ready_at, &t.item)).collect()
    }
}

/// A bandwidth-limited, in-order link.
///
/// Packets pushed into the link are delivered after a fixed propagation
/// latency plus a serialization delay of `ceil(bytes / bytes_per_cycle)`
/// cycles; back-to-back packets queue behind each other, so a congested link
/// naturally builds up delay. The number of bytes transferred is tracked for
/// the energy model.
#[derive(Debug)]
pub struct BandwidthLink<T> {
    latency: Cycle,
    bytes_per_cycle: u32,
    /// Cycle at which the link becomes free to start serializing a new packet.
    free_at: Cycle,
    in_flight: VecDeque<(Cycle, T)>,
    /// Total bytes ever pushed through the link.
    bytes_transferred: u64,
    /// Total packets ever pushed through the link.
    packets_transferred: u64,
    /// Cumulative queueing delay (cycles spent waiting for the link).
    queueing_cycles: u64,
}

impl<T> BandwidthLink<T> {
    /// Creates a link with the given propagation latency (cycles) and
    /// bandwidth (bytes per cycle).
    pub fn new(latency: Cycle, bytes_per_cycle: u32) -> Self {
        BandwidthLink {
            latency,
            bytes_per_cycle: bytes_per_cycle.max(1),
            free_at: 0,
            in_flight: VecDeque::new(),
            bytes_transferred: 0,
            packets_transferred: 0,
            queueing_cycles: 0,
        }
    }

    /// Sends a packet of `bytes` bytes at cycle `now`; it will be delivered
    /// after queueing + serialization + propagation. Returns the arrival
    /// cycle, so callers can schedule an event-driven wake-up for it.
    pub fn send(&mut self, now: Cycle, bytes: u32, item: T) -> Cycle {
        let start = self.free_at.max(now);
        self.queueing_cycles += start - now;
        let serialization = (bytes as u64).div_ceil(self.bytes_per_cycle as u64).max(1);
        let done = start + serialization;
        self.free_at = done;
        self.bytes_transferred += u64::from(bytes);
        self.packets_transferred += 1;
        let arrives_at = done + self.latency;
        self.in_flight.push_back((arrives_at, item));
        arrives_at
    }

    /// Arrival cycle of the oldest in-flight packet, if any.
    pub fn next_arrival_at(&self) -> Option<Cycle> {
        self.in_flight.front().map(|(at, _)| *at)
    }

    /// Removes and returns one packet that has fully arrived by `now`.
    pub fn pop_arrived(&mut self, now: Cycle) -> Option<T> {
        if self.in_flight.front().map(|(t, _)| *t <= now).unwrap_or(false) {
            self.in_flight.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Cycle at which the link can start serializing a new packet.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Number of packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Total bytes ever sent over the link.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Total packets ever sent over the link.
    pub fn packets_transferred(&self) -> u64 {
        self.packets_transferred
    }

    /// Cumulative cycles packets spent waiting for the link to become free.
    pub fn queueing_cycles(&self) -> u64 {
        self.queueing_cycles
    }

    /// Returns true if nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Visits the in-flight packets oldest first, each with its arrival cycle.
    pub fn in_flight_entries(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.in_flight.iter().map(|(at, item)| (*at, item))
    }

    /// Restores the mutable link state from a checkpoint: the next-free cycle
    /// and the three traffic counters. In-flight packets are re-appended
    /// separately via [`BandwidthLink::restore_in_flight`], oldest first.
    pub fn restore_state(
        &mut self,
        free_at: Cycle,
        bytes_transferred: u64,
        packets_transferred: u64,
        queueing_cycles: u64,
    ) {
        self.free_at = free_at;
        self.bytes_transferred = bytes_transferred;
        self.packets_transferred = packets_transferred;
        self.queueing_cycles = queueing_cycles;
    }

    /// Re-appends one checkpointed in-flight packet with its arrival cycle.
    /// Must be called in the order produced by
    /// [`BandwidthLink::in_flight_entries`] to preserve delivery order.
    pub fn restore_in_flight(&mut self, arrives_at: Cycle, item: T) {
        debug_assert!(
            self.in_flight.back().map(|(at, _)| *at <= arrives_at).unwrap_or(true),
            "in-flight packets must be restored oldest first"
        );
        self.in_flight.push_back((arrives_at, item));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_queue_orders_by_time() {
        let mut q = LatencyQueue::new();
        q.push_at(10, "b");
        q.push_at(5, "a");
        q.push_at(10, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_ready(4), None);
        assert_eq!(q.pop_ready(5), Some("a"));
        assert_eq!(q.pop_ready(9), None);
        // FIFO among equal-time items.
        assert_eq!(q.pop_ready(10), Some("b"));
        assert_eq!(q.pop_ready(10), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn latency_queue_push_after_and_drain() {
        let mut q = LatencyQueue::new();
        q.push_after(100, 5, 1);
        q.push_after(100, 2, 2);
        assert_eq!(q.next_ready_at(), Some(102));
        let drained = q.drain_ready(105);
        assert_eq!(drained, vec![2, 1]);
    }

    #[test]
    fn bandwidth_link_serializes_packets() {
        let mut link: BandwidthLink<u32> = BandwidthLink::new(3, 16);
        // 64-byte packet takes 4 cycles to serialize + 3 latency = arrives at 7.
        assert_eq!(link.send(0, 64, 1), 7);
        assert_eq!(link.next_arrival_at(), Some(7));
        assert_eq!(link.pop_arrived(6), None);
        assert_eq!(link.pop_arrived(7), Some(1));
        assert_eq!(link.bytes_transferred(), 64);
    }

    #[test]
    fn bandwidth_link_back_to_back_queues() {
        let mut link: BandwidthLink<u32> = BandwidthLink::new(0, 16);
        link.send(0, 64, 1); // serializes 0..4
        link.send(0, 64, 2); // waits, serializes 4..8
        assert_eq!(link.queueing_cycles(), 4);
        assert_eq!(link.pop_arrived(4), Some(1));
        assert_eq!(link.pop_arrived(7), None);
        assert_eq!(link.pop_arrived(8), Some(2));
        assert!(link.is_idle());
    }

    #[test]
    fn bandwidth_link_preserves_order() {
        let mut link: BandwidthLink<u32> = BandwidthLink::new(1, 1000);
        for i in 0..10 {
            link.send(i as u64, 8, i);
        }
        let mut got = Vec::new();
        for now in 0..40 {
            while let Some(x) = link.pop_arrived(now) {
                got.push(x);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(link.packets_transferred(), 10);
    }
}
