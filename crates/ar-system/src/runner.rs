//! Free-function helpers shared by the experiment drivers.
//!
//! The pre-redesign driver surface (`build`, `run`, `run_all_configs`) lived
//! here as deprecated shims for one release; they are gone now — use
//! [`crate::SimulationBuilder`] for single runs and [`crate::Sweep`] for
//! matrices (see the README migration guide). What remains is the
//! functional-verification helper [`verify_gathers`] and the
//! [`variant_for`] convenience alias over the builder's
//! [`crate::variant_for_scheme`].

use crate::report::SimReport;
use ar_types::config::NamedConfig;
use ar_workloads::Variant;

/// The workload variant a named configuration executes: the DRAM and HMC
/// baselines run the unoptimised kernels, the Active-Routing configurations
/// run the offloaded kernels, and ARF-tid-adaptive runs the dynamically
/// offloaded kernels (Section 5.4).
pub fn variant_for(config: NamedConfig) -> Variant {
    crate::variant_for_scheme(config.scheme())
}

/// Checks a report's gathered reduction results against the workload's
/// functional reference values; returns the number of mismatches.
pub fn verify_gathers(report: &SimReport, references: &[(ar_types::Addr, f64)]) -> usize {
    let mut mismatches = 0;
    for (target, expected) in references {
        match report.gather_result(*target) {
            Some(value) if relative_eq(value, *expected) => {}
            _ => mismatches += 1,
        }
    }
    mismatches
}

fn relative_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-6 * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Simulation;
    use crate::system::System;
    use ar_types::config::{OffloadScheme, SystemConfig};
    use ar_types::error::ConfigError;
    use ar_workloads::{SizeClass, WorkloadKind};

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 2_000_000;
        cfg
    }

    /// One run through the builder — what the removed `run` shim delegated
    /// to, inlined into the tests it used to serve.
    fn run_one(
        cfg: &SystemConfig,
        named: NamedConfig,
        workload: WorkloadKind,
        size: SizeClass,
    ) -> Result<SimReport, ConfigError> {
        Ok(Simulation::builder()
            .config(cfg.clone())
            .named(named)
            .workload(workload)
            .size(size)
            .build()?
            .run())
    }

    #[test]
    fn variant_selection_matches_configs() {
        assert_eq!(variant_for(NamedConfig::Dram), Variant::Baseline);
        assert_eq!(variant_for(NamedConfig::Hmc), Variant::Baseline);
        assert_eq!(variant_for(NamedConfig::ArfTid), Variant::Active);
        assert_eq!(variant_for(NamedConfig::ArfTidAdaptive), Variant::Adaptive);
    }

    #[test]
    fn reduce_microbenchmark_runs_and_verifies_on_arf_tid() {
        let cfg = small_cfg();
        let generated =
            WorkloadKind::Reduce.generate(cfg.cores.count, SizeClass::Tiny, Variant::Active);
        let report = run_one(&cfg, NamedConfig::ArfTid, WorkloadKind::Reduce, SizeClass::Tiny)
            .expect("valid configuration");
        assert!(report.completed, "simulation must finish before the cycle limit");
        assert!(report.updates_offloaded > 0);
        assert_eq!(verify_gathers(&report, &generated.references), 0);
    }

    #[test]
    fn mac_microbenchmark_verifies_on_every_offload_scheme() {
        let cfg = small_cfg();
        let generated =
            WorkloadKind::Mac.generate(cfg.cores.count, SizeClass::Tiny, Variant::Active);
        for named in [NamedConfig::Art, NamedConfig::ArfTid, NamedConfig::ArfAddr] {
            let report = run_one(&cfg, named, WorkloadKind::Mac, SizeClass::Tiny).expect("valid");
            assert!(report.completed, "{named} must finish");
            assert_eq!(
                verify_gathers(&report, &generated.references),
                0,
                "{named} must reproduce the reference dot product"
            );
        }
    }

    #[test]
    fn baseline_configs_run_without_offloading() {
        let cfg = small_cfg();
        for named in [NamedConfig::Dram, NamedConfig::Hmc] {
            let report =
                run_one(&cfg, named, WorkloadKind::Reduce, SizeClass::Tiny).expect("valid");
            assert!(report.completed, "{named} must finish");
            assert_eq!(report.updates_offloaded, 0);
            assert!(report.instructions > 0);
            assert!(report.l1_accesses > 0);
        }
    }

    #[test]
    fn offloading_reduces_offchip_normal_traffic_for_mac() {
        let cfg = small_cfg();
        let hmc = run_one(&cfg, NamedConfig::Hmc, WorkloadKind::Mac, SizeClass::Tiny).unwrap();
        let arf = run_one(&cfg, NamedConfig::ArfTid, WorkloadKind::Mac, SizeClass::Tiny).unwrap();
        assert!(
            arf.data_movement.norm_resp_bytes < hmc.data_movement.norm_resp_bytes,
            "offloading must replace cache-block fills with operand-sized active traffic"
        );
        assert!(arf.data_movement.active_req_bytes > 0);
        assert_eq!(hmc.data_movement.active_req_bytes, 0);
    }

    #[test]
    fn mismatched_scheme_and_streams_is_rejected() {
        let cfg = small_cfg().with_scheme(OffloadScheme::None);
        let generated =
            WorkloadKind::Mac.generate(cfg.cores.count, SizeClass::Tiny, Variant::Active);
        let err = System::new(cfg, generated.streams, generated.memory);
        assert!(err.is_err(), "offload streams on a non-offloading scheme must be rejected");
    }

    #[test]
    fn sweep_covers_the_plotted_five_in_order() {
        let results = crate::Sweep::new(small_cfg())
            .configs(NamedConfig::ALL)
            .workloads([WorkloadKind::Reduce])
            .size(SizeClass::Tiny)
            .run()
            .expect("valid configuration");
        assert_eq!(results.len(), NamedConfig::ALL.len());
        for (cell, config) in results.cells.iter().zip(NamedConfig::ALL) {
            assert_eq!(cell.report.config_label, config.to_string());
            assert!(cell.report.completed);
        }
    }
}
