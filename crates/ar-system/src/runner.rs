//! The original free-function driver surface, kept as thin shims over
//! [`Simulation`] for one release.
//!
//! New code should use [`crate::SimulationBuilder`] (single runs) and
//! [`crate::Sweep`] (matrices); see the README migration guide. The
//! verification helper [`verify_gathers`] is not deprecated, and
//! [`variant_for`] remains as a convenience alias over the builder's
//! [`crate::variant_for_scheme`].

use crate::builder::Simulation;
use crate::report::SimReport;
use crate::system::System;
use ar_types::config::{NamedConfig, SystemConfig};
use ar_types::error::ConfigError;
use ar_workloads::{SizeClass, Variant, WorkloadKind};

/// The workload variant a named configuration executes: the DRAM and HMC
/// baselines run the unoptimised kernels, the Active-Routing configurations
/// run the offloaded kernels, and ARF-tid-adaptive runs the dynamically
/// offloaded kernels (Section 5.4).
pub fn variant_for(config: NamedConfig) -> Variant {
    crate::variant_for_scheme(config.scheme())
}

/// Builds the system for one workload under one named configuration.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the base configuration is inconsistent.
#[deprecated(
    since = "0.1.0",
    note = "use Simulation::builder().config(..).named(..).workload(..).size(..).build()"
)]
pub fn build(
    base: &SystemConfig,
    config: NamedConfig,
    workload: WorkloadKind,
    size: SizeClass,
) -> Result<System, ConfigError> {
    Ok(Simulation::builder()
        .config(base.clone())
        .named(config)
        .workload(workload)
        .size(size)
        .build()?
        .into_system())
}

/// Runs one workload under one named configuration and returns the report.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the base configuration is inconsistent.
#[deprecated(
    since = "0.1.0",
    note = "use Simulation::builder().config(..).named(..).workload(..).size(..).build()?.run()"
)]
pub fn run(
    base: &SystemConfig,
    config: NamedConfig,
    workload: WorkloadKind,
    size: SizeClass,
) -> Result<SimReport, ConfigError> {
    Ok(Simulation::builder()
        .config(base.clone())
        .named(config)
        .workload(workload)
        .size(size)
        .build()?
        .run())
}

/// Runs one workload under every configuration of Fig. 5.1 (DRAM, HMC, ART,
/// ARF-tid, ARF-addr) and returns the reports in that order.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the base configuration is inconsistent.
#[deprecated(since = "0.1.0", note = "use Sweep::new(base).configs(NamedConfig::ALL)..run()")]
pub fn run_all_configs(
    base: &SystemConfig,
    workload: WorkloadKind,
    size: SizeClass,
) -> Result<Vec<SimReport>, ConfigError> {
    let results = crate::Sweep::new(base.clone())
        .configs(NamedConfig::ALL)
        .workloads([workload])
        .size(size)
        .run()?;
    Ok(results.cells.into_iter().map(|c| c.report).collect())
}

/// Checks a report's gathered reduction results against the workload's
/// functional reference values; returns the number of mismatches.
pub fn verify_gathers(report: &SimReport, references: &[(ar_types::Addr, f64)]) -> usize {
    let mut mismatches = 0;
    for (target, expected) in references {
        match report.gather_result(*target) {
            Some(value) if relative_eq(value, *expected) => {}
            _ => mismatches += 1,
        }
    }
    mismatches
}

fn relative_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-6 * scale
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use ar_types::config::OffloadScheme;

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 2_000_000;
        cfg
    }

    #[test]
    fn variant_selection_matches_configs() {
        assert_eq!(variant_for(NamedConfig::Dram), Variant::Baseline);
        assert_eq!(variant_for(NamedConfig::Hmc), Variant::Baseline);
        assert_eq!(variant_for(NamedConfig::ArfTid), Variant::Active);
        assert_eq!(variant_for(NamedConfig::ArfTidAdaptive), Variant::Adaptive);
    }

    #[test]
    fn reduce_microbenchmark_runs_and_verifies_on_arf_tid() {
        let cfg = small_cfg();
        let generated =
            WorkloadKind::Reduce.generate(cfg.cores.count, SizeClass::Tiny, Variant::Active);
        let report = run(&cfg, NamedConfig::ArfTid, WorkloadKind::Reduce, SizeClass::Tiny)
            .expect("valid configuration");
        assert!(report.completed, "simulation must finish before the cycle limit");
        assert!(report.updates_offloaded > 0);
        assert_eq!(verify_gathers(&report, &generated.references), 0);
    }

    #[test]
    fn mac_microbenchmark_verifies_on_every_offload_scheme() {
        let cfg = small_cfg();
        let generated =
            WorkloadKind::Mac.generate(cfg.cores.count, SizeClass::Tiny, Variant::Active);
        for named in [NamedConfig::Art, NamedConfig::ArfTid, NamedConfig::ArfAddr] {
            let report = run(&cfg, named, WorkloadKind::Mac, SizeClass::Tiny).expect("valid");
            assert!(report.completed, "{named} must finish");
            assert_eq!(
                verify_gathers(&report, &generated.references),
                0,
                "{named} must reproduce the reference dot product"
            );
        }
    }

    #[test]
    fn baseline_configs_run_without_offloading() {
        let cfg = small_cfg();
        for named in [NamedConfig::Dram, NamedConfig::Hmc] {
            let report = run(&cfg, named, WorkloadKind::Reduce, SizeClass::Tiny).expect("valid");
            assert!(report.completed, "{named} must finish");
            assert_eq!(report.updates_offloaded, 0);
            assert!(report.instructions > 0);
            assert!(report.l1_accesses > 0);
        }
    }

    #[test]
    fn offloading_reduces_offchip_normal_traffic_for_mac() {
        let cfg = small_cfg();
        let hmc = run(&cfg, NamedConfig::Hmc, WorkloadKind::Mac, SizeClass::Tiny).unwrap();
        let arf = run(&cfg, NamedConfig::ArfTid, WorkloadKind::Mac, SizeClass::Tiny).unwrap();
        assert!(
            arf.data_movement.norm_resp_bytes < hmc.data_movement.norm_resp_bytes,
            "offloading must replace cache-block fills with operand-sized active traffic"
        );
        assert!(arf.data_movement.active_req_bytes > 0);
        assert_eq!(hmc.data_movement.active_req_bytes, 0);
    }

    #[test]
    fn mismatched_scheme_and_streams_is_rejected() {
        let cfg = small_cfg().with_scheme(OffloadScheme::None);
        let generated =
            WorkloadKind::Mac.generate(cfg.cores.count, SizeClass::Tiny, Variant::Active);
        let err = System::new(cfg, generated.streams, generated.memory);
        assert!(err.is_err(), "offload streams on a non-offloading scheme must be rejected");
    }

    #[test]
    fn run_all_configs_covers_the_plotted_five_in_order() {
        let reports = run_all_configs(&small_cfg(), WorkloadKind::Reduce, SizeClass::Tiny)
            .expect("valid configuration");
        assert_eq!(reports.len(), NamedConfig::ALL.len());
        for (report, config) in reports.iter().zip(NamedConfig::ALL) {
            assert_eq!(report.config_label, config.to_string());
            assert!(report.completed);
        }
    }
}
