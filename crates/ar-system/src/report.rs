//! The result of one full-system simulation run.

use ar_power::{ActivityCounters, EnergyBreakdown, EnergyModel, PowerBreakdown};
use ar_sim::TimeSeries;
use ar_types::config::{NamedConfig, PowerConfig};
use ar_types::json::{Json, JsonError};
use ar_types::Addr;

/// Mean update roundtrip latency breakdown (Fig. 5.2), in network cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Mean request component (host port to compute cube).
    pub request: f64,
    /// Mean stall component (waiting for an operand buffer).
    pub stall: f64,
    /// Mean response component (operand fetch + ALU).
    pub response: f64,
}

impl LatencyBreakdown {
    /// Total mean roundtrip latency.
    pub fn total(&self) -> f64 {
        self.request + self.stall + self.response
    }
}

/// Data movement split into the four categories of Fig. 5.4, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataMovement {
    /// Normal (non-active) request bytes on the memory network / DRAM bus.
    pub norm_req_bytes: u64,
    /// Normal response bytes.
    pub norm_resp_bytes: u64,
    /// Active request bytes (Update, operand request, gather request).
    pub active_req_bytes: u64,
    /// Active response bytes (operand response, gather response).
    pub active_resp_bytes: u64,
}

impl DataMovement {
    /// Total off-chip bytes moved.
    pub fn total(&self) -> u64 {
        self.norm_req_bytes + self.norm_resp_bytes + self.active_req_bytes + self.active_resp_bytes
    }
}

/// Per-cube activity used by the Fig. 5.3 heatmaps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CubeActivity {
    /// Updates computed per cube ("update distribution").
    pub updates_computed: Vec<u64>,
    /// Operand requests served per cube ("operand distribution").
    pub operands_served: Vec<u64>,
    /// Operand-buffer stall cycles per cube.
    pub operand_buffer_stalls: Vec<u64>,
}

/// Aggregated core stall cycles (core clock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallSummary {
    /// Stalled with a memory access at the ROB head.
    pub memory: u64,
    /// Stalled waiting for a gather result.
    pub gather: u64,
    /// Stalled at a barrier.
    pub barrier: u64,
    /// Stalled because the Message Interface was full.
    pub offload: u64,
    /// Stalled with a full ROB.
    pub rob_full: u64,
}

impl StallSummary {
    /// Total stall cycles across all categories.
    pub fn total(&self) -> u64 {
        self.memory + self.gather + self.barrier + self.offload + self.rob_full
    }
}

/// Everything measured by one simulation run. This is the single input from
/// which every figure of the evaluation is regenerated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Configuration that was simulated.
    pub config_label: String,
    /// Simulated runtime in memory-network cycles (1 GHz).
    pub network_cycles: u64,
    /// Simulated runtime in core cycles (2 GHz).
    pub core_cycles: u64,
    /// Dynamic instructions retired across all cores.
    pub instructions: u64,
    /// Whether the run finished before the configured cycle limit.
    pub completed: bool,
    /// Aggregated core stalls.
    pub stalls: StallSummary,
    /// L1 accesses across all cores.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Coherence invalidations plus back-invalidations.
    pub invalidations: u64,
    /// Updates offloaded through the Message Interfaces.
    pub updates_offloaded: u64,
    /// Gathers offloaded.
    pub gathers_offloaded: u64,
    /// Update roundtrip latency breakdown (zero for non-offloading configs).
    pub update_latency: LatencyBreakdown,
    /// Off-chip data movement by category.
    pub data_movement: DataMovement,
    /// On-chip mesh byte-hops.
    pub noc_byte_hops: u64,
    /// Memory-network byte-hops (bit-hops / 8).
    pub network_byte_hops: u64,
    /// Bytes accessed in HMC DRAM.
    pub hmc_bytes: u64,
    /// Bytes accessed in DDR DRAM.
    pub dram_bytes: u64,
    /// ARE ALU operations across all cubes.
    pub are_ops: u64,
    /// Per-cube activity (empty vectors for the DRAM baseline).
    pub cube_activity: CubeActivity,
    /// Final gathered reduction results: `(target, value)`.
    pub gather_results: Vec<(Addr, f64)>,
    /// Windowed IPC samples (x = core cycles, y = IPC), Fig. 5.8.
    pub ipc_series: TimeSeries,
    /// Memory-network clock in GHz (for energy/power conversion).
    pub network_clock_ghz: f64,
}

impl SimReport {
    /// Instructions per core cycle, aggregated over all cores.
    pub fn ipc(&self) -> f64 {
        if self.core_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.core_cycles as f64
        }
    }

    /// Runtime in seconds at the configured network clock.
    pub fn runtime_seconds(&self) -> f64 {
        if self.network_clock_ghz <= 0.0 {
            0.0
        } else {
            self.network_cycles as f64 / (self.network_clock_ghz * 1e9)
        }
    }

    /// L1 miss rate in `[0, 1]`.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            1.0 - self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// The activity counters consumed by the energy model.
    pub fn activity(&self) -> ActivityCounters {
        ActivityCounters {
            l1_accesses: self.l1_accesses,
            l2_accesses: self.l2_accesses,
            noc_byte_hops: self.noc_byte_hops,
            dram_bytes: self.dram_bytes,
            hmc_bytes: self.hmc_bytes,
            memory_network_byte_hops: self.network_byte_hops,
            are_ops: self.are_ops,
            runtime_cycles: self.network_cycles,
            network_clock_ghz: self.network_clock_ghz,
        }
    }

    /// Energy breakdown under the given constants.
    pub fn energy(&self, power_cfg: &PowerConfig) -> EnergyBreakdown {
        EnergyModel::new(power_cfg.clone()).energy(&self.activity())
    }

    /// Average power breakdown under the given constants.
    pub fn power(&self, power_cfg: &PowerConfig) -> PowerBreakdown {
        EnergyModel::new(power_cfg.clone()).power(&self.activity())
    }

    /// Energy-delay product in joule-seconds under the given constants.
    pub fn energy_delay_product(&self, power_cfg: &PowerConfig) -> f64 {
        EnergyModel::new(power_cfg.clone()).energy_delay_product(&self.activity())
    }

    /// The gathered value for a reduction target, if any.
    pub fn gather_result(&self, target: Addr) -> Option<f64> {
        self.gather_results.iter().find(|(a, _)| *a == target).map(|(_, v)| *v)
    }

    /// Speedup of this run relative to a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.network_cycles == 0 {
            0.0
        } else {
            baseline.network_cycles as f64 / self.network_cycles as f64
        }
    }

    /// Convenience label helper for the figures.
    pub fn label_for(config: NamedConfig) -> String {
        config.to_string()
    }

    /// Serialises the full report as a [`Json`] document (the machine-
    /// readable form behind `ar-experiments --json`). Every counter, series
    /// and gather result is included; [`SimReport::from_json`] restores an
    /// identical report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.clone())),
            ("config_label", Json::from(self.config_label.clone())),
            ("network_cycles", Json::from(self.network_cycles)),
            ("core_cycles", Json::from(self.core_cycles)),
            ("instructions", Json::from(self.instructions)),
            ("completed", Json::from(self.completed)),
            (
                "stalls",
                Json::obj([
                    ("memory", self.stalls.memory),
                    ("gather", self.stalls.gather),
                    ("barrier", self.stalls.barrier),
                    ("offload", self.stalls.offload),
                    ("rob_full", self.stalls.rob_full),
                ]),
            ),
            ("l1_accesses", Json::from(self.l1_accesses)),
            ("l1_hits", Json::from(self.l1_hits)),
            ("l2_accesses", Json::from(self.l2_accesses)),
            ("l2_hits", Json::from(self.l2_hits)),
            ("invalidations", Json::from(self.invalidations)),
            ("updates_offloaded", Json::from(self.updates_offloaded)),
            ("gathers_offloaded", Json::from(self.gathers_offloaded)),
            (
                "update_latency",
                Json::obj([
                    ("request", self.update_latency.request),
                    ("stall", self.update_latency.stall),
                    ("response", self.update_latency.response),
                ]),
            ),
            (
                "data_movement",
                Json::obj([
                    ("norm_req_bytes", self.data_movement.norm_req_bytes),
                    ("norm_resp_bytes", self.data_movement.norm_resp_bytes),
                    ("active_req_bytes", self.data_movement.active_req_bytes),
                    ("active_resp_bytes", self.data_movement.active_resp_bytes),
                ]),
            ),
            ("noc_byte_hops", Json::from(self.noc_byte_hops)),
            ("network_byte_hops", Json::from(self.network_byte_hops)),
            ("hmc_bytes", Json::from(self.hmc_bytes)),
            ("dram_bytes", Json::from(self.dram_bytes)),
            ("are_ops", Json::from(self.are_ops)),
            (
                "cube_activity",
                Json::obj([
                    ("updates_computed", Json::arr(self.cube_activity.updates_computed.clone())),
                    ("operands_served", Json::arr(self.cube_activity.operands_served.clone())),
                    (
                        "operand_buffer_stalls",
                        Json::arr(self.cube_activity.operand_buffer_stalls.clone()),
                    ),
                ]),
            ),
            (
                "gather_results",
                Json::arr(self.gather_results.iter().map(|(addr, value)| {
                    Json::arr([Json::from(addr.as_u64()), Json::from(*value)])
                })),
            ),
            (
                "ipc_series",
                Json::arr(
                    self.ipc_series
                        .points()
                        .iter()
                        .map(|&(x, y)| Json::arr([Json::from(x), Json::from(y)])),
                ),
            ),
            ("network_clock_ghz", Json::from(self.network_clock_ghz)),
        ])
    }

    /// Reconstructs a report from [`SimReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when a field is missing or has the wrong type.
    pub fn from_json(doc: &Json) -> Result<SimReport, JsonError> {
        fn missing(key: &str) -> JsonError {
            JsonError { message: format!("missing or mistyped field {key:?}"), offset: 0 }
        }
        fn u(doc: &Json, key: &str) -> Result<u64, JsonError> {
            doc.get(key).and_then(Json::as_u64).ok_or_else(|| missing(key))
        }
        fn f(doc: &Json, key: &str) -> Result<f64, JsonError> {
            doc.get(key).and_then(Json::as_f64).ok_or_else(|| missing(key))
        }
        fn s(doc: &Json, key: &str) -> Result<String, JsonError> {
            doc.get(key).and_then(Json::as_str).map(str::to_string).ok_or_else(|| missing(key))
        }
        fn obj<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
            doc.get(key).ok_or_else(|| missing(key))
        }
        fn u_vec(doc: &Json, key: &str) -> Result<Vec<u64>, JsonError> {
            doc.get(key)
                .and_then(Json::as_array)
                .and_then(|items| items.iter().map(Json::as_u64).collect::<Option<Vec<u64>>>())
                .ok_or_else(|| missing(key))
        }
        fn pairs(doc: &Json, key: &str) -> Result<Vec<(f64, f64)>, JsonError> {
            doc.get(key)
                .and_then(Json::as_array)
                .and_then(|items| {
                    items
                        .iter()
                        .map(|p| match p.as_array()? {
                            [x, y] => Some((x.as_f64()?, y.as_f64()?)),
                            _ => None,
                        })
                        .collect::<Option<Vec<(f64, f64)>>>()
                })
                .ok_or_else(|| missing(key))
        }

        let stalls = obj(doc, "stalls")?;
        let latency = obj(doc, "update_latency")?;
        let movement = obj(doc, "data_movement")?;
        let activity = obj(doc, "cube_activity")?;
        let mut ipc_series = TimeSeries::new();
        for (x, y) in pairs(doc, "ipc_series")? {
            ipc_series.push(x, y);
        }
        let gather_results = pairs(doc, "gather_results")?
            .into_iter()
            .map(|(addr, value)| (Addr::new(addr as u64), value))
            .collect::<Vec<(Addr, f64)>>();

        Ok(SimReport {
            workload: s(doc, "workload")?,
            config_label: s(doc, "config_label")?,
            network_cycles: u(doc, "network_cycles")?,
            core_cycles: u(doc, "core_cycles")?,
            instructions: u(doc, "instructions")?,
            completed: doc
                .get("completed")
                .and_then(Json::as_bool)
                .ok_or_else(|| missing("completed"))?,
            stalls: StallSummary {
                memory: u(stalls, "memory")?,
                gather: u(stalls, "gather")?,
                barrier: u(stalls, "barrier")?,
                offload: u(stalls, "offload")?,
                rob_full: u(stalls, "rob_full")?,
            },
            l1_accesses: u(doc, "l1_accesses")?,
            l1_hits: u(doc, "l1_hits")?,
            l2_accesses: u(doc, "l2_accesses")?,
            l2_hits: u(doc, "l2_hits")?,
            invalidations: u(doc, "invalidations")?,
            updates_offloaded: u(doc, "updates_offloaded")?,
            gathers_offloaded: u(doc, "gathers_offloaded")?,
            update_latency: LatencyBreakdown {
                request: f(latency, "request")?,
                stall: f(latency, "stall")?,
                response: f(latency, "response")?,
            },
            data_movement: DataMovement {
                norm_req_bytes: u(movement, "norm_req_bytes")?,
                norm_resp_bytes: u(movement, "norm_resp_bytes")?,
                active_req_bytes: u(movement, "active_req_bytes")?,
                active_resp_bytes: u(movement, "active_resp_bytes")?,
            },
            noc_byte_hops: u(doc, "noc_byte_hops")?,
            network_byte_hops: u(doc, "network_byte_hops")?,
            hmc_bytes: u(doc, "hmc_bytes")?,
            dram_bytes: u(doc, "dram_bytes")?,
            are_ops: u(doc, "are_ops")?,
            cube_activity: CubeActivity {
                updates_computed: u_vec(activity, "updates_computed")?,
                operands_served: u_vec(activity, "operands_served")?,
                operand_buffer_stalls: u_vec(activity, "operand_buffer_stalls")?,
            },
            gather_results,
            ipc_series,
            network_clock_ghz: f(doc, "network_clock_ghz")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> SimReport {
        SimReport {
            workload: "test".into(),
            config_label: "HMC".into(),
            network_cycles: cycles,
            core_cycles: cycles * 2,
            instructions: 1000,
            completed: true,
            l1_accesses: 100,
            l1_hits: 80,
            hmc_bytes: 6400,
            network_byte_hops: 12800,
            network_clock_ghz: 1.0,
            ..SimReport::default()
        }
    }

    #[test]
    fn ipc_and_miss_rate() {
        let r = report(500);
        assert!((r.ipc() - 1.0).abs() < 1e-12);
        assert!((r.l1_miss_rate() - 0.2).abs() < 1e-12);
        assert!((r.runtime_seconds() - 500e-9).abs() < 1e-18);
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let slow = report(1000);
        let fast = report(250);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn energy_and_edp_are_positive_for_nonzero_activity() {
        let r = report(1000);
        let cfg = PowerConfig::default();
        assert!(r.energy(&cfg).total_pj() > 0.0);
        assert!(r.power(&cfg).total_w() > 0.0);
        assert!(r.energy_delay_product(&cfg) > 0.0);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut r = report(1234);
        r.stalls = StallSummary { memory: 1, gather: 2, barrier: 3, offload: 4, rob_full: 5 };
        r.update_latency = LatencyBreakdown { request: 10.5, stall: 0.25, response: 7.0 };
        r.data_movement = DataMovement {
            norm_req_bytes: 11,
            norm_resp_bytes: 22,
            active_req_bytes: 33,
            active_resp_bytes: 44,
        };
        r.cube_activity = CubeActivity {
            updates_computed: vec![1, 2, 3],
            operands_served: vec![4, 5, 6],
            operand_buffer_stalls: vec![0, 0, 9],
        };
        r.gather_results = vec![(Addr::new(0x3000_0040), -1.5), (Addr::new(0x88), 2.25)];
        r.ipc_series.push(2048.0, 0.75);
        r.ipc_series.push(4096.0, 1.25);

        let text = r.to_json().render();
        let parsed = SimReport::from_json(&Json::parse(&text).expect("valid JSON"))
            .expect("well-formed report document");
        assert_eq!(parsed, r);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let doc = Json::parse(r#"{"workload": "x"}"#).unwrap();
        let err = SimReport::from_json(&doc).unwrap_err();
        assert!(err.message.contains("missing or mistyped"), "{err}");
    }

    #[test]
    fn data_movement_totals() {
        let d = DataMovement {
            norm_req_bytes: 1,
            norm_resp_bytes: 2,
            active_req_bytes: 3,
            active_resp_bytes: 4,
        };
        assert_eq!(d.total(), 10);
        let l = LatencyBreakdown { request: 1.0, stall: 2.0, response: 3.0 };
        assert_eq!(l.total(), 6.0);
        let s = StallSummary { memory: 1, gather: 1, barrier: 1, offload: 1, rob_full: 1 };
        assert_eq!(s.total(), 5);
    }
}
