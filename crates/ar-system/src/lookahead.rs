//! Minimum cross-shard delivery latencies for conservative cross-cycle
//! execution.
//!
//! Bounded-lag run-ahead (see `System::with_cross_cycle`) needs, for every
//! pair of shards, a *lookahead*: the minimum number of network cycles any
//! influence needs to travel from one to the other. On the dragonfly that is
//! the minimal-route hop count times the per-hop latency — bandwidth
//! serialization, link queueing and crossbar/TSV traversal only ever add on
//! top, so the product is a sound lower bound. The table is precomputed once
//! per simulation from the topology; lookups on the arming path are O(1).

use ar_network::DragonflyTopology;
use ar_types::ids::{CubeId, NetNode, PortId};
use ar_types::Cycle;

/// Precomputed minimum delivery latencies between the shards of the memory
/// system: cube↔cube and cube↔host-side (the host side covers the cores,
/// whose packets enter and leave the network through the host ports).
#[derive(Debug, Clone)]
pub(crate) struct LookaheadTable {
    /// `cube_cube[from * cubes + to]`: min cycles for a packet injected at
    /// cube `from` to arrive at cube `to` (0 on the diagonal).
    cube_cube: Vec<Cycle>,
    /// `host_cube[to]`: min cycles from any host port to cube `to`.
    host_cube: Vec<Cycle>,
    /// `cube_host[from]`: min cycles from cube `from` to any host port.
    cube_host: Vec<Cycle>,
    /// Smallest `host_cube` entry: the fastest the host side can influence
    /// *any* cube. Cached for the arming fast path.
    min_host_cube: Cycle,
    cubes: usize,
}

impl LookaheadTable {
    /// Builds the table for a topology with the given per-hop latency.
    pub fn new(topology: &DragonflyTopology, hop_latency: Cycle) -> Self {
        let cubes = topology.cubes();
        let ports = topology.host_ports();
        let lat = |from: NetNode, to: NetNode| -> Cycle {
            Cycle::from(topology.hop_count(from, to)) * hop_latency
        };
        let mut cube_cube = Vec::with_capacity(cubes * cubes);
        for from in 0..cubes {
            for to in 0..cubes {
                cube_cube
                    .push(lat(NetNode::Cube(CubeId::new(from)), NetNode::Cube(CubeId::new(to))));
            }
        }
        let port_nodes: Vec<NetNode> = (0..ports).map(|p| NetNode::Host(PortId::new(p))).collect();
        let host_cube = (0..cubes)
            .map(|to| {
                port_nodes
                    .iter()
                    .map(|&p| lat(p, NetNode::Cube(CubeId::new(to))))
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        let cube_host = (0..cubes)
            .map(|from| {
                port_nodes
                    .iter()
                    .map(|&p| lat(NetNode::Cube(CubeId::new(from)), p))
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        let mut table = LookaheadTable { cube_cube, host_cube, cube_host, min_host_cube: 0, cubes };
        table.close_over_relays();
        table.min_host_cube = table.host_cube.iter().copied().min().unwrap_or(0);
        table
    }

    /// Closes the table under relaying (Floyd–Warshall over the cubes plus
    /// the host side as one extra node).
    ///
    /// The deterministic dragonfly route between two nodes is minimal only
    /// per the routing function — it need not satisfy the triangle
    /// inequality, while the horizon math composes legs freely (an influence
    /// may bounce through any cube's engine or any host port). After the
    /// closure every entry is a lower bound over *all* relay chains, so
    /// `a→b→c` can never undercut the tabled `a→c`.
    fn close_over_relays(&mut self) {
        let n = self.cubes;
        // Node n is the host side: packets can leave at one port and
        // re-enter at another at no tabled cost, which the single-node
        // encoding (min over ports on each leg) captures exactly.
        let host = n;
        let mut dist = vec![0 as Cycle; (n + 1) * (n + 1)];
        for a in 0..n {
            for b in 0..n {
                dist[a * (n + 1) + b] = self.cube_cube[a * n + b];
            }
            dist[a * (n + 1) + host] = self.cube_host[a];
            dist[host * (n + 1) + a] = self.host_cube[a];
        }
        for via in 0..=n {
            for a in 0..=n {
                let through = dist[a * (n + 1) + via];
                for b in 0..=n {
                    let relayed = through.saturating_add(dist[via * (n + 1) + b]);
                    let direct = &mut dist[a * (n + 1) + b];
                    *direct = (*direct).min(relayed);
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                self.cube_cube[a * n + b] = dist[a * (n + 1) + b];
            }
            self.cube_host[a] = dist[a * (n + 1) + host];
            self.host_cube[a] = dist[host * (n + 1) + a];
        }
    }

    /// Min cycles for traffic injected at cube `from` to reach cube `to`.
    pub fn cube_to_cube(&self, from: usize, to: usize) -> Cycle {
        self.cube_cube[from * self.cubes + to]
    }

    /// Min cycles for traffic injected at any host port to reach cube `to`.
    pub fn host_to_cube(&self, to: usize) -> Cycle {
        self.host_cube[to]
    }

    /// Min cycles for host-side traffic to reach the *closest* cube — the
    /// tightest host-activity cap any cube's horizon can see.
    pub fn min_host_to_cube(&self) -> Cycle {
        self.min_host_cube
    }

    /// Min cycles for traffic injected at cube `from` to reach any host
    /// port.
    pub fn cube_to_host(&self, from: usize) -> Cycle {
        self.cube_host[from]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_lower_bounds_the_routed_path() {
        let topo = DragonflyTopology::paper();
        let table = LookaheadTable::new(&topo, 3);
        let cubes = topo.cubes();
        for from in 0..cubes {
            assert_eq!(table.cube_to_cube(from, from), 0, "diagonal must be zero");
            for to in 0..cubes {
                let hops = topo
                    .hop_count(NetNode::Cube(CubeId::new(from)), NetNode::Cube(CubeId::new(to)));
                assert!(table.cube_to_cube(from, to) <= Cycle::from(hops) * 3);
                if from != to {
                    assert!(
                        table.cube_to_cube(from, to) >= 3,
                        "distinct cubes are at least one hop apart"
                    );
                }
            }
        }
    }

    #[test]
    fn host_bounds_lower_bound_every_port() {
        let topo = DragonflyTopology::paper();
        let table = LookaheadTable::new(&topo, 2);
        for c in 0..topo.cubes() {
            let min_in = (0..topo.host_ports())
                .map(|p| {
                    topo.hop_count(NetNode::Host(PortId::new(p)), NetNode::Cube(CubeId::new(c)))
                })
                .min()
                .unwrap();
            let min_out = (0..topo.host_ports())
                .map(|p| {
                    topo.hop_count(NetNode::Cube(CubeId::new(c)), NetNode::Host(PortId::new(p)))
                })
                .min()
                .unwrap();
            assert!(table.host_to_cube(c) <= Cycle::from(min_in) * 2);
            assert!(table.cube_to_host(c) <= Cycle::from(min_out) * 2);
            assert!(table.host_to_cube(c) >= 2, "every cube is at least one hop from a port");
            assert!(table.cube_to_host(c) >= 2, "every cube is at least one hop from a port");
        }
    }

    #[test]
    fn closed_table_satisfies_the_triangle_inequality() {
        // The horizon math composes legs freely (an influence may bounce
        // through any cube's engine or the host side), so every tabled
        // distance must respect the triangle inequality — including legs
        // through the host, where deterministic dragonfly routing alone
        // gives no such guarantee.
        for topo in [DragonflyTopology::paper(), DragonflyTopology::new(4, 1, 1)] {
            let table = LookaheadTable::new(&topo, 5);
            let n = topo.cubes();
            for a in 0..n {
                for b in 0..n {
                    for via in 0..n {
                        assert!(
                            table.cube_to_cube(a, b)
                                <= table.cube_to_cube(a, via) + table.cube_to_cube(via, b),
                            "triangle inequality violated at {a}->{via}->{b}"
                        );
                    }
                    assert!(
                        table.cube_to_cube(a, b) <= table.cube_to_host(a) + table.host_to_cube(b),
                        "host relay undercuts the tabled {a}->{b} distance"
                    );
                    assert!(
                        table.cube_to_host(a) <= table.cube_to_cube(a, b) + table.cube_to_host(b),
                        "cube relay undercuts the tabled {a}->host distance"
                    );
                    assert!(
                        table.host_to_cube(b) <= table.host_to_cube(a) + table.cube_to_cube(a, b),
                        "cube relay undercuts the tabled host->{b} distance"
                    );
                }
            }
        }
    }
}
