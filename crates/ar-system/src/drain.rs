//! Closed-form planning of system-level offload-drain windows.
//!
//! In the MI-full offload regime — cores issuing a long run of `Update`
//! items against a back-pressuring Message Interface — the whole cluster
//! reduces to a deterministic scalar recurrence: each core cycle retires up
//! to `issue_width` instructions from an all-retirable ROB and issues head
//! updates while the ROB and MI have space, and each network cycle the
//! system drains one command per non-empty MI into the host controller.
//! Nothing external can intervene once the system has verified the arming
//! guards (no outstanding memory requests or undelivered completions, an
//! idle host controller, every other core inert — see
//! `System::try_arm_offload_drain`), so the per-cycle kernel's behaviour
//! over the window is a pure function of three scalars per core: ROB
//! occupancy in instructions, MI occupancy and the remaining update run.
//!
//! [`plan`] iterates exactly that recurrence — the same checks, in the same
//! order, as `Core::tick`'s retire and issue stages (`rob_space() == 0`
//! first, then the stream peek, then the MI-space check) and the system's
//! one-pop-per-cycle MI drain — over plain integers instead of the ROB
//! `VecDeque`, the stream and the scheduler. The ROB's slot partitioning is
//! irrelevant in this regime because occupancy is counted in instructions
//! and the retire stage crosses slot boundaries (`Core::rob_space`), and
//! every slot issued inside the window is retirable by its first retire
//! opportunity (`Ready(cycle + 1)`). The planner stops the window before
//! any cycle in which the issue stage would peek past the update run — the
//! peeked item could issue a memory access or offload a gather, which is no
//! longer plannable — and before any externally imposed boundary the system
//! passes in (`max_cycles`: IPC sample boundaries, the global cycle limit,
//! a fast-forwarding core's interval end), so `SimReport`s stay
//! byte-identical to the lock-step oracle at every split point.
//!
//! The pop schedule the planner emits is replayed by the system at the
//! commands' true network cycles (`System::flush_drain_outbox`): host
//! controller submissions and packet injections keep their exact per-cycle
//! timing and ordering, so the memory side cannot tell a planned window
//! from a ticked one. Only the core-side per-cycle ticking is skipped; its
//! aggregate effect is applied in one shot by `Core::finish_offload_drain`.

use ar_cpu::OffloadDrainProbe;
use ar_types::WorkItem;

/// Minimum window length (network cycles) worth arming: shorter windows are
/// ticked per cycle, the planner's probe/commit overhead would dominate.
pub(crate) const MIN_DRAIN_CYCLES: u64 = 8;

/// Cap on the commands one window may schedule for submission. Bounds the
/// outbox memory of very long drains; the regime re-arms immediately after
/// a capped window, so long drains run as a chain of windows.
pub(crate) const MAX_WINDOW_POPS: u64 = 16_384;

/// How a window cycle's issue stage ended, for stall attribution. Mirrors
/// the `blocked_reason` strings of `Core::tick`'s issue loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    None,
    Offload,
    Rob,
}

/// Evolving scalar state and accumulators of one drain core inside the
/// planner. Constructed from the core's [`OffloadDrainProbe`]; the
/// accumulators become the core's `OffloadDrainOutcome` when the window
/// commits.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreDrain {
    issue_width: u64,
    rob_entries: u64,
    mi_depth: u64,
    /// ROB occupancy in instructions (all retirable).
    q: u64,
    /// MI occupancy in commands.
    mi_len: u64,
    /// `Update` items left in the stream-head run.
    updates_left: u64,
    /// Instructions retired inside the window so far.
    pub retired: u64,
    /// Fully-stalled cycles attributed to a full Message Interface.
    pub stall_offload: u64,
    /// Fully-stalled cycles attributed to a full ROB.
    pub stall_rob_full: u64,
    /// Stream updates issued (popped from the stream, pushed into the MI).
    pub pushes: u64,
    /// Commands drained from the MI front.
    pub pops: u64,
}

impl CoreDrain {
    pub(crate) fn new(probe: &OffloadDrainProbe) -> Self {
        CoreDrain {
            issue_width: probe.issue_width,
            rob_entries: probe.rob_entries,
            mi_depth: probe.mi_depth,
            q: probe.rob_insns,
            mi_len: probe.mi_len,
            updates_left: probe.update_run,
            retired: 0,
            stall_offload: 0,
            stall_rob_full: 0,
            pushes: 0,
            pops: 0,
        }
    }

    /// Advances this core by one network cycle: `ratio` core ticks (retire,
    /// then issue, then stall attribution — the exact order and checks of
    /// `Core::tick` restricted to the drain regime) followed by the
    /// system's one MI pop. Returns `None` when a tick would peek past the
    /// update run (the window must end before this cycle), otherwise
    /// whether the MI drained a command.
    fn advance_network_cycle(&mut self, ratio: u64) -> Option<bool> {
        for _ in 0..ratio {
            // Retire: every ROB instruction is retirable (slots issued in
            // the window become ready the cycle after their push), so the
            // stage always retires `min(occupancy, width)`.
            let retired = self.q.min(self.issue_width);
            self.q -= retired;
            self.retired += retired;
            // Issue: head updates while the ROB and MI have space, with the
            // same check order as the per-cycle issue loop.
            let mut budget = self.issue_width;
            let mut issued = 0u64;
            let mut blocked = Blocked::None;
            while budget > 0 {
                if self.rob_entries.saturating_sub(self.q) == 0 {
                    blocked = Blocked::Rob;
                    break;
                }
                // The real issue stage peeks the stream here; past the run
                // the peeked item is no longer an `Update`, so the cycle is
                // not plannable and the window ends before it.
                if self.updates_left == 0 {
                    return None;
                }
                if self.mi_len == self.mi_depth {
                    blocked = Blocked::Offload;
                    break;
                }
                self.q += WorkItem::UPDATE_INSNS;
                self.mi_len += 1;
                self.updates_left -= 1;
                self.pushes += 1;
                issued += WorkItem::UPDATE_INSNS;
                budget = budget.saturating_sub(WorkItem::UPDATE_INSNS);
            }
            if retired == 0 && issued == 0 {
                match blocked {
                    Blocked::Offload => self.stall_offload += 1,
                    Blocked::Rob => self.stall_rob_full += 1,
                    Blocked::None => {}
                }
            }
        }
        if self.mi_len > 0 {
            self.mi_len -= 1;
            self.pops += 1;
            Some(true)
        } else {
            Some(false)
        }
    }
}

/// Plans one drain window over `cores` (window-relative network cycles
/// `1..=max_cycles`), mutating each core's scalars/accumulators to the
/// window end and appending every MI pop to `pops` as
/// `(window-relative cycle, index into cores)` in cycle-major, then
/// input-order — the submission order `System::drain_message_interfaces`
/// would have used. Returns the planned window length in network cycles
/// (possibly 0). A cycle in which any core's issue stage would peek past
/// its update run ends the window *before* that cycle, atomically for all
/// cores; planning also stops once `max_pops` commands are scheduled.
pub(crate) fn plan(
    cores: &mut [CoreDrain],
    ratio: u64,
    max_cycles: u64,
    max_pops: u64,
    pops: &mut Vec<(u64, u32)>,
) -> u64 {
    debug_assert!(ratio > 0, "core/network clock ratio must be non-zero");
    let mut snapshot = cores.to_vec();
    let mut total_pops = 0u64;
    let mut planned = 0u64;
    'window: for rel in 1..=max_cycles {
        snapshot.copy_from_slice(cores);
        let pops_mark = pops.len();
        for (idx, core) in cores.iter_mut().enumerate() {
            match core.advance_network_cycle(ratio) {
                // Peek past the run: drop this cycle for *all* cores.
                None => {
                    cores.copy_from_slice(&snapshot);
                    pops.truncate(pops_mark);
                    break 'window;
                }
                Some(true) => {
                    total_pops += 1;
                    pops.push((rel, idx as u32));
                }
                Some(false) => {}
            }
        }
        planned = rel;
        if total_pops >= max_pops {
            break;
        }
    }
    planned
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_cpu::{Core, OffloadDrainOutcome};
    use ar_sim::SimRng;
    use ar_types::config::CoreConfig;
    use ar_types::{Addr, CoreId, Cycle, ReduceOp, WorkStream};

    fn update_item(i: u64) -> WorkItem {
        WorkItem::Update {
            op: ReduceOp::Sum,
            src1: Addr::new(0x1000 + i * 8),
            src2: None,
            imm: None,
            target: Addr::new(0x8_0000 + (i % 7) * 8),
        }
    }

    /// Drives `core` per cycle over `ncs` network cycles starting at network
    /// cycle `start_nc` — `ratio` ticks then one MI pop, exactly the system's
    /// cores phase in the drain regime — and returns the popped commands.
    fn drive_per_cycle(core: &mut Core, start_nc: Cycle, ncs: u64, ratio: u64) -> Vec<u64> {
        let mut pop_cycles = Vec::new();
        for nc in start_nc..start_nc + ncs {
            for sub in 0..ratio {
                // Past the update run the core may legitimately issue memory
                // (the appended follower); both cores do so identically, and
                // no responses arrive, so the comparison stays exact.
                let _ = core.tick(nc * ratio + sub);
            }
            if core.mi_mut().pop().is_some() {
                pop_cycles.push(nc);
            }
        }
        pop_cycles
    }

    /// The planner and per-cycle ticking must agree on every counter and on
    /// the post-window behaviour, across random widths, ROB sizes, MI
    /// depths, run lengths, warm-up states and clock ratios.
    #[test]
    fn planned_windows_match_per_cycle_ticking() {
        let mut rng = SimRng::seed_from_u64(0xd5a1_0e6f);
        for case in 0..200 {
            let ratio = 1 + rng.next_below(3);
            let cfg = CoreConfig {
                issue_width: [1, 2, 4, 8][rng.index(4)],
                rob_entries: [4, 8, 32, 96][rng.index(4)],
                mi_queue_depth: [1, 2, 4, 16][rng.index(4)],
                ..CoreConfig::default()
            };
            let run = 4 + rng.next_below(160);
            let mut stream = WorkStream::new(ar_types::ThreadId::new(0));
            for i in 0..run {
                stream.push(update_item(i));
            }
            // A non-update follower half the time, exercising the peek-stop.
            if rng.chance(0.5) {
                stream.push(WorkItem::Load(Addr::new(0x9_0000)));
            }
            let mut oracle = Core::new(CoreId::new(0), &cfg, stream.clone());
            let mut planned_core = Core::new(CoreId::new(0), &cfg, stream);
            // Warm both cores identically into a mid-drain state.
            let warmup = rng.next_below(6);
            drive_per_cycle(&mut oracle, 0, warmup, ratio);
            drive_per_cycle(&mut planned_core, 0, warmup, ratio);

            let since = warmup * ratio;
            let Some(probe) = planned_core.offload_drain_probe(since, MAX_WINDOW_POPS + 32) else {
                continue; // warm-up consumed the run — nothing to plan
            };
            let mut cores = vec![CoreDrain::new(&probe)];
            let mut pops = Vec::new();
            let max_cycles = 1 + rng.next_below(400);
            let ncs = plan(&mut cores, ratio, max_cycles, MAX_WINDOW_POPS, &mut pops);
            assert!(ncs <= max_cycles);
            if ncs == 0 {
                continue;
            }
            let plan_result = cores[0];
            assert_eq!(plan_result.pops, pops.len() as u64);

            // Collect the commands the system would submit, then commit.
            let mut commands = Vec::new();
            planned_core.peek_drain_commands(plan_result.pops, &mut commands);
            planned_core.finish_offload_drain(&OffloadDrainOutcome {
                core_cycles: ncs * ratio,
                end_ready_at: (warmup + ncs) * ratio,
                retired: plan_result.retired,
                stall_offload: plan_result.stall_offload,
                stall_rob_full: plan_result.stall_rob_full,
                pushes: plan_result.pushes,
                pops: plan_result.pops,
            });

            // The oracle ticks the same window per cycle; its popped
            // commands must equal the planned submission schedule.
            let mut oracle_cmds = Vec::new();
            for nc in warmup..warmup + ncs {
                for sub in 0..ratio {
                    let out = oracle.tick(nc * ratio + sub);
                    assert!(out.mem_requests.is_empty());
                }
                if let Some(cmd) = oracle.mi_mut().pop() {
                    oracle_cmds.push((nc - warmup + 1, cmd));
                }
            }
            assert_eq!(oracle_cmds.len(), commands.len(), "case {case}: pop count");
            for (i, ((rel, cmd), planned_cmd)) in oracle_cmds.iter().zip(&commands).enumerate() {
                assert_eq!(*rel, pops[i].0, "case {case}: pop {i} cycle");
                assert_eq!(cmd, planned_cmd, "case {case}: pop {i} command");
            }

            let check = |oracle: &Core, planned: &Core, when: &str| {
                assert_eq!(oracle.cycles(), planned.cycles(), "case {case} {when}: cycles");
                assert_eq!(
                    oracle.instructions_retired(),
                    planned.instructions_retired(),
                    "case {case} {when}: retired"
                );
                assert_eq!(oracle.stalls(), planned.stalls(), "case {case} {when}: stalls");
                assert_eq!(
                    oracle.updates_offloaded(),
                    planned.updates_offloaded(),
                    "case {case} {when}: updates"
                );
                assert_eq!(oracle.mi().len(), planned.mi().len(), "case {case} {when}: MI");
                assert_eq!(oracle.is_done(), planned.is_done(), "case {case} {when}: done");
            };
            check(&oracle, &planned_core, "at window end");

            // Continue both per cycle past the window: the merged-ROB
            // rebuild must be behaviourally invisible.
            let tail_pops_o = drive_per_cycle(&mut oracle, warmup + ncs, 40, ratio);
            let tail_pops_p = drive_per_cycle(&mut planned_core, warmup + ncs, 40, ratio);
            assert_eq!(tail_pops_o, tail_pops_p, "case {case}: post-window pop schedule");
            check(&oracle, &planned_core, "after the window tail");
        }
    }

    /// The pop budget truncates the window without corrupting the schedule.
    #[test]
    fn pop_budget_caps_the_window() {
        let cfg = CoreConfig {
            issue_width: 4,
            rob_entries: 32,
            mi_queue_depth: 4,
            ..CoreConfig::default()
        };
        let mut stream = WorkStream::new(ar_types::ThreadId::new(0));
        for i in 0..500 {
            stream.push(update_item(i));
        }
        let core = Core::new(CoreId::new(0), &cfg, stream);
        let probe = core.offload_drain_probe(0, 1_000).expect("fresh update run probes");
        let mut cores = vec![CoreDrain::new(&probe)];
        let mut pops = Vec::new();
        let ncs = plan(&mut cores, 2, 10_000, 10, &mut pops);
        assert!(cores[0].pops >= 10, "window must stop only once the budget is met");
        assert_eq!(pops.len() as u64, cores[0].pops);
        assert!(ncs < 10_000);
    }
}
