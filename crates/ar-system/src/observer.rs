//! Streaming observation of a running simulation.
//!
//! A [`SimReport`] only becomes available once a run ends;
//! an [`Observer`] instead receives [`SimEvent`]s *while the event-driven
//! kernel executes* — periodic IPC samples, gather completions, barrier
//! releases — and can stop the run early. Observers are attached through
//! [`SimulationBuilder::observer`](crate::SimulationBuilder::observer) (or
//! [`System::run_observed`](crate::System::run_observed)); runs without
//! observers pay nothing.
//!
//! Observers never influence simulated timing: the kernel produces exactly
//! the same cycle-level behaviour with or without them (only
//! [`ObserverControl::Stop`] cuts the run short, the same way the
//! `max_cycles` limit does).
//!
//! # Example
//!
//! ```
//! use ar_system::{Observer, ObserverControl, SimEvent, Simulation};
//! use ar_types::config::{NamedConfig, SystemConfig};
//! use ar_workloads::{SizeClass, WorkloadKind};
//!
//! /// Counts gather completions as they stream out of the network.
//! #[derive(Default)]
//! struct GatherCounter {
//!     seen: usize,
//! }
//!
//! impl Observer for GatherCounter {
//!     fn on_event(&mut self, event: &SimEvent) -> ObserverControl {
//!         if let SimEvent::GatherCompleted { .. } = event {
//!             self.seen += 1;
//!         }
//!         ObserverControl::Continue
//!     }
//! }
//!
//! let mut cfg = SystemConfig::small();
//! cfg.max_cycles = 2_000_000;
//! let report = Simulation::builder()
//!     .config(cfg)
//!     .named(NamedConfig::ArfTid)
//!     .workload(WorkloadKind::Reduce)
//!     .size(SizeClass::Tiny)
//!     .observer(GatherCounter::default())
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! assert!(report.completed);
//! ```

use crate::report::SimReport;
use ar_types::config::SystemConfig;
use ar_types::{Addr, Cycle};

/// Identification of the run an observer is attached to, passed to
/// [`Observer::on_start`].
#[derive(Debug, Clone, Copy)]
pub struct RunInfo<'a> {
    /// Workload label of the run (may be empty for hand-built systems).
    pub workload: &'a str,
    /// Configuration label of the run.
    pub config_label: &'a str,
    /// The full system configuration being simulated.
    pub cfg: &'a SystemConfig,
}

/// One periodic statistics sample (taken at every IPC window boundary, the
/// same cadence as the Fig. 5.8 time series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Memory-network cycle of the sample.
    pub network_cycle: Cycle,
    /// Core cycle of the sample.
    pub core_cycle: Cycle,
    /// Total instructions retired so far, across all cores.
    pub instructions: u64,
    /// IPC over the window that just closed.
    pub window_ipc: f64,
}

/// An event streamed to observers during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A periodic statistics sample.
    Sample(Sample),
    /// An offloaded gather delivered its final reduction value to the host.
    GatherCompleted {
        /// Memory-network cycle of the completion.
        network_cycle: Cycle,
        /// Reduction target address.
        target: Addr,
        /// Gathered value.
        value: f64,
    },
    /// All threads reached a barrier and it was released.
    BarrierReleased {
        /// Core cycle of the release.
        core_cycle: Cycle,
        /// Barrier id.
        id: u32,
    },
}

/// Whether the simulation should continue after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObserverControl {
    /// Keep simulating.
    #[default]
    Continue,
    /// Stop at the end of the current cycle. The run's report is returned
    /// as-is with `completed == false` (unless the system happened to finish
    /// on that same cycle).
    Stop,
}

/// A streaming consumer of simulation events.
///
/// All methods have no-op defaults, so an implementation only overrides what
/// it cares about.
pub trait Observer {
    /// Called once before the first cycle is processed.
    fn on_start(&mut self, _run: &RunInfo<'_>) {}

    /// Called for every [`SimEvent`]. Returning [`ObserverControl::Stop`]
    /// ends the run at the current cycle.
    fn on_event(&mut self, _event: &SimEvent) -> ObserverControl {
        ObserverControl::Continue
    }

    /// Called once with the final report (after `completed` is known).
    fn on_finish(&mut self, _report: &SimReport) {}
}

/// An [`Observer`] that records every [`Sample`] it sees — the simplest
/// useful stat sink, and the one the examples use to stream IPC.
#[derive(Debug, Default)]
pub struct SampleRecorder {
    samples: Vec<Sample>,
}

impl SampleRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded samples, in simulation order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

impl Observer for SampleRecorder {
    fn on_event(&mut self, event: &SimEvent) -> ObserverControl {
        if let SimEvent::Sample(sample) = event {
            self.samples.push(*sample);
        }
        ObserverControl::Continue
    }
}

/// An [`Observer`] that stops the run once a sample at or past a network
/// cycle deadline is seen — early exit for "simulate roughly the first N
/// cycles" studies without touching `max_cycles`.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineStop {
    deadline: Cycle,
}

impl DeadlineStop {
    /// Stops at the first sample taken at or after `deadline` network cycles.
    pub fn at(deadline: Cycle) -> Self {
        DeadlineStop { deadline }
    }
}

impl Observer for DeadlineStop {
    fn on_event(&mut self, event: &SimEvent) -> ObserverControl {
        match event {
            SimEvent::Sample(sample) if sample.network_cycle >= self.deadline => {
                ObserverControl::Stop
            }
            _ => ObserverControl::Continue,
        }
    }
}

/// The driver-side fan-out over the observers of one run. Internal to the
/// kernel: it exists so `System::step` can emit events without caring how
/// many observers are attached (none being the common, free case).
pub(crate) struct ObserverHub<'a> {
    observers: &'a mut [Box<dyn Observer>],
    stop: bool,
}

impl<'a> ObserverHub<'a> {
    pub(crate) fn new(observers: &'a mut [Box<dyn Observer>]) -> Self {
        ObserverHub { observers, stop: false }
    }

    /// True when no observer is attached (events need not be built).
    pub(crate) fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// True once any observer requested a stop.
    pub(crate) fn stopped(&self) -> bool {
        self.stop
    }

    pub(crate) fn start(&mut self, run: &RunInfo<'_>) {
        for observer in self.observers.iter_mut() {
            observer.on_start(run);
        }
    }

    pub(crate) fn emit(&mut self, event: &SimEvent) {
        for observer in self.observers.iter_mut() {
            if observer.on_event(event) == ObserverControl::Stop {
                self.stop = true;
            }
        }
    }

    pub(crate) fn finish(&mut self, report: &SimReport) {
        for observer in self.observers.iter_mut() {
            observer.on_finish(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_recorder_collects_only_samples() {
        let mut recorder = SampleRecorder::new();
        let sample = Sample { network_cycle: 10, core_cycle: 20, instructions: 5, window_ipc: 0.5 };
        assert_eq!(recorder.on_event(&SimEvent::Sample(sample)), ObserverControl::Continue);
        let gather =
            SimEvent::GatherCompleted { network_cycle: 11, target: Addr::new(0x40), value: 1.0 };
        assert_eq!(recorder.on_event(&gather), ObserverControl::Continue);
        assert_eq!(recorder.samples(), &[sample]);
    }

    #[test]
    fn deadline_stop_fires_at_or_after_the_deadline() {
        let mut stop = DeadlineStop::at(100);
        let early = Sample { network_cycle: 99, core_cycle: 0, instructions: 0, window_ipc: 0.0 };
        let late = Sample { network_cycle: 100, ..early };
        assert_eq!(stop.on_event(&SimEvent::Sample(early)), ObserverControl::Continue);
        assert_eq!(stop.on_event(&SimEvent::Sample(late)), ObserverControl::Stop);
    }

    #[test]
    fn hub_latches_stop_across_observers() {
        let mut observers: Vec<Box<dyn Observer>> =
            vec![Box::new(SampleRecorder::new()), Box::new(DeadlineStop::at(0))];
        let mut hub = ObserverHub::new(&mut observers);
        assert!(!hub.stopped());
        hub.emit(&SimEvent::Sample(Sample {
            network_cycle: 5,
            core_cycle: 10,
            instructions: 1,
            window_ipc: 0.1,
        }));
        assert!(hub.stopped());
        assert!(!hub.is_empty());
    }
}
