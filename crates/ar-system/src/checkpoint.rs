//! Checkpoint/restore of a running simulation.
//!
//! A [`Checkpoint`] is the complete dynamic state of a [`crate::System`] at
//! a settled run boundary ([`crate::System::run_prefix`]), together with the
//! identity of the run it belongs to: a content hash of the effective
//! configuration, the workload name, size class and variant. Configuration
//! and workload streams never travel — they are regenerated from code on
//! restore, and the identity fields exist purely so a restore onto the
//! *wrong* configuration or workload is rejected instead of silently
//! producing garbage ([`crate::SimulationBuilder::from_checkpoint`]).
//!
//! On disk a checkpoint is one JSON document stamped with
//! [`CHECKPOINT_SCHEMA_VERSION`]. Writes are atomic — render to a uniquely
//! named temp file in the destination directory, then [`std::fs::rename`]
//! over the final path — so a concurrent reader (or a crash) sees either the
//! complete checkpoint or nothing. The schema version is checked on decode;
//! documents from a different schema, truncated files and hostile input all
//! fail with an error rather than restoring a half-baked system.

use ar_types::json::{Json, JsonError};
use ar_types::Cycle;
use ar_workloads::{SizeClass, Variant};
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Version stamp of the checkpoint document schema.
///
/// Bump it whenever any component's `state_to_json` layout changes shape or
/// meaning: a restored run must be byte-identical to an uninterrupted one,
/// so decoding a stale layout into a newer simulator (or vice versa) must
/// fail loudly instead of resuming from subtly wrong state.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// Distinguishes temp files of racing writers within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A snapshot of one simulation at a settled cycle boundary, restorable via
/// [`crate::SimulationBuilder::from_checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Content hash ([`Json::content_hash`]) of the effective
    /// [`ar_types::config::SystemConfig`] document the snapshot was taken
    /// under. Restores onto a differently configured system are rejected.
    pub config_hash: u64,
    /// Generated-workload name ([`ar_workloads::Workload::name`]'s
    /// generation output), matched against the regenerated workload.
    pub workload: String,
    /// Problem-size class of the run.
    pub size: SizeClass,
    /// Workload variant of the run.
    pub variant: Variant,
    /// First network cycle the snapshot has not processed — where a restored
    /// run resumes.
    pub cycle: Cycle,
    /// Whether the run had already quiesced when the snapshot was taken.
    pub completed: bool,
    /// The system's dynamic state ([`crate::System::state_to_json`]).
    pub state: Json,
}

/// Parses a [`Variant`] display name (the inverse of its `Display`).
fn variant_parse(name: &str) -> Option<Variant> {
    [Variant::Baseline, Variant::Active, Variant::Adaptive]
        .into_iter()
        .find(|v| v.to_string() == name)
}

impl Checkpoint {
    /// Encodes the checkpoint as a single schema-stamped JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(CHECKPOINT_SCHEMA_VERSION)),
            ("config_hash", Json::hex_u64(self.config_hash)),
            ("workload", Json::from(self.workload.clone())),
            ("size", Json::from(self.size.to_string())),
            ("variant", Json::from(self.variant.to_string())),
            ("cycle", Json::from(self.cycle)),
            ("completed", Json::from(self.completed)),
            ("state", self.state.clone()),
        ])
    }

    /// Decodes a [`Checkpoint::to_json`] document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the schema version differs from
    /// [`CHECKPOINT_SCHEMA_VERSION`] or any field is missing, mistyped, or
    /// names an unknown size class or variant.
    pub fn from_json(doc: &Json) -> Result<Checkpoint, JsonError> {
        let schema = doc.req_u32("schema")?;
        if schema != CHECKPOINT_SCHEMA_VERSION {
            return Err(JsonError::state(format!(
                "checkpoint schema v{schema} is not the supported v{CHECKPOINT_SCHEMA_VERSION}"
            )));
        }
        let size_name = doc.req_str("size")?;
        let size = SizeClass::parse(size_name)
            .ok_or_else(|| JsonError::state(format!("unknown size class {size_name:?}")))?;
        let variant_name = doc.req_str("variant")?;
        let variant = variant_parse(variant_name).ok_or_else(|| {
            JsonError::state(format!("unknown workload variant {variant_name:?}"))
        })?;
        Ok(Checkpoint {
            config_hash: doc.req_hex_u64("config_hash")?,
            workload: doc.req_str("workload")?.to_string(),
            size,
            variant,
            cycle: doc.req_u64("cycle")?,
            completed: doc.req_bool("completed")?,
            state: doc.req("state")?.clone(),
        })
    }

    /// Writes the checkpoint to `path` atomically: the document is rendered
    /// to a uniquely named temp file in the destination directory and then
    /// renamed over the final path, so a crash or concurrent reader sees
    /// either the complete checkpoint or nothing.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable directory, disk full, ...).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let dir = match path.parent() {
            Some(dir) if !dir.as_os_str().is_empty() => {
                fs::create_dir_all(dir)?;
                dir
            }
            _ => Path::new("."),
        };
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, self.to_json().render())?;
        let renamed = fs::rename(&tmp, path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }

    /// Reads and decodes a checkpoint written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// Returns the filesystem error for unreadable paths, or an
    /// `InvalidData` error wrapping the decode failure for truncated,
    /// corrupt or schema-mismatched documents.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
        let text = fs::read_to_string(path)?;
        let doc = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.message))?;
        Checkpoint::from_json(&doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            config_hash: 0xdead_beef_cafe_f00d,
            workload: "reduce".to_string(),
            size: SizeClass::Tiny,
            variant: Variant::Active,
            cycle: 12_345,
            completed: false,
            state: Json::obj([("cores", Json::arr([Json::from(1u64)]))]),
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let ck = sample();
        let doc = Json::parse(&ck.to_json().render()).expect("renders to valid JSON");
        assert_eq!(Checkpoint::from_json(&doc).expect("decodes"), ck);
    }

    #[test]
    fn schema_mismatch_and_hostile_fields_are_rejected() {
        let mut doc = sample().to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "schema" {
                    *v = Json::from(CHECKPOINT_SCHEMA_VERSION + 1);
                }
            }
        }
        assert!(Checkpoint::from_json(&doc).is_err(), "future schema must not decode");

        for (key, bad) in [
            ("size", Json::from("galactic")),
            ("variant", Json::from("quantum")),
            ("cycle", Json::from("soon")),
            ("config_hash", Json::from(3u64)),
        ] {
            let mut doc = sample().to_json();
            if let Json::Obj(pairs) = &mut doc {
                for (k, v) in pairs.iter_mut() {
                    if *k == key {
                        *v = bad.clone();
                    }
                }
            }
            assert!(Checkpoint::from_json(&doc).is_err(), "hostile {key} must not decode");
        }
    }

    #[test]
    fn save_load_round_trips_and_truncation_fails() {
        let dir = std::env::temp_dir().join(format!(
            "ar-checkpoint-test-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let path = dir.join("snap.json");
        let ck = sample();
        ck.save(&path).expect("save succeeds");
        assert_eq!(Checkpoint::load(&path).expect("loads"), ck);

        // No temp-file debris next to the checkpoint.
        let debris: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(debris.is_empty(), "temp files all renamed away: {debris:?}");

        // Truncated bytes must fail to decode, not restore half a system.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = Checkpoint::load(&path).expect_err("truncated checkpoint must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }
}
