//! The event-driven full-system model.
//!
//! One [`System`] wires together every substrate of the evaluation platform
//! (Table 4.1): the out-of-order cores and their Message Interfaces, the
//! coherent two-level cache hierarchy, the on-chip mesh, and either the DDR
//! DRAM baseline or the dragonfly memory network of HMC cubes with one
//! Active-Routing Engine per cube. The system advances in memory-network
//! cycles (1 GHz); the cores tick twice per network cycle (2 GHz).
//!
//! Time advances through the [`ar_sim::Component`] layer: every top-level
//! component (the core cluster, the memory network, each cube, each AR
//! engine, the DRAM backend, the IPC sampler) is identified by a `SysKey`
//! and registers its next wake-up cycle in an [`ar_sim::Scheduler`]. The
//! driver in [`System::run`] only processes cycles at which some component is
//! due and, within such a cycle, only wakes the due components — idle
//! routers, vaults and engines cost nothing. Cores blocked on a memory
//! response, gather result or barrier park (`ar_cpu::Core::is_parked`) and
//! are skipped too; the whole cluster sleeps once every core is parked and
//! is re-armed by the memory side when it delivers the unblocking event,
//! with each parked core settling its stalled interval — split by cause —
//! at the next tick. Cores grinding through bulk compute blocks are
//! *fast-forwarded* (`ar_cpu::Core::try_fast_forward`): the block's
//! retire/issue schedule is computed in closed form and the core sleeps
//! until the block's end, with IPC samples and truncations splitting the
//! interval exactly. [`System::run_lockstep`] drives the *same* per-cycle
//! step over every cycle and every component (including parked cores),
//! exactly like the original lock-step simulator; the two kernels produce
//! cycle-identical [`SimReport`]s (asserted by the equivalence tests), the
//! event-driven one just skips the cycles and components that provably do
//! nothing.
//!
//! Alongside the timing model the system keeps a *functional memory* (a map
//! from address to f64). Offloaded operand reads return values from it and
//! offloaded writes/gather results update it, so every simulation produces
//! numerical reduction results that the tests compare against the workload's
//! reference values.

use crate::drain::{self, CoreDrain, MAX_WINDOW_POPS, MIN_DRAIN_CYCLES};
use crate::lookahead::LookaheadTable;
use crate::observer::{Observer, ObserverHub, RunInfo, Sample, SimEvent};
use crate::report::{CubeActivity, DataMovement, LatencyBreakdown, SimReport, StallSummary};
use active_routing::{ActiveRoutingEngine, AreOutput, HostOffloadController, HostOutput};
use ar_cache::{AccessKind, CacheHierarchy, HitLevel};
use ar_cpu::{Core, MemAccess, MemAccessKind, OffloadCommand, OffloadDrainOutcome};
use ar_dram::{DramRequest, DramSystem};
use ar_hmc::{HmcCube, VaultRequest};
use ar_network::{DragonflyTopology, MemoryNetwork, MeshNoc};
use ar_sim::{
    Component, Horizon, LatencyQueue, NextWake, SchedCtx, ShardedScheduler, TimeSeries,
    TimestampedOutbox, WorkerPool,
};
use ar_types::addr::AddressMap;
use ar_types::config::{MemoryMode, SystemConfig};
use ar_types::error::ConfigError;
use ar_types::hash::FastHashMap;
use ar_types::ids::NetNode;
use ar_types::json::{Json, JsonError};
use ar_types::packet::{Packet, PacketKind};
use ar_types::{Addr, CubeId, Cycle, PortId, WorkItem, WorkStream};
use std::collections::VecDeque;

/// Extra core cycles charged to an atomic read-modify-write for its
/// directory round trip, on top of the normal write path.
const ATOMIC_COHERENCE_PENALTY: u64 = 16;

/// Core-cycle window over which the IPC time series is sampled (Fig. 5.8).
const IPC_WINDOW_CORE_CYCLES: u64 = 2048;

/// Scheduling key of one top-level component of the system.
///
/// The granularity is deliberately coarse (the whole core cluster is one
/// key, a cube with its 32 vaults is one key): a key must be worth the
/// calendar bookkeeping, and the intra-component skipping is handled by the
/// component itself through its own [`Component::next_wake`] logic.
///
/// Keys are grouped into *shards* for the sharded calendar and the parallel
/// cube sub-phases (see [`SysKey::shard`]): the core cluster (with the IPC
/// sampler), the DRAM backend, the memory network, and one shard per cube
/// holding the cube and its Active-Routing engine — the two keys whose state
/// a cube-shard tick job mutates together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SysKey {
    /// The core cluster: core pipelines, barrier release, MI drain.
    Cores,
    /// The DDR DRAM backend, including the system-side retry queue.
    Dram,
    /// The memory network.
    Network,
    /// One HMC cube (crossbar + vaults).
    Cube(usize),
    /// One per-cube Active-Routing Engine.
    Engine(usize),
    /// The windowed IPC sampler (keeps the Fig. 5.8 series cycle-exact even
    /// when the kernel skips over the sampling boundary).
    Ipc,
}

impl SysKey {
    /// Shards below this index are the fixed singleton shards (cores + IPC
    /// sampler, DRAM, network); cube shards follow, one per cube.
    const FIXED_SHARDS: usize = 3;

    /// The shard a key belongs to.
    fn shard(self) -> usize {
        match self {
            SysKey::Cores | SysKey::Ipc => 0,
            SysKey::Dram => 1,
            SysKey::Network => 2,
            SysKey::Cube(c) | SysKey::Engine(c) => Self::FIXED_SHARDS + c,
        }
    }
}

/// Cross-shard effects recorded by one cube shard's delivery/engine tick
/// job (sub-phase 1 of the HMC step), applied serially in cube-index order
/// at the merge boundary so the result is byte-identical to the serial
/// per-cube loop regardless of worker count.
#[derive(Debug, Default)]
struct CubeOutbox {
    /// Request ids of normal (core-transaction) vault accesses pushed this
    /// cycle, registered in the shared purpose map at merge time.
    normal_ids: Vec<u64>,
    /// DRAM traffic charged by this shard (64 B per normal access; operand
    /// accesses are charged when the engine outputs are applied).
    hmc_bytes: u64,
    /// The cube received at least one vault request, so `SysKey::Cube` must
    /// be stimulated for sub-phase 2.
    cube_stimulated: bool,
    /// Engine output (packets + operand/vault accesses) accumulated across
    /// the handled active packets and the pipeline tick, in emission order.
    /// One reused accumulator per cube: within each list the order equals
    /// the old one-output-per-packet scheme's concatenation, and packets and
    /// vault accesses feed disjoint subsystems (network injection vs. vault
    /// queues), so collapsing the per-packet boundaries cannot change the
    /// report.
    are_output: AreOutput,
}

/// Reusable per-cube buffers for the HMC sub-phase jobs. Taken out of the
/// system when a cube's job is built and moved back at the merge, so inbox
/// and outbox capacities survive across cycles instead of being reallocated
/// 10^5 times per run.
#[derive(Debug, Default)]
struct CubeScratch {
    /// The cube's network deliveries, swapped out of the network's per-cube
    /// queue (whose spare capacity is left behind in exchange).
    inbox: VecDeque<Packet>,
    outbox: CubeOutbox,
    /// Vault completions popped in sub-phase 2, in pop order.
    completions: Vec<ar_hmc::VaultResponse>,
}

/// One cube shard's sub-phase-1 job: drain the cube's network inbox and
/// advance its engine pipelines. Holds disjoint `&mut`s into the backend, so
/// a batch of these can tick on worker threads.
struct CubeDeliveryJob<'a> {
    cube: &'a mut HmcCube,
    engine: &'a mut ActiveRoutingEngine,
    scratch: &'a mut CubeScratch,
}

impl CubeDeliveryJob<'_> {
    /// The per-cube body of sub-phase 1, operation-for-operation the serial
    /// loop's order: deliver packets (vault pushes and engine handling in
    /// arrival order), then advance the engine pipelines.
    fn tick(&mut self, now: Cycle) {
        while let Some(packet) = self.scratch.inbox.pop_front() {
            match &packet.kind {
                PacketKind::ReadReq { req_id, addr } | PacketKind::WriteReq { req_id, addr } => {
                    let is_write = matches!(packet.kind, PacketKind::WriteReq { .. });
                    let id = *req_id;
                    let addr = *addr;
                    let req = if is_write {
                        VaultRequest::write(id, addr)
                    } else {
                        VaultRequest::read(id, addr)
                    };
                    let _ = self.cube.try_push(now, req);
                    self.scratch.outbox.normal_ids.push(id);
                    self.scratch.outbox.cube_stimulated = true;
                    self.scratch.outbox.hmc_bytes += 64;
                }
                PacketKind::ReadResp { .. } | PacketKind::WriteAck { .. } => {
                    // Responses are only ever destined to host ports.
                }
                PacketKind::Active(_) => {
                    self.engine.handle_packet_into(
                        now,
                        packet,
                        &mut self.scratch.outbox.are_output,
                    );
                }
            }
        }
        self.engine.tick_into(now, &mut self.scratch.outbox.are_output);
    }
}

/// One cube shard's sub-phase-2 job: advance the crossbar and vaults, and
/// collect the completions that crossed back, in pop order.
struct VaultDrainJob<'a> {
    cube: &'a mut HmcCube,
    scratch: &'a mut CubeScratch,
}

impl VaultDrainJob<'_> {
    fn tick(&mut self, now: Cycle) {
        let mut ctx = SchedCtx::new(now);
        self.cube.wake(now, &mut ctx);
        while let Some(resp) = self.cube.pop_response(now) {
            self.scratch.completions.push(resp);
        }
    }
}

/// One cube shard's bounded-lag run-ahead window: the cube's private
/// calendar was advanced to local cycle `until` under a conservative
/// horizon, and every vault response it popped along the way waits in
/// `replay`, stamped with its true pop cycle, to be merged into the
/// completion stream when the global clock reaches it.
#[derive(Debug, Default)]
struct CubeWindow {
    /// Last local cycle the cube was advanced to; 0 = no window. While
    /// `now <= until` the cube must not be ticked by the normal sub-phases
    /// (its state already reflects local cycle `until`).
    until: Cycle,
    /// Responses popped during the run-ahead, in (cycle, pop) order.
    replay: TimestampedOutbox<ar_hmc::VaultResponse>,
}

impl CubeWindow {
    /// Whether the window still covers the global cycle `now`.
    fn active(&self, now: Cycle) -> bool {
        self.until != 0 && now <= self.until
    }
}

/// One cube shard's bounded-lag run-ahead job: advance the cube's private
/// calendar event by event, strictly below the horizon, collecting every
/// popped response with its true cycle. Inside the window the cube receives
/// no external input (that is what the horizon guarantees), so this replays
/// exactly the due-driven tick chain the serial kernel would have executed —
/// and since each job owns disjoint `&mut`s, a batch of them runs on the
/// worker pool.
struct RunAheadJob<'a> {
    cube: &'a mut HmcCube,
    window: &'a mut CubeWindow,
    from: Cycle,
    horizon: Cycle,
}

impl RunAheadJob<'_> {
    fn run(&mut self) {
        let mut t = self.from;
        while let NextWake::At(next) = self.cube.next_wake(t) {
            if next >= self.horizon {
                break;
            }
            if next <= t {
                debug_assert!(false, "a cube wake-up failed to advance its local clock");
                break;
            }
            t = next;
            self.cube.tick(t);
            while let Some(resp) = self.cube.pop_response(t) {
                self.window.replay.push(t, resp);
            }
        }
        if t > self.from {
            self.window.until = t;
        }
    }
}

/// Minimum length (in cycles past `now`) a cross-cycle window must have to
/// be worth arming: the arming pass itself costs a scan over cubes and
/// in-flight packets, so windows that could only cover a couple of cycles
/// are left to the normal per-cycle path. Placement-only — the replayed
/// stream is identical either way.
const MIN_CROSS_CYCLE_WINDOW: Cycle = 8;

/// Minimum number of due cube shards worth fanning out to the worker pool.
/// A dispatch costs a few hundred nanoseconds (publish, claim traffic,
/// completion wait) while a typical cube tick is shorter than that, so
/// small batches run inline. The threshold only decides *placement*, never
/// the merged result.
const PARALLEL_BATCH_MIN: usize = 4;

/// Runs one tick job per participating cube shard — on the worker pool when
/// one is attached and the batch is worth a dispatch, inline otherwise. Jobs
/// only mutate their own shard and outbox, so placement cannot change the
/// merged result.
fn run_shard_jobs<T: Send>(
    pool: Option<&mut WorkerPool>,
    jobs: &mut [T],
    f: impl Fn(&mut T) + Sync,
) {
    match pool {
        Some(pool) if jobs.len() >= PARALLEL_BATCH_MIN => pool.run(jobs, |_, job| f(job)),
        _ => jobs.iter_mut().for_each(f),
    }
}

// The cube-shard jobs cross thread boundaries inside `WorkerPool::run`; this
// pins the Send-cleanliness of the whole HMC tick path (cube, vaults,
// engine, packets) at compile time, close to the code that relies on it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CubeDeliveryJob<'_>>();
    assert_send::<VaultDrainJob<'_>>();
    assert_send::<RunAheadJob<'_>>();
};

/// Why a vault access was issued (used to dispatch its completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VaultPurpose {
    /// A normal cache-block read/write on behalf of a core transaction.
    Normal { txn: u64 },
    /// An operand read issued by a cube's Active-Routing Engine.
    AreRead { cube: usize, access_id: u64 },
    /// A write issued by an ARE (mov / const_assign / nothing to return).
    AreWrite,
}

/// One outstanding core memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MemTxn {
    core: usize,
    req_id: u64,
    /// Host port the request was injected at (HMC mode).
    port: PortId,
    /// Core cycles of on-chip return latency to add once the response reaches
    /// the memory controller.
    noc_return: u64,
    is_write: bool,
}

/// One host-controller submission planned by an offload-drain window: a
/// command some core's Message Interface pops at network cycle `cycle`. The
/// pop itself was already applied when the window committed; only the
/// submission's timing and order must be replayed exactly.
#[derive(Debug, Clone, Copy)]
struct DrainInjection {
    cycle: Cycle,
    cmd: OffloadCommand,
}

/// The memory substrate behind the caches.
#[derive(Debug)]
enum Backend {
    Dram(Box<DramSystem>),
    Hmc(Box<HmcBackend>),
}

#[derive(Debug)]
struct HmcBackend {
    network: MemoryNetwork,
    cubes: Vec<HmcCube>,
    engines: Vec<ActiveRoutingEngine>,
    controller: Option<HostOffloadController>,
    topology: DragonflyTopology,
}

/// Memory-footprint diagnostics of a finished run
/// ([`System::run_with_footprint`]): the simulator's own in-flight storage,
/// not a property of the simulated machine. Zero on the DRAM backend, which
/// has no packet pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunFootprint {
    /// Peak number of simultaneously pooled in-flight packets.
    pub peak_packets_in_flight: usize,
    /// Slots the packet pool ended the run with (its free list never
    /// shrinks, so this is also the storage high-water mark).
    pub packet_pool_capacity: usize,
}

/// The full-system model.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    label: String,
    workload: String,
    map: AddressMap,
    cores: Vec<Core>,
    caches: CacheHierarchy,
    noc: MeshNoc,
    backend: Backend,
    /// Functional memory contents.
    func_mem: FastHashMap<u64, f64>,
    /// Completions scheduled for core memory requests, in core cycles.
    core_completions: LatencyQueue<(usize, u64)>,
    /// Outstanding core memory transactions by transaction id.
    mem_txns: FastHashMap<u64, MemTxn>,
    /// Purpose of every outstanding vault access, by vault request id.
    vault_purpose: FastHashMap<u64, VaultPurpose>,
    next_txn: u64,
    next_vault_id: u64,
    /// DRAM requests that found a full channel queue and wait to be retried.
    retry_dram: Vec<(Cycle, u64, Addr, bool)>,
    /// Components stimulated during the current step, whose wake-up must be
    /// re-armed in the scheduler before the step ends. Deduplicated on push
    /// through `arm_flags` (one slot per [`SysKey`]), so membership checks
    /// and the end-of-step sweep stay O(1) per key.
    armq: Vec<SysKey>,
    /// One dirty flag per `SysKey` slot (see [`System::key_slot`]).
    arm_flags: Vec<bool>,
    /// Cores that have fully retired their stream. A core's done flag only
    /// flips during its own wake, so the counter is maintained in the cores
    /// phase and makes the cluster-activity check O(1).
    cores_done: usize,
    /// Cached busy flag per `SysKey` slot (cubes, engines, DRAM). A
    /// component's state only changes in a cycle that stimulates it, so the
    /// end-of-step re-arm sweep keeps these flags (and `busy_count`) exact
    /// while touching only the components that actually did work.
    busy: Vec<bool>,
    /// Number of `true` entries in `busy` — the global outstanding-work
    /// counter behind the O(1) [`System::is_finished`] check.
    busy_count: usize,
    /// Final gathered reduction results.
    gather_results: Vec<(Addr, f64)>,
    /// Windowed IPC samples.
    ipc_series: TimeSeries,
    last_ipc_sample_insns: u64,
    /// Bytes of HMC DRAM traffic (64 B per normal access, 8 B per operand).
    hmc_bytes: u64,
    /// Back-invalidations performed for offloaded updates.
    back_invalidations: u64,
    /// Worker threads for the sharded kernel (see [`System::with_threads`]):
    /// 1 = serial (the default), 0 = available parallelism.
    threads: usize,
    /// Whether the event-driven kernel may arm bulk compute fast-forward
    /// intervals on the cores (see [`System::with_fast_forward`]). The
    /// lock-step reference ignores the knob — it never fast-forwards.
    fast_forward: bool,
    /// Whether the event-driven kernel may plan whole offload-drain windows
    /// in closed form (see [`System::with_drain_fast_forward`]). The
    /// lock-step reference ignores the knob — it never plans.
    drain_fast_forward: bool,
    /// First network cycle *not* covered by the currently planned drain
    /// window (0 = no window pending). While `now < drain_until` the cores
    /// phase only replays the window's submission schedule from
    /// `drain_outbox`; the cores' own state was already committed to the
    /// window end when the window was armed.
    drain_until: Cycle,
    /// The planned host-controller submissions of the current drain window,
    /// cycle-major and core-ascending within a cycle — exactly the order the
    /// per-cycle drain phase would have produced them in.
    drain_outbox: VecDeque<DrainInjection>,
    /// Offload-drain windows planned so far (diagnostics only — the whole
    /// contract is that the report cannot tell).
    drain_windows: u64,
    /// Reusable buffers of `try_arm_offload_drain`, so planning a window
    /// allocates nothing once they reach their high-water capacities: the
    /// drain-core index list, their planner states, the pop schedule, the
    /// peeked command streams (flat), and the per-core read cursors into
    /// that flat buffer.
    drain_plan_cores: Vec<usize>,
    drain_plan_states: Vec<CoreDrain>,
    drain_plan_pops: Vec<(u64, u32)>,
    drain_plan_commands: Vec<OffloadCommand>,
    drain_plan_cursors: Vec<usize>,
    /// Reusable controller-output buffer of the drain phases, so submitting
    /// a command allocates nothing (its back-invalidate list doubles as the
    /// batch applied after each cycle's submissions).
    host_scratch: HostOutput,
    /// Reusable `(core, request)` buffer of the cores phase, so the hot
    /// per-core-cycle loop allocates nothing.
    core_requests: Vec<(usize, MemAccess)>,
    /// Dense per-core gate of the event kernel's cluster sub-loop: the
    /// first core cycle at which core `i` needs its next tick. `0` means
    /// every cycle, `u64::MAX` means sleeping (done, or parked until an
    /// external completion resets the slot), and a fast-forwarding core
    /// carries its interval's end. The per-core state lives behind several
    /// pointer chases inside `Core`; this array keeps the skip decision —
    /// made `cores × core-cycles` times per run — on one cache line.
    /// Spurious zeroes are harmless (a woken core re-derives its state);
    /// the invariant is only that no slot overshoots the core's true next
    /// due tick. The lock-step kernel ignores the gate and ticks everything.
    core_wake_at: Vec<Cycle>,
    /// Dense per-core "Message Interface holds commands" flags plus their
    /// population count. Commands only enter an MI during the core's own
    /// wake and only leave in the drain phase, so both sites keep the flags
    /// exact; the drain loop and the cluster wake-up calculation then never
    /// touch an idle core's queue.
    mi_pending: Vec<bool>,
    /// Number of `true` entries in `mi_pending`.
    mi_pending_cores: usize,
    /// Reusable list of the cube-shard indices participating in the current
    /// HMC sub-phase (ascending — the outbox merge order).
    cube_participants: Vec<usize>,
    /// Reusable per-cube job buffers (one per cube; empty for DRAM).
    cube_scratch: Vec<CubeScratch>,
    /// Reusable engine-output merge buffer.
    are_scratch: Vec<(usize, AreOutput)>,
    /// Pool of emptied engine-output accumulators recycled between the
    /// vault-completion merge and the apply step.
    are_spare: Vec<AreOutput>,
    /// Reusable vault-completion merge buffer.
    completion_scratch: Vec<(usize, ar_hmc::VaultResponse)>,
    /// Whether the event-driven kernel may run cube shards ahead of the
    /// global clock inside conservative bounded-lag windows (see
    /// [`System::with_cross_cycle`]). The lock-step reference ignores the
    /// knob — it never runs ahead.
    cross_cycle: bool,
    /// Per-cube bounded-lag run-ahead windows (empty for the DRAM
    /// baseline). See [`System::try_arm_cross_cycle`].
    run_ahead: Vec<CubeWindow>,
    /// Number of cubes whose window is still open (`until != 0`). New
    /// windows only arm when this is zero, so window generations never
    /// overlap.
    active_windows: usize,
    /// Cross-cycle windows armed so far (diagnostics only — the whole
    /// contract is that the report cannot tell).
    cross_cycle_windows: u64,
    /// Don't re-attempt window arming before this cycle: a failed attempt
    /// (traffic in flight, horizons too tight) rarely turns armable within a
    /// cycle or two, and the horizon fold is the priciest probe the kernel
    /// runs per cycle. Purely a wall-clock throttle — arming is
    /// report-neutral, so skipping attempts cannot change a report byte, and
    /// the backoff depends only on simulated state, never on thread timing.
    arm_backoff_until: Cycle,
    /// Per-shard-pair minimum-latency table driving the horizon computation
    /// (HMC backend only).
    lookahead: Option<LookaheadTable>,
    /// Scratch for the per-cube in-flight arrival bounds.
    arrival_scratch: Vec<Cycle>,
    /// Scratch for the eligible `(cube, horizon)` pairs of one arming pass.
    window_candidates: Vec<(usize, Cycle)>,
    /// Scratch for one arming pass's per-cube emission probes —
    /// `(earliest_response, engine_idle, engine_wake)` — so the horizon fold
    /// reads each cube's O(vaults) state once instead of per candidate pair.
    emit_scratch: Vec<(Option<Cycle>, bool, NextWake)>,
    /// First network cycle the run loop has not yet processed: 0 on a fresh
    /// system, advanced by every [`System::advance`] epilogue, restored by
    /// [`System::load_state`]. The next run (full or prefix) resumes here.
    resume_cycle: Cycle,
    /// The `now` value the run loop last ended on — what a report records as
    /// the runtime if no further cycles are processed. Equal to
    /// `resume_cycle` after a truncation, one less after a completion or an
    /// observer stop (those break *after* processing cycle `now`).
    report_cycle: Cycle,
    /// Whether a previous prefix already drove the system to quiescence;
    /// later runs then return immediately with the recorded boundary.
    prefix_completed: bool,
}

impl System {
    /// Builds a system for `cfg` running the given per-thread work streams
    /// over the given initial memory image.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is inconsistent, when
    /// the number of streams does not match the core count, or when the
    /// streams contain offload instructions but the configured scheme never
    /// offloads.
    pub fn new(
        cfg: SystemConfig,
        streams: Vec<WorkStream>,
        memory: Vec<(Addr, f64)>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if streams.len() != cfg.cores.count {
            return Err(ConfigError::new(format!(
                "expected {} work streams (one per core), got {}",
                cfg.cores.count,
                streams.len()
            )));
        }
        let offloads_in_streams = streams.iter().any(|s| s.iter().any(WorkItem::is_offload));
        if offloads_in_streams && !cfg.scheme.offloads() {
            return Err(ConfigError::new(
                "work streams contain Update/Gather items but the scheme never offloads",
            ));
        }

        let map = cfg.address_map();
        let cores: Vec<Core> = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| Core::new(ar_types::CoreId::new(i), &cfg.cores, s))
            .collect();
        let caches = CacheHierarchy::new(cfg.cores.count, &cfg.caches);
        let noc =
            MeshNoc::new(cfg.noc.mesh_width, cfg.noc.hop_latency, cfg.noc.link_bytes_per_cycle);

        let backend = match cfg.memory_mode {
            MemoryMode::DdrBaseline => Backend::Dram(Box::new(DramSystem::new(&cfg.dram))),
            MemoryMode::HmcNetwork => {
                let topology = DragonflyTopology::new(
                    cfg.network.cubes,
                    cfg.network.groups,
                    cfg.network.host_ports,
                );
                let network = MemoryNetwork::new(
                    topology.clone(),
                    cfg.network.hop_latency,
                    cfg.network.link_bytes_per_cycle,
                );
                let cubes = (0..cfg.network.cubes)
                    .map(|c| HmcCube::new(CubeId::new(c), &cfg.hmc, cfg.network.cubes))
                    .collect();
                let engines = (0..cfg.network.cubes)
                    .map(|c| {
                        ActiveRoutingEngine::new(CubeId::new(c), &cfg.are, topology.clone(), map)
                    })
                    .collect();
                let controller = cfg
                    .scheme
                    .offloads()
                    .then(|| HostOffloadController::new(cfg.scheme, topology.clone(), map));
                Backend::Hmc(Box::new(HmcBackend { network, cubes, engines, controller, topology }))
            }
        };

        let func_mem = memory.into_iter().map(|(a, v)| (a.as_u64(), v)).collect();
        let cores_done = cores.iter().filter(|c| c.is_done()).count();
        let core_wake_at = cores.iter().map(|c| if c.is_done() { u64::MAX } else { 0 }).collect();
        let mi_pending = vec![false; cores.len()];
        // One slot per possible SysKey, sized from the cube count of the
        // *constructed* backend rather than from layout assumptions about the
        // config: the DRAM baseline instantiates no cubes (its network config
        // is never validated against the slot layout), so sizing from
        // `cfg.network.cubes` would alias or overrun if the two disagreed.
        let cube_count = Self::backend_cube_count(&backend);
        let slot_count = 4 + 2 * cube_count;
        let lookahead = match &backend {
            Backend::Hmc(hmc) => Some(LookaheadTable::new(&hmc.topology, cfg.network.hop_latency)),
            Backend::Dram(_) => None,
        };
        Ok(System {
            cross_cycle: true,
            run_ahead: (0..cube_count).map(|_| CubeWindow::default()).collect(),
            active_windows: 0,
            cross_cycle_windows: 0,
            arm_backoff_until: 0,
            lookahead,
            arrival_scratch: vec![Cycle::MAX; cube_count],
            window_candidates: Vec::new(),
            emit_scratch: Vec::new(),
            cores_done,
            busy: vec![false; slot_count],
            busy_count: 0,
            cube_scratch: (0..cube_count).map(|_| CubeScratch::default()).collect(),
            are_scratch: Vec::new(),
            are_spare: Vec::new(),
            completion_scratch: Vec::new(),
            label: String::new(),
            workload: String::new(),
            map,
            cores,
            caches,
            noc,
            backend,
            func_mem,
            core_completions: LatencyQueue::new(),
            mem_txns: FastHashMap::default(),
            vault_purpose: FastHashMap::default(),
            next_txn: 0,
            next_vault_id: 0,
            retry_dram: Vec::new(),
            armq: Vec::new(),
            arm_flags: vec![false; slot_count],
            gather_results: Vec::new(),
            // Sized for the worst-case sample count up front, so the
            // sampler never reallocates mid-run (the zero-alloc steady-state
            // gate measures this); the spare capacity is dropped again when
            // the report is built.
            ipc_series: TimeSeries::with_capacity(
                (cfg.max_cycles / IPC_WINDOW_CORE_CYCLES)
                    .saturating_mul(cfg.core_cycles_per_network_cycle())
                    .min(1 << 20) as usize
                    + 2,
            ),
            last_ipc_sample_insns: 0,
            hmc_bytes: 0,
            back_invalidations: 0,
            threads: 1,
            fast_forward: true,
            drain_fast_forward: true,
            drain_until: 0,
            drain_outbox: VecDeque::new(),
            drain_windows: 0,
            drain_plan_cores: Vec::new(),
            drain_plan_states: Vec::new(),
            drain_plan_pops: Vec::new(),
            drain_plan_commands: Vec::new(),
            drain_plan_cursors: Vec::new(),
            host_scratch: HostOutput::default(),
            core_requests: Vec::new(),
            core_wake_at,
            mi_pending,
            mi_pending_cores: 0,
            cube_participants: Vec::new(),
            resume_cycle: 0,
            report_cycle: 0,
            prefix_completed: false,
            cfg,
        })
    }

    /// Number of cubes the backend actually instantiated (0 for the DRAM
    /// baseline) — the source of truth for the slot tables and the shard
    /// count.
    fn backend_cube_count(backend: &Backend) -> usize {
        match backend {
            Backend::Dram(_) => 0,
            Backend::Hmc(hmc) => hmc.cubes.len(),
        }
    }

    /// Sets the thread count of the sharded event-driven kernel: within a
    /// cycle, due cube shards (each cube with its Active-Routing engine)
    /// tick concurrently on a persistent worker pool, and their cross-shard
    /// effects are merged in cube-index order at the sub-phase boundary, so
    /// the [`SimReport`] is byte-identical for every thread count.
    ///
    /// `1` (the default) keeps the fully serial kernel; `0` resolves to the
    /// machine's available parallelism. This low-level knob uses explicit
    /// counts *as given* — [`crate::SimulationBuilder::threads`] is the
    /// policy layer that clamps requests to the host's parallelism, because
    /// oversubscribed workers can only add scheduling overhead, never
    /// speedup (the report is identical either way). The unclamped form is
    /// what lets the pool path be exercised on any host.
    /// [`System::run_lockstep`] ignores the knob — the lock-step reference
    /// is always serial.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables bulk compute fast-forwarding in the event-driven
    /// kernel (default: enabled).
    ///
    /// When enabled, a core whose ROB holds only retirable slots and whose
    /// stream head is a compute run computes the run's retire/issue schedule
    /// in closed form (`ar_cpu::Core::try_fast_forward`) and sleeps until
    /// the interval's end instead of being ticked every core cycle; the
    /// end-of-stream ROB drain is covered the same way. IPC samples,
    /// observer stops and the cycle limit landing inside an interval split
    /// it (`Core::settle_compute_to`), so the [`SimReport`] is byte-identical
    /// either way — the knob only decides wall-clock placement of the work,
    /// which is what lets the equivalence suite carry an on/off axis and the
    /// bench regression gate compare the two. [`System::run_lockstep`]
    /// ignores the knob: the per-cycle reference is the oracle the analytic
    /// schedule is validated against.
    #[must_use]
    pub fn with_fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Enables or disables system-level offload-drain fast-forwarding in the
    /// event-driven kernel (default: enabled).
    ///
    /// When enabled, a cluster caught in the MI-full offload regime — every
    /// runnable core issuing a head run of `Update` items against a
    /// back-pressuring Message Interface, no memory responses or gather
    /// completions in flight, the host controller idle — has its whole drain
    /// schedule computed in closed form (the `drain` planner module)
    /// instead of being
    /// ticked every core cycle: the cores' retire/issue/stall effects commit
    /// in one shot, and only the per-cycle host-controller submissions are
    /// replayed at their true network cycles, so the memory side sees
    /// exactly the packet sequence per-cycle ticking would have produced.
    /// Windows end before any IPC sample boundary, observer-visible event,
    /// cycle limit or regime change, so the [`SimReport`] is byte-identical
    /// either way — the knob only decides wall-clock placement of the work,
    /// which is what lets the equivalence suite carry an on/off axis and the
    /// bench regression gate compare the two. [`System::run_lockstep`]
    /// ignores the knob: the per-cycle reference is the oracle the planned
    /// schedule is validated against.
    #[must_use]
    pub fn with_drain_fast_forward(mut self, enabled: bool) -> Self {
        self.drain_fast_forward = enabled;
        self
    }

    /// Enables or disables bounded-lag cross-cycle execution in the
    /// event-driven kernel (default: enabled).
    ///
    /// When enabled, a cube shard whose engine is idle may run ahead of the
    /// global clock inside a conservative window: per-shard-pair lookahead
    /// (minimum network delivery latencies, precomputed from the topology)
    /// bounds the earliest cycle any other shard could still influence the
    /// cube, and the cube's private calendar is advanced event by event
    /// strictly below that horizon. Every vault response popped along the way
    /// is stamped with its true cycle and merged into the completion stream
    /// only when the global clock reaches it, in the same (cycle, cube-index)
    /// order as per-cycle ticking — so the [`SimReport`] is byte-identical
    /// either way, and the knob only decides wall-clock placement of the
    /// work. That is what lets the equivalence suite carry an on/off axis
    /// and the bench regression gate compare the two. [`System::run_lockstep`]
    /// ignores the knob: the per-cycle reference never runs ahead.
    #[must_use]
    pub fn with_cross_cycle(mut self, enabled: bool) -> Self {
        self.cross_cycle = enabled;
        self
    }

    /// Sets the labels recorded in the report.
    pub fn with_labels(mut self, workload: impl Into<String>, config: impl Into<String>) -> Self {
        self.workload = workload.into();
        self.label = config.into();
        self
    }

    /// Reads the functional memory (mainly for tests).
    pub fn read_memory(&self, addr: Addr) -> f64 {
        self.func_mem.get(&addr.as_u64()).copied().unwrap_or(0.0)
    }

    /// Runs the simulation to completion (or to the configured cycle limit)
    /// with the event-driven kernel and returns the report.
    ///
    /// Components are only woken at cycles where they have due work, and
    /// cycles in which no component is due are skipped entirely. The
    /// resulting [`SimReport`] is cycle-identical to
    /// [`System::run_lockstep`].
    pub fn run(self) -> SimReport {
        self.run_with(false, &mut []).0
    }

    /// Runs the event-driven kernel and also returns the run's
    /// [`RunFootprint`] — the simulator's own peak in-flight storage.
    ///
    /// Like [`System::run_counting_windows`], the extra value is diagnostic
    /// only and never appears in the [`SimReport`]: reports are pinned
    /// byte-identical across kernels and golden snapshots, while the
    /// footprint describes the simulator process, not the simulated machine.
    pub fn run_with_footprint(self) -> (SimReport, RunFootprint) {
        let (report, _, footprint) = self.run_with_diagnostics(false, &mut []);
        (report, footprint)
    }

    /// Runs the event-driven kernel and also returns the number of
    /// cross-cycle run-ahead windows the run armed (the consuming signature
    /// of [`System::run`] hides the [`System::cross_cycle_windows`] probe).
    ///
    /// The count is diagnostic only — it never appears in the
    /// [`SimReport`] — and exists so the property suite and the bench
    /// regression gate can assert that bounded-lag execution genuinely
    /// engaged on a run, not just that its report matched.
    pub fn run_counting_windows(self) -> (SimReport, u64) {
        self.run_with(false, &mut [])
    }

    /// Runs the simulation with the lock-step reference kernel: every cycle
    /// is processed and every component is woken on each of them, exactly
    /// like the original cycle-driven simulator.
    ///
    /// This exists to validate the event-driven kernel (the equivalence
    /// tests assert identical reports from both drivers) and to benchmark
    /// against it; simulations should use [`System::run`].
    pub fn run_lockstep(self) -> SimReport {
        self.run_with(true, &mut []).0
    }

    /// Runs the event-driven kernel with the given streaming observers
    /// attached (see [`crate::Observer`]). Observation never changes the
    /// simulated behaviour; an observer can only cut the run short.
    pub fn run_observed(self, observers: &mut [Box<dyn Observer>]) -> SimReport {
        self.run_with(false, observers).0
    }

    /// Runs the lock-step reference kernel with observers attached. The
    /// event stream is identical to [`System::run_observed`] (events are tied
    /// to simulated cycles, not to kernel scheduling).
    pub fn run_lockstep_observed(self, observers: &mut [Box<dyn Observer>]) -> SimReport {
        self.run_with(true, observers).0
    }

    fn run_with(self, lockstep: bool, observers: &mut [Box<dyn Observer>]) -> (SimReport, u64) {
        let (report, windows, _) = self.run_with_diagnostics(lockstep, observers);
        (report, windows)
    }

    fn run_with_diagnostics(
        mut self,
        lockstep: bool,
        observers: &mut [Box<dyn Observer>],
    ) -> (SimReport, u64, RunFootprint) {
        let max_cycles = if self.cfg.max_cycles == 0 { u64::MAX } else { self.cfg.max_cycles };
        let mut hub = ObserverHub::new(observers);
        hub.start(&RunInfo { workload: &self.workload, config_label: &self.label, cfg: &self.cfg });
        let (now, completed) = self.advance(max_cycles, lockstep, &mut hub);
        let windows = self.cross_cycle_windows;
        let footprint = match &self.backend {
            Backend::Hmc(hmc) => RunFootprint {
                peak_packets_in_flight: hmc.network.peak_in_flight(),
                packet_pool_capacity: hmc.network.pool_capacity(),
            },
            Backend::Dram(_) => RunFootprint::default(),
        };
        let report = self.into_report(now, completed);
        hub.finish(&report);
        (report, windows, footprint)
    }

    /// Runs the kernel loop from [`System::resume_cycle`] up to `max_cycles`
    /// and returns the `(now, completed)` pair the epilogue reports from:
    /// the cycle the loop ended on and whether the system quiesced.
    ///
    /// The loop is resumable: each call rebuilds the wake calendar from the
    /// components' own `next_wake` probes (plus a conservative wake of every
    /// memory-side component when resuming past cycle 0 — a spurious wake is
    /// a no-op under the component contract), runs, and records the boundary
    /// in `resume_cycle`/`report_cycle`/`prefix_completed` so a later call —
    /// on this instance or on one restored from its snapshot — continues
    /// exactly where this one stopped. All cores are left fully settled at
    /// the boundary, which is what [`Core::state_to_json`] requires.
    fn advance(
        &mut self,
        max_cycles: Cycle,
        lockstep: bool,
        hub: &mut ObserverHub<'_>,
    ) -> (Cycle, bool) {
        if self.prefix_completed || self.resume_cycle >= max_cycles {
            // A previous prefix already covered this horizon (or quiesced
            // outright): the loop has nothing to do, and the report boundary
            // is wherever that run ended, capped at the caller's horizon
            // (a truncated run reports `now == max_cycles`).
            return (self.report_cycle.min(max_cycles), self.prefix_completed);
        }
        let start = self.resume_cycle;
        // The calendar is sharded by `SysKey::shard` (cores | dram | network
        // | per-cube); its merged pop yields the same sorted due sets a
        // single calendar would, so both kernels run on it unchanged.
        let shard_count = SysKey::FIXED_SHARDS + Self::backend_cube_count(&self.backend);
        let mut sched: ShardedScheduler<SysKey> = ShardedScheduler::new(shard_count, SysKey::shard);
        sched.wake(SysKey::Cores);
        // `next_ipc_boundary` of the cycle *before* the resume point: for a
        // fresh run this is `next_ipc_boundary(0)` exactly as before, and on
        // a resume it also catches a sample boundary landing on the resume
        // cycle itself (the prefix run never processed that cycle).
        sched.schedule(self.next_ipc_boundary(start.saturating_sub(1)), SysKey::Ipc);
        if start > 0 {
            // A rebuilt calendar has forgotten every in-flight wake-up, so
            // wake each memory-side component once at the resume cycle; each
            // re-arms itself from its own state, and a component with nothing
            // due treats the wake as a no-op.
            match &self.backend {
                Backend::Dram(_) => sched.wake(SysKey::Dram),
                Backend::Hmc(hmc) => {
                    sched.wake(SysKey::Network);
                    for c in 0..hmc.cubes.len() {
                        sched.wake(SysKey::Cube(c));
                        sched.wake(SysKey::Engine(c));
                    }
                }
            }
        }
        // The worker pool that ticks due cube shards concurrently. Spawned
        // once per run and reused every cycle; only the event-driven kernel
        // on the HMC backend has shard parallelism to exploit.
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        let mut pool = (!lockstep && threads > 1 && matches!(self.backend, Backend::Hmc(_)))
            .then(|| WorkerPool::new(threads));
        let mut due: Vec<SysKey> = Vec::new();
        let mut now: Cycle = start;
        let mut completed = false;
        // First network cycle the kernel did *not* process: cores still
        // parked when the run ends settle their open stall intervals up to
        // this boundary. Breaking out after `step(now)` means cycle `now`
        // was fully processed (the lock-step reference ticked parked cores
        // through it), so the boundary is `now + 1` there; running the loop
        // to exhaustion leaves `now == max_cycles` unprocessed.
        let mut first_unprocessed = max_cycles;
        while now < max_cycles {
            sched.pop_due_into(now, &mut due);
            self.step(now, (!lockstep).then_some(&due), &mut sched, hub, pool.as_mut());
            if self.is_finished() {
                completed = true;
                first_unprocessed = now + 1;
                break;
            }
            if hub.stopped() {
                first_unprocessed = now + 1;
                break;
            }
            now = if lockstep {
                now + 1
            } else {
                match sched.next_cycle() {
                    Some(at) => at.clamp(now + 1, max_cycles),
                    // Nothing scheduled and not finished: no state can change
                    // any more, so idle out to the cycle limit exactly like
                    // the lock-step loop would.
                    None => max_cycles,
                }
            };
        }
        // Saturating: with no cycle limit (`max_cycles == 0` ⇒ u64::MAX) an
        // idled-out run would otherwise overflow the core-cycle conversion.
        // `settle_for_snapshot` also drops a compute interval split by the
        // boundary after applying its elapsed prefix — report-neutral, and
        // it leaves the cores in the fully settled state a snapshot needs.
        let ratio = self.cfg.core_cycles_per_network_cycle();
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.settle_for_snapshot(first_unprocessed.saturating_mul(ratio));
            // Settling consumed any parked interval, so the stale wake gate
            // must not keep skipping the core — a resumed run has to tick it
            // until it re-parks, exactly like a run restored from the
            // serialized snapshot (load_state rebuilds the same gates).
            self.core_wake_at[i] = if core.is_done() { u64::MAX } else { 0 };
        }
        self.resume_cycle = first_unprocessed;
        self.report_cycle = now;
        self.prefix_completed = completed;
        (now, completed)
    }

    /// Runs the event-driven (or lock-step) kernel up to — but not past —
    /// network cycle `until`, leaving the system in a resumable, snapshot-
    /// ready state. Returns `true` when the system quiesced within the
    /// prefix.
    ///
    /// The prefix boundary is enforced exactly like a configured cycle
    /// limit: the fast-forward window planners cap their horizons at it, so
    /// no planned drain injection or run-ahead replay entry crosses the
    /// boundary, and a later [`System::run`] (or another prefix) continues
    /// byte-identically to a single uninterrupted run. A `until` at or past
    /// the configured `max_cycles` simply runs to that limit.
    pub fn run_prefix(&mut self, until: Cycle, lockstep: bool) -> bool {
        let real_limit = if self.cfg.max_cycles == 0 { u64::MAX } else { self.cfg.max_cycles };
        let stop = until.min(real_limit);
        // Arming horizons read `cfg.max_cycles` — pin it to the prefix stop
        // for the duration so no window reaches past the boundary, then
        // restore the real limit (configuration travels as code; only the
        // dynamic state below is checkpointed).
        let saved = self.cfg.max_cycles;
        self.cfg.max_cycles = stop;
        let mut hub = ObserverHub::new(&mut []);
        let (_, completed) = self.advance(stop, lockstep, &mut hub);
        self.cfg.max_cycles = saved;
        completed
    }

    /// The configuration the system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The generated-workload name recorded via [`System::with_labels`].
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// First network cycle the run loop has not yet processed — `0` on a
    /// fresh system, the prefix boundary after [`System::run_prefix`].
    pub fn resume_cycle(&self) -> Cycle {
        self.resume_cycle
    }

    /// Whether a previous (prefix) run already drove the system to
    /// quiescence.
    pub fn prefix_completed(&self) -> bool {
        self.prefix_completed
    }

    /// Total instructions retired so far across all cores. The sampling
    /// harness reads this between prefix runs to form per-window IPC.
    pub fn instructions_retired(&self) -> u64 {
        self.cores.iter().map(Core::instructions_retired).sum()
    }

    /// Encodes the system's complete dynamic state for a checkpoint.
    ///
    /// Only *dynamic* state travels: the configuration, labels, workload
    /// streams and every piece of derived bookkeeping (address map, busy
    /// counters, wake gates, scratch buffers, planner state) are
    /// reconstructed from code by [`System::load_state`]. Snapshots are taken
    /// at a settled run boundary — after [`System::run_prefix`] or a finished
    /// run — where every core is settled, no offload-drain window is open and
    /// no run-ahead replay is pending: the window planners cap their horizons
    /// at the boundary precisely so this holds.
    ///
    /// Identifiers carrying tag bits (request/transaction/vault ids,
    /// addresses) travel as hex bit patterns, functional-memory values and
    /// IPC samples as bit-exact hex floats, and plain counters as JSON
    /// numbers.
    ///
    /// # Panics
    ///
    /// Panics if called away from a run boundary (unflushed drain
    /// injections, pending run-ahead replays, or an unsettled core), which
    /// would make the snapshot lossy.
    pub fn state_to_json(&self) -> Json {
        assert!(
            self.drain_outbox.is_empty(),
            "snapshot requires a flushed drain window (run to a prefix boundary first)"
        );
        assert!(
            self.run_ahead.iter().all(|w| w.replay.is_empty()),
            "snapshot requires drained run-ahead windows (run to a prefix boundary first)"
        );
        let mut func_mem: Vec<(u64, f64)> =
            self.func_mem.iter().map(|(addr, value)| (*addr, *value)).collect();
        func_mem.sort_by_key(|(addr, _)| *addr);
        let mut mem_txns: Vec<(u64, MemTxn)> =
            self.mem_txns.iter().map(|(txn, m)| (*txn, *m)).collect();
        mem_txns.sort_by_key(|(txn, _)| *txn);
        let mut vault_purpose: Vec<(u64, VaultPurpose)> =
            self.vault_purpose.iter().map(|(id, p)| (*id, *p)).collect();
        vault_purpose.sort_by_key(|(id, _)| *id);
        let backend = match &self.backend {
            Backend::Dram(dram) => {
                Json::obj([("t", Json::from("dram")), ("dram", dram.state_to_json())])
            }
            Backend::Hmc(hmc) => Json::obj([
                ("t", Json::from("hmc")),
                ("network", hmc.network.state_to_json()),
                ("cubes", Json::arr(hmc.cubes.iter().map(HmcCube::state_to_json))),
                ("engines", Json::arr(hmc.engines.iter().map(ActiveRoutingEngine::state_to_json))),
                (
                    "controller",
                    hmc.controller
                        .as_ref()
                        .map_or(Json::Null, HostOffloadController::state_to_json),
                ),
            ]),
        };
        Json::obj([
            ("cores", Json::arr(self.cores.iter().map(Core::state_to_json))),
            ("caches", self.caches.state_to_json()),
            ("noc", self.noc.state_to_json()),
            ("backend", backend),
            (
                "func_mem",
                Json::arr(func_mem.into_iter().map(|(addr, value)| {
                    Json::obj([("addr", Json::hex_u64(addr)), ("value", Json::hex_f64(value))])
                })),
            ),
            (
                "core_completions",
                Json::arr(self.core_completions.state_entries().into_iter().map(
                    |(at, (core, req_id))| {
                        Json::obj([
                            ("at", Json::from(at)),
                            ("core", Json::from(*core)),
                            ("req_id", Json::hex_u64(*req_id)),
                        ])
                    },
                )),
            ),
            (
                "mem_txns",
                Json::arr(mem_txns.into_iter().map(|(txn, m)| {
                    Json::obj([
                        ("txn", Json::hex_u64(txn)),
                        // The store-buffer write-back sentinel (`usize::MAX`)
                        // must survive the trip, so the core index travels as
                        // a hex bit pattern.
                        ("core", Json::hex_u64(m.core as u64)),
                        ("req_id", Json::hex_u64(m.req_id)),
                        ("port", Json::from(m.port.index())),
                        ("noc_return", Json::from(m.noc_return)),
                        ("is_write", Json::from(m.is_write)),
                    ])
                })),
            ),
            (
                "vault_purpose",
                Json::arr(vault_purpose.into_iter().map(|(id, purpose)| {
                    let tagged = match purpose {
                        VaultPurpose::Normal { txn } => {
                            Json::obj([("t", Json::from("normal")), ("txn", Json::hex_u64(txn))])
                        }
                        VaultPurpose::AreRead { cube, access_id } => Json::obj([
                            ("t", Json::from("are_read")),
                            ("cube", Json::from(cube)),
                            ("access_id", Json::hex_u64(access_id)),
                        ]),
                        VaultPurpose::AreWrite => Json::obj([("t", Json::from("are_write"))]),
                    };
                    Json::obj([("id", Json::hex_u64(id)), ("purpose", tagged)])
                })),
            ),
            ("next_txn", Json::from(self.next_txn)),
            ("next_vault_id", Json::from(self.next_vault_id)),
            (
                "retry_dram",
                Json::arr(self.retry_dram.iter().map(|(at, id, addr, is_write)| {
                    Json::obj([
                        ("at", Json::from(*at)),
                        ("id", Json::hex_u64(*id)),
                        ("addr", Json::hex_u64(addr.as_u64())),
                        ("is_write", Json::from(*is_write)),
                    ])
                })),
            ),
            (
                "gather_results",
                Json::arr(self.gather_results.iter().map(|(addr, value)| {
                    Json::obj([
                        ("addr", Json::hex_u64(addr.as_u64())),
                        ("value", Json::hex_f64(*value)),
                    ])
                })),
            ),
            (
                "ipc_series",
                Json::arr(
                    self.ipc_series
                        .points()
                        .iter()
                        .map(|(x, y)| Json::arr([Json::hex_f64(*x), Json::hex_f64(*y)])),
                ),
            ),
            ("last_ipc_sample_insns", Json::from(self.last_ipc_sample_insns)),
            ("hmc_bytes", Json::from(self.hmc_bytes)),
            ("back_invalidations", Json::from(self.back_invalidations)),
            ("drain_windows", Json::from(self.drain_windows)),
            ("cross_cycle_windows", Json::from(self.cross_cycle_windows)),
            ("resume_cycle", Json::from(self.resume_cycle)),
            ("report_cycle", Json::from(self.report_cycle)),
            ("completed", Json::from(self.prefix_completed)),
        ])
    }

    /// Restores the dynamic state captured by [`System::state_to_json`] onto
    /// a freshly constructed system (same configuration, workload streams
    /// regenerated from the same deterministic generator).
    ///
    /// Derived bookkeeping — done/parked core gates, Message-Interface
    /// flags, the per-component busy table behind the O(1) quiescence check —
    /// is recomputed from the restored components rather than trusted from
    /// the document, and structural disagreements (wrong core/cube counts,
    /// out-of-range indices) are rejected rather than silently accepted.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the document is malformed, references
    /// components this configuration does not have, or disagrees with the
    /// regenerated workload streams.
    pub fn load_state(&mut self, doc: &Json) -> Result<(), JsonError> {
        // The resume cycle is parsed first: cube restores re-derive their
        // vault wake calendars relative to it.
        let resume_cycle = doc.req_u64("resume_cycle")?;
        let report_cycle = doc.req_u64("report_cycle")?;
        let completed = doc.req_bool("completed")?;

        let cores = doc.req_array("cores")?;
        if cores.len() != self.cores.len() {
            return Err(JsonError::state(format!(
                "checkpoint has {} cores but the system is configured with {}",
                cores.len(),
                self.cores.len()
            )));
        }
        for (core, state) in self.cores.iter_mut().zip(cores) {
            core.load_state(state)?;
        }
        self.caches.load_state(doc.req("caches")?)?;
        self.noc.load_state(doc.req("noc")?)?;

        let backend_doc = doc.req("backend")?;
        match &mut self.backend {
            Backend::Dram(dram) => {
                if backend_doc.req_str("t")? != "dram" {
                    return Err(JsonError::state(
                        "checkpoint backend is not the configured DRAM baseline",
                    ));
                }
                dram.load_state(backend_doc.req("dram")?)?;
            }
            Backend::Hmc(hmc) => {
                if backend_doc.req_str("t")? != "hmc" {
                    return Err(JsonError::state(
                        "checkpoint backend is not the configured HMC network",
                    ));
                }
                hmc.network.load_state(backend_doc.req("network")?)?;
                let cubes = backend_doc.req_array("cubes")?;
                let engines = backend_doc.req_array("engines")?;
                if cubes.len() != hmc.cubes.len() || engines.len() != hmc.engines.len() {
                    return Err(JsonError::state(format!(
                        "checkpoint has {} cubes / {} engines but the system is configured \
                         with {}",
                        cubes.len(),
                        engines.len(),
                        hmc.cubes.len()
                    )));
                }
                for (cube, state) in hmc.cubes.iter_mut().zip(cubes) {
                    cube.load_state(resume_cycle, state)?;
                }
                for (engine, state) in hmc.engines.iter_mut().zip(engines) {
                    engine.load_state(state)?;
                }
                let controller_doc = backend_doc.req("controller")?;
                match &mut hmc.controller {
                    Some(controller) => {
                        if matches!(controller_doc, Json::Null) {
                            return Err(JsonError::state(
                                "checkpoint lacks host-controller state but the scheme offloads",
                            ));
                        }
                        controller.load_state(controller_doc)?;
                    }
                    None => {
                        if !matches!(controller_doc, Json::Null) {
                            return Err(JsonError::state(
                                "checkpoint has host-controller state but the scheme never \
                                 offloads",
                            ));
                        }
                    }
                }
            }
        }

        self.func_mem.clear();
        for entry in doc.req_array("func_mem")? {
            let addr = entry.req_hex_u64("addr")?;
            let value = entry.req_hex_f64("value")?;
            if self.func_mem.insert(addr, value).is_some() {
                return Err(JsonError::state("duplicate functional-memory address"));
            }
        }

        self.core_completions = LatencyQueue::new();
        for entry in doc.req_array("core_completions")? {
            let at = entry.req_u64("at")?;
            let core = entry.req_usize("core")?;
            if core >= self.cores.len() {
                return Err(JsonError::state("core completion for an out-of-range core"));
            }
            self.core_completions.push_at(at, (core, entry.req_hex_u64("req_id")?));
        }

        self.mem_txns.clear();
        for entry in doc.req_array("mem_txns")? {
            let txn = entry.req_hex_u64("txn")?;
            let core = entry.req_hex_u64("core")? as usize;
            if core != usize::MAX && core >= self.cores.len() {
                return Err(JsonError::state("memory transaction for an out-of-range core"));
            }
            let m = MemTxn {
                core,
                req_id: entry.req_hex_u64("req_id")?,
                port: PortId::new(entry.req_usize("port")?),
                noc_return: entry.req_u64("noc_return")?,
                is_write: entry.req_bool("is_write")?,
            };
            if self.mem_txns.insert(txn, m).is_some() {
                return Err(JsonError::state("duplicate memory-transaction id"));
            }
        }

        let cube_count = Self::backend_cube_count(&self.backend);
        self.vault_purpose.clear();
        for entry in doc.req_array("vault_purpose")? {
            let id = entry.req_hex_u64("id")?;
            let tagged = entry.req("purpose")?;
            let purpose = match tagged.req_str("t")? {
                "normal" => VaultPurpose::Normal { txn: tagged.req_hex_u64("txn")? },
                "are_read" => {
                    let cube = tagged.req_usize("cube")?;
                    if cube >= cube_count {
                        return Err(JsonError::state("operand read for an out-of-range cube"));
                    }
                    VaultPurpose::AreRead { cube, access_id: tagged.req_hex_u64("access_id")? }
                }
                "are_write" => VaultPurpose::AreWrite,
                other => {
                    return Err(JsonError::state(format!("unknown vault purpose {other:?}")));
                }
            };
            if self.vault_purpose.insert(id, purpose).is_some() {
                return Err(JsonError::state("duplicate vault-access id"));
            }
        }

        self.next_txn = doc.req_u64("next_txn")?;
        self.next_vault_id = doc.req_u64("next_vault_id")?;

        self.retry_dram.clear();
        for entry in doc.req_array("retry_dram")? {
            self.retry_dram.push((
                entry.req_u64("at")?,
                entry.req_hex_u64("id")?,
                Addr::new(entry.req_hex_u64("addr")?),
                entry.req_bool("is_write")?,
            ));
        }

        self.gather_results.clear();
        for entry in doc.req_array("gather_results")? {
            self.gather_results
                .push((Addr::new(entry.req_hex_u64("addr")?), entry.req_hex_f64("value")?));
        }

        debug_assert!(self.ipc_series.points().is_empty(), "restore onto a fresh system");
        for point in doc.req_array("ipc_series")? {
            let pair = point
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| JsonError::state("IPC sample is not an [x, y] pair"))?;
            let x = pair[0]
                .as_hex_f64()
                .ok_or_else(|| JsonError::state("IPC sample x is not a hex float"))?;
            let y = pair[1]
                .as_hex_f64()
                .ok_or_else(|| JsonError::state("IPC sample y is not a hex float"))?;
            self.ipc_series.push(x, y);
        }
        self.last_ipc_sample_insns = doc.req_u64("last_ipc_sample_insns")?;
        self.hmc_bytes = doc.req_u64("hmc_bytes")?;
        self.back_invalidations = doc.req_u64("back_invalidations")?;
        self.drain_windows = doc.req_u64("drain_windows")?;
        self.cross_cycle_windows = doc.req_u64("cross_cycle_windows")?;
        self.resume_cycle = resume_cycle;
        self.report_cycle = report_cycle;
        self.prefix_completed = completed;

        // ------------------------------------------------------------------
        // Derived state: recomputed, never trusted from the document.
        // ------------------------------------------------------------------
        self.drain_until = 0;
        self.drain_outbox.clear();
        self.arm_backoff_until = 0;
        self.active_windows = 0;
        for window in &mut self.run_ahead {
            debug_assert!(window.replay.is_empty(), "restore onto a fresh system");
            window.until = 0;
        }
        self.armq.clear();
        self.arm_flags.fill(false);
        self.cores_done = self.cores.iter().filter(|c| c.is_done()).count();
        self.mi_pending_cores = 0;
        for (i, core) in self.cores.iter().enumerate() {
            // A restored core is never parked or fast-forwarding (the lazy
            // intervals were settled at the snapshot boundary): done cores
            // sleep, everything else is re-examined at the resume cycle.
            self.core_wake_at[i] = if core.is_done() { u64::MAX } else { 0 };
            let mi_now = !core.mi().is_empty();
            self.mi_pending[i] = mi_now;
            self.mi_pending_cores += usize::from(mi_now);
        }
        let busy_keys: Vec<SysKey> = match &self.backend {
            Backend::Dram(_) => vec![SysKey::Dram],
            Backend::Hmc(hmc) => {
                (0..hmc.cubes.len()).flat_map(|c| [SysKey::Cube(c), SysKey::Engine(c)]).collect()
            }
        };
        self.busy.fill(false);
        self.busy_count = 0;
        for key in busy_keys {
            let busy = self.component_busy(key);
            self.busy[Self::key_slot(key)] = busy;
            self.busy_count += usize::from(busy);
        }
        Ok(())
    }

    /// Processes one memory-network cycle.
    ///
    /// `due` is the set of components with scheduled wake-ups at `now`
    /// (`None` means "everything", which is how the lock-step driver runs).
    /// The phase order within a cycle is fixed — cores, barriers, Message
    /// Interfaces, memory backend, IPC sampling — and matches the original
    /// lock-step simulator; gating a phase on its key only skips work that
    /// would have been a no-op.
    fn step(
        &mut self,
        now: Cycle,
        due: Option<&[SysKey]>,
        sched: &mut ShardedScheduler<SysKey>,
        hub: &mut ObserverHub<'_>,
        pool: Option<&mut WorkerPool>,
    ) {
        debug_assert!(self.armq.is_empty());
        let is_due = |key: SysKey| due.is_none_or(|set| set.binary_search(&key).is_ok());
        let ratio = self.cfg.core_cycles_per_network_cycle();

        // ------------------------------------------------------------------
        // Core cluster: pipelines, barrier release, Message Interfaces.
        // ------------------------------------------------------------------
        if is_due(SysKey::Cores) && self.cores_active() {
            // The event-driven kernel also skips *parked* cores (blocked on a
            // memory response, gather result or barrier; see
            // `Core::is_parked`) and cores inside a fast-forwarded compute
            // interval (`Core::is_fast_forwarding`): their skipped cycles are
            // settled in one shot by the tick that follows the unblocking
            // event or the interval's end. The lock-step reference keeps
            // ticking every core per cycle — and never arms an interval — so
            // it stays the per-cycle oracle the settle arithmetic must match.
            let event_kernel = due.is_some();
            if event_kernel && now < self.drain_until {
                // A planned offload-drain window covers this cycle: every
                // core's pipeline state was already committed to the window
                // end when the window was armed, so the cluster only replays
                // the window's host-controller submissions due now — at
                // their true cycles and in their true order, keeping the
                // memory side cycle-exact.
                self.flush_drain_outbox(now);
                sched.schedule_next(self.cores_next_wake(now), SysKey::Cores);
            } else {
                self.step_cores(now, ratio, event_kernel, sched, hub);
            }
        }

        // ------------------------------------------------------------------
        // Memory side.
        // ------------------------------------------------------------------
        // A component stimulated by an earlier phase of this same cycle (e.g.
        // a DRAM request issued by the cores phase) must be processed by its
        // own phase *this* cycle, exactly as the lock-step order does — the
        // armq doubles as that same-cycle stimulus record.
        match self.backend {
            Backend::Dram(_) => {
                let dram_due = is_due(SysKey::Dram) || self.stimulated(SysKey::Dram);
                self.step_dram(now, dram_due);
            }
            Backend::Hmc(_) => self.step_hmc(now, due, hub, pool),
        }

        // ------------------------------------------------------------------
        // Bookkeeping.
        // ------------------------------------------------------------------
        self.sample_ipc(now, ratio, hub);
        if is_due(SysKey::Ipc) {
            sched.schedule(self.next_ipc_boundary(now), SysKey::Ipc);
        }

        // Re-arm every component woken or stimulated during this cycle
        // (`armq` is already deduplicated by the push-side flags), and
        // refresh its cached busy flag: a component's state only changes in
        // a cycle that touches it, so this sweep keeps the outstanding-work
        // counter behind `is_finished` exact.
        let mut touched = std::mem::take(&mut self.armq);
        for &key in &touched {
            let slot = Self::key_slot(key);
            self.arm_flags[slot] = false;
            let busy = self.component_busy(key);
            if busy != self.busy[slot] {
                self.busy[slot] = busy;
                if busy {
                    self.busy_count += 1;
                } else {
                    self.busy_count -= 1;
                }
            }
            let wake = self.next_wake_of(now, key);
            sched.schedule_next(wake, key);
        }
        touched.clear();
        self.armq = touched;
    }

    /// The normal cores phase of one network cycle: the per-core-cycle
    /// sub-loop (completion delivery, pipeline wakes, memory issue), barrier
    /// release, the Message-Interface drain, and — in the event kernel — an
    /// attempt to arm a new offload-drain window before the cluster's next
    /// wake-up is scheduled.
    fn step_cores(
        &mut self,
        now: Cycle,
        ratio: u64,
        event_kernel: bool,
        sched: &mut ShardedScheduler<SysKey>,
        hub: &mut ObserverHub<'_>,
    ) {
        let mut ctx = SchedCtx::new(now);
        for sub in 0..ratio {
            let core_cycle = now * ratio + sub;
            // Deliver finished memory requests first so dependent work
            // can issue in the same cycle.
            while let Some((core, req_id)) = self.core_completions.pop_ready(core_cycle) {
                self.cores[core].complete_mem(req_id, core_cycle);
                // The completion may unpark the core: re-open its gate
                // (spuriously waking a still-blocked core is harmless).
                self.core_wake_at[core] = 0;
            }
            let mut requests = std::mem::take(&mut self.core_requests);
            let mut newly_done = 0;
            for (i, core) in self.cores.iter_mut().enumerate() {
                if event_kernel {
                    // The dense gate folds done, parked and
                    // fast-forwarding into one contiguous load.
                    if self.core_wake_at[i] > core_cycle {
                        continue;
                    }
                    // An unpark site may spuriously re-open the gate of
                    // an already-done core (e.g. a fire-and-forget
                    // gather result arriving after its issuer retired
                    // everything): restore the gate without re-counting
                    // the core's done transition.
                    if core.is_done() {
                        self.core_wake_at[i] = u64::MAX;
                        continue;
                    }
                } else if core.is_done() {
                    continue;
                }
                core.wake(core_cycle, &mut ctx);
                requests.extend(core.drain_requests().map(|req| (i, req)));
                // Offload commands only enter the MI during the wake:
                // refresh the drain phase's dense flag.
                let mi_now = !core.mi().is_empty();
                if mi_now != self.mi_pending[i] {
                    self.mi_pending[i] = mi_now;
                    if mi_now {
                        self.mi_pending_cores += 1;
                    } else {
                        self.mi_pending_cores -= 1;
                    }
                }
                // A core only transitions to done while it retires, i.e.
                // during its own wake — count the transition here, and
                // refresh the gate from the wake's outcome.
                if core.is_done() {
                    newly_done += 1;
                    self.core_wake_at[i] = u64::MAX;
                } else if core.is_parked() {
                    self.core_wake_at[i] = u64::MAX;
                } else if event_kernel && self.fast_forward && core.try_fast_forward(core_cycle + 1)
                {
                    self.core_wake_at[i] = core.fast_forward_until().expect("interval just armed");
                } else {
                    self.core_wake_at[i] = 0;
                }
            }
            self.cores_done += newly_done;
            for (core, req) in requests.drain(..) {
                self.handle_core_memory_request(core_cycle, core, req);
            }
            self.core_requests = requests;
        }
        self.release_barriers(now * ratio, hub);
        self.drain_message_interfaces(now);
        // With this cycle's per-cycle work done, the cluster may now be in
        // the purely deterministic offload-drain regime: plan the whole
        // window in closed form instead of ticking through it. Barrier
        // release above may have stopped the run through an observer — an
        // armed window would then leak past the stop, so never arm one.
        if event_kernel && self.drain_fast_forward && !hub.stopped() {
            self.try_arm_offload_drain(now);
        }
        // Re-arm lazily: every network cycle while some core still ticks
        // (or has Message-Interface commands to drain), otherwise only at
        // the next pending completion delivery. A fully parked cluster
        // sleeps until the memory side stimulates it.
        sched.schedule_next(self.cores_next_wake(now), SysKey::Cores);
    }

    /// Whether a memory-side component currently holds in-flight work.
    /// Core-side keys always report idle here; the cluster is tracked by
    /// `cores_done` and `core_completions` instead.
    fn component_busy(&self, key: SysKey) -> bool {
        match (key, &self.backend) {
            (SysKey::Dram, Backend::Dram(dram)) => !dram.is_idle(),
            // A cube that ran ahead may already be internally idle while its
            // replayed completions still wait for the global clock.
            (SysKey::Cube(c), Backend::Hmc(hmc)) => {
                !hmc.cubes[c].is_idle() || !self.run_ahead[c].replay.is_empty()
            }
            (SysKey::Engine(c), Backend::Hmc(hmc)) => !hmc.engines[c].is_idle(),
            _ => false,
        }
    }

    /// Dense index of a scheduling key into `arm_flags`.
    fn key_slot(key: SysKey) -> usize {
        match key {
            SysKey::Cores => 0,
            SysKey::Dram => 1,
            SysKey::Network => 2,
            SysKey::Ipc => 3,
            SysKey::Cube(c) => 4 + 2 * c,
            SysKey::Engine(c) => 5 + 2 * c,
        }
    }

    /// Records that `key` was stimulated this cycle (deduplicated). A free
    /// function over the two fields so call sites holding a borrow of
    /// `self.backend` can still record stimuli.
    fn stimulate(armq: &mut Vec<SysKey>, arm_flags: &mut [bool], key: SysKey) {
        let slot = Self::key_slot(key);
        debug_assert!(
            slot < arm_flags.len(),
            "stimulated {key:?} (slot {slot}) outside the {}-slot table — slot table out of \
             sync with the backend's cube count",
            arm_flags.len()
        );
        if !arm_flags[slot] {
            arm_flags[slot] = true;
            armq.push(key);
        }
    }

    /// Returns true if `key` was stimulated earlier in the current step.
    fn stimulated(&self, key: SysKey) -> bool {
        let slot = Self::key_slot(key);
        debug_assert!(
            slot < self.arm_flags.len(),
            "queried {key:?} (slot {slot}) outside the {}-slot table",
            self.arm_flags.len()
        );
        self.arm_flags[slot]
    }

    /// Returns true while the core cluster still has work: an unfinished
    /// core, or an in-flight completion that must be delivered. O(1): the
    /// done-core counter is maintained in the cores phase.
    fn cores_active(&self) -> bool {
        self.cores_done < self.cores.len() || !self.core_completions.is_empty()
    }

    /// The core cluster's wake-up request.
    ///
    /// The cluster must be processed every network cycle while any core can
    /// still tick (not done, not parked, not fast-forwarding) or holds
    /// undrained Message-Interface commands (the MI serialises one command
    /// per core per network cycle regardless of the core's pipeline being
    /// blocked). A fast-forwarding core needs its next tick only at its
    /// interval's end, and a parked core only when its completion is
    /// delivered — both at exactly the network cycle whose sub-loop contains
    /// the core-cycle deadline, so the settling tick lands on the same cycle
    /// the lock-step kernel processes it. A cluster with nothing but sleeping
    /// cores idles until the earliest such deadline (or until the memory side
    /// stimulates it).
    fn cores_next_wake(&self, now: Cycle) -> NextWake {
        // A planned offload-drain window owns the cluster's schedule: the
        // next wake is the next planned submission (or the window's end,
        // where normal ticking resumes). This must come first — the dense
        // per-core gates and MI flags already describe the *post-window*
        // state, so the checks below would wake the cluster mid-window.
        if now < self.drain_until {
            let at = self.drain_outbox.front().map_or(self.drain_until, |inj| inj.cycle);
            return NextWake::At(at.max(now + 1));
        }
        // Undrained Message-Interface commands keep the cluster hot (the MI
        // serialises one command per network cycle regardless of the
        // pipeline being blocked).
        if self.mi_pending_cores > 0 {
            return NextWake::At(now + 1);
        }
        let ratio = self.cfg.core_cycles_per_network_cycle();
        let mut wake = NextWake::Idle;
        for &at in &self.core_wake_at {
            match at {
                u64::MAX => {}
                // A runnable core ticks every cycle — nothing can be earlier.
                0 => return NextWake::At(now + 1),
                // The tick at core cycle `at` belongs to the network cycle
                // whose sub-loop covers it.
                at => wake = wake.min_with(NextWake::At((at / ratio).max(now + 1))),
            }
        }
        match self.core_completions.next_ready_at() {
            Some(at) => wake.min_with(NextWake::At((at / ratio).max(now + 1))),
            None => wake,
        }
    }

    /// The wake-up request of a top-level component, queried after it was
    /// woken or stimulated.
    fn next_wake_of(&self, now: Cycle, key: SysKey) -> NextWake {
        match (key, &self.backend) {
            (SysKey::Dram, Backend::Dram(dram)) => self
                .retry_dram
                .iter()
                .fold(dram.next_wake(now), |wake, (at, ..)| wake.min_with(NextWake::At(*at))),
            (SysKey::Network, Backend::Hmc(hmc)) => hmc.network.next_wake(now),
            // A cube inside a run-ahead window wakes at its next replay
            // stamp (each merges at its exact cycle) and resumes normal
            // ticking after the window; the cube's own calendar is already
            // ahead, so querying it from `now` would re-announce events the
            // window consumed.
            (SysKey::Cube(c), Backend::Hmc(hmc)) => {
                let window = &self.run_ahead[c];
                if window.active(now) {
                    NextWake::from_next(window.replay.next_at())
                        .min_with(hmc.cubes[c].next_wake(window.until))
                } else {
                    hmc.cubes[c].next_wake(now)
                }
            }
            (SysKey::Engine(c), Backend::Hmc(hmc)) => hmc.engines[c].next_wake(now),
            // The memory side re-arms a sleeping cluster when it delivers a
            // completion or gather result to it (the cores phase itself
            // re-arms inline).
            (SysKey::Cores, _) => self.cores_next_wake(now),
            // The IPC sampler re-arms inline in `step`.
            _ => NextWake::Idle,
        }
    }

    /// The next network cycle after `now` at which the IPC window boundary
    /// falls (i.e. `cycle * ratio` is a multiple of the window).
    fn next_ipc_boundary(&self, now: Cycle) -> Cycle {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let ratio = self.cfg.core_cycles_per_network_cycle().max(1);
        let period = (IPC_WINDOW_CORE_CYCLES / gcd(IPC_WINDOW_CORE_CYCLES, ratio)).max(1);
        (now / period + 1) * period
    }

    // ------------------------------------------------------------------
    // Core side
    // ------------------------------------------------------------------

    fn handle_core_memory_request(&mut self, core_cycle: Cycle, core: usize, req: MemAccess) {
        let kind = match req.kind {
            MemAccessKind::Read => AccessKind::Read,
            MemAccessKind::Write => AccessKind::Write,
            MemAccessKind::Atomic => AccessKind::Atomic,
        };
        let result = self.caches.access(core, req.addr, kind);
        let core_tile = self.noc.core_tile(core);
        let bank_tile = self.noc.bank_tile(result.l2_bank);
        let atomic_penalty = if kind == AccessKind::Atomic { ATOMIC_COHERENCE_PENALTY } else { 0 };

        match result.hit {
            Some(HitLevel::L1) => {
                let done = core_cycle + self.cfg.caches.l1_hit_latency + atomic_penalty;
                self.core_completions.push_at(done, (core, req.req_id));
            }
            Some(HitLevel::L2) => {
                let arrive = self.noc.transfer(core_cycle, core_tile, bank_tile, 16);
                let served = arrive + self.cfg.caches.l2_hit_latency;
                let back = self.noc.transfer(served, bank_tile, core_tile, 80);
                self.core_completions.push_at(back + atomic_penalty, (core, req.req_id));
            }
            None => {
                // Miss: travel to the memory controller and out to memory.
                let mc = self.memory_port_of(req.addr);
                let mc_tile = self.noc.mc_tile(mc.index());
                let at_bank = self.noc.transfer(core_cycle, core_tile, bank_tile, 16);
                let at_mc = self.noc.transfer(at_bank, bank_tile, mc_tile, 16);
                let noc_return = self.noc.ideal_latency(mc_tile, bank_tile, 80)
                    + self.noc.ideal_latency(bank_tile, core_tile, 80)
                    + atomic_penalty;
                let txn = self.next_txn;
                self.next_txn += 1;
                self.mem_txns.insert(
                    txn,
                    MemTxn {
                        core,
                        req_id: req.req_id,
                        port: mc,
                        noc_return,
                        is_write: kind.is_write(),
                    },
                );
                let network_now = at_mc / self.cfg.core_cycles_per_network_cycle();
                self.issue_memory_access(network_now, txn, req.addr, kind.is_write());
            }
        }

        // Dirty evictions move a block back to memory without blocking anyone.
        for _ in 0..result.writebacks {
            let network_now = core_cycle / self.cfg.core_cycles_per_network_cycle();
            self.issue_writeback(network_now, req.addr);
        }
    }

    fn memory_port_of(&self, addr: Addr) -> PortId {
        match &self.backend {
            Backend::Dram(dram) => {
                PortId::new(dram.channel_of(addr) % self.cfg.noc.memory_controllers)
            }
            Backend::Hmc(hmc) => {
                let cube = CubeId::new(self.map.cube_of(addr));
                hmc.topology.nearest_port(cube)
            }
        }
    }

    fn issue_memory_access(&mut self, now: Cycle, txn: u64, addr: Addr, is_write: bool) {
        match &mut self.backend {
            Backend::Dram(dram) => {
                let req = if is_write {
                    DramRequest::write(txn, addr)
                } else {
                    DramRequest::read(txn, addr)
                };
                if dram.try_push(now, req).is_err() {
                    // Channel queue full: retry on the next network cycle.
                    self.retry_dram.push((now + 1, txn, addr, is_write));
                }
                Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Dram);
            }
            Backend::Hmc(hmc) => {
                let port = self.mem_txns.get(&txn).map(|t| t.port).unwrap_or(PortId::new(0));
                let cube = CubeId::new(self.map.cube_of(addr));
                let kind = if is_write {
                    PacketKind::WriteReq { req_id: txn, addr }
                } else {
                    PacketKind::ReadReq { req_id: txn, addr }
                };
                let packet = Packet::from_host(txn | (1 << 59), port, cube, kind, now);
                hmc.network.inject(now, packet);
                Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Network);
            }
        }
    }

    fn issue_writeback(&mut self, now: Cycle, addr: Addr) {
        match &mut self.backend {
            Backend::Dram(dram) => {
                let id = self.next_txn | (1 << 58);
                self.next_txn += 1;
                let _ = dram.try_push(now, DramRequest::write(id, addr));
                Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Dram);
            }
            Backend::Hmc(hmc) => {
                let id = self.next_txn | (1 << 58);
                self.next_txn += 1;
                let cube = CubeId::new(self.map.cube_of(addr));
                let port = hmc.topology.nearest_port(cube);
                let packet = Packet::from_host(
                    id,
                    port,
                    cube,
                    PacketKind::WriteReq { req_id: id, addr },
                    now,
                );
                self.mem_txns.insert(
                    id,
                    MemTxn { core: usize::MAX, req_id: 0, port, noc_return: 0, is_write: true },
                );
                hmc.network.inject(now, packet);
                Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Network);
            }
        }
    }

    fn release_barriers(&mut self, core_cycle: Cycle, hub: &mut ObserverHub<'_>) {
        // Running min over the waiting cores; this probes every network cycle,
        // so it must not allocate.
        let mut lowest: Option<u32> = None;
        for core in &self.cores {
            if core.is_done() {
                continue;
            }
            match core.waiting_barrier() {
                Some(id) => lowest = Some(lowest.map_or(id, |m| m.min(id))),
                None => return, // someone is still running: no release possible
            }
        }
        let Some(id) = lowest else {
            return;
        };
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.release_barrier(id, core_cycle);
            // Released cores must tick again; re-open every live gate (the
            // cores not at this barrier were runnable anyway).
            if !core.is_done() {
                self.core_wake_at[i] = 0;
            }
        }
        if !hub.is_empty() {
            hub.emit(&SimEvent::BarrierReleased { core_cycle, id });
        }
    }

    // ------------------------------------------------------------------
    // Offload side
    // ------------------------------------------------------------------

    fn drain_message_interfaces(&mut self, now: Cycle) {
        if self.mi_pending_cores == 0 {
            return;
        }
        let Backend::Hmc(hmc) = &mut self.backend else {
            return;
        };
        let Some(controller) = hmc.controller.as_mut() else {
            return;
        };
        // The cycle's submissions batch into the reused controller buffer
        // (append order is submission order), so the hot path allocates
        // nothing and the batched injection below is indistinguishable from
        // injecting after every submit.
        self.host_scratch.clear();
        let mut newly_done = 0;
        for (i, core) in self.cores.iter_mut().enumerate() {
            if !self.mi_pending[i] {
                continue;
            }
            // One offload command per core per network cycle (the MI serialises
            // register writes into packets at the network clock).
            if let Some(cmd) = core.mi_mut().pop() {
                controller.submit_into(now, cmd, &mut self.host_scratch);
                if core.mi().is_empty() {
                    self.mi_pending[i] = false;
                    self.mi_pending_cores -= 1;
                }
                // Draining the last Message-Interface command can be the
                // core's final pending work: a non-empty MI keeps `is_done`
                // false, so this pop is a possible done transition.
                if core.is_done() {
                    newly_done += 1;
                    self.core_wake_at[i] = u64::MAX;
                }
            }
        }
        self.cores_done += newly_done;
        // Submitting MI commands only produces packets and back-invalidations
        // (gather completions arrive through the host ports).
        debug_assert!(self.host_scratch.completions.is_empty());
        if !self.host_scratch.packets.is_empty() {
            for (_, packet) in self.host_scratch.packets.drain(..) {
                hmc.network.inject(now, packet);
            }
            Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Network);
        }
        for addr in self.host_scratch.back_invalidate.drain(..) {
            let (copies, _dirty) = self.caches.back_invalidate(addr);
            if copies > 0 {
                self.back_invalidations += 1;
            }
        }
    }

    /// Tries to plan an offload-drain window starting after network cycle
    /// `now` (see [`crate::drain`]). Called at the end of the event kernel's
    /// cores phase, after this cycle's Message-Interface drain; on success
    /// every drain core's pipeline state is committed to the window end in
    /// one shot, the planned submissions are queued in `drain_outbox`, and
    /// `drain_until` makes the cores phase replay-only until the window
    /// ends.
    ///
    /// The guards establish that nothing outside the plan can touch the
    /// cluster inside the window:
    /// * the host controller is idle — no gather barrier can complete, so no
    ///   gate opens and no observer event fires from the ports;
    /// * no core memory transaction or completion is in flight — no core can
    ///   unpark and the memory side cannot stimulate the cluster;
    /// * every runnable core probes as a pure drain core
    ///   ([`Core::offload_drain_probe`]); parked and done cores stay inert
    ///   for the whole window (a barrier cannot release while a drain core
    ///   still runs), and a compute-fast-forwarding core caps the window
    ///   before its wake-up;
    /// * the window closes before the next IPC sample boundary and before
    ///   the cycle limit, and never opens *on* a boundary — the sample later
    ///   in this same step must not read counters already advanced past the
    ///   window.
    fn try_arm_offload_drain(&mut self, now: Cycle) {
        debug_assert!(self.drain_until <= now, "armed while a window is still open");
        let ratio = self.cfg.core_cycles_per_network_cycle();
        let core_cycle = now * ratio;
        if core_cycle != 0 && core_cycle.is_multiple_of(IPC_WINDOW_CORE_CYCLES) {
            return;
        }
        // The last network cycle the window may cover.
        let mut horizon = self.next_ipc_boundary(now) - 1;
        if self.cfg.max_cycles != 0 {
            horizon = horizon.min(self.cfg.max_cycles.saturating_sub(1));
        }
        if horizon < now + MIN_DRAIN_CYCLES {
            return;
        }
        match &self.backend {
            Backend::Hmc(hmc) => match &hmc.controller {
                Some(controller) if controller.is_idle() => {}
                _ => return,
            },
            Backend::Dram(_) => return,
        }
        if !self.core_completions.is_empty() {
            return;
        }
        // In-flight core transactions (loads/atomics awaiting a response)
        // would deliver mid-window; cache writebacks (`core == usize::MAX`)
        // never touch the cluster. The map is bounded by the per-core
        // outstanding-request limits, so this scan is cheap.
        if self.mem_txns.values().any(|txn| txn.core != usize::MAX) {
            return;
        }
        // Classify every core: runnable cores must probe as drain cores,
        // sleeping cores must be genuinely inert for the whole window.
        let since = (now + 1) * ratio;
        // Deep enough that truncating the probe's run walk can never end a
        // window early: over `n` cycles a core pushes at most `n` drained
        // commands plus one queue fill (see `crate::drain`).
        let max_run = (horizon - now) + self.cfg.cores.mi_queue_depth as u64 + 8;
        // Reused across windows (cleared here, not at the end: the classify
        // loop below can bail out half-filled).
        self.drain_plan_cores.clear();
        self.drain_plan_states.clear();
        self.drain_plan_pops.clear();
        self.drain_plan_commands.clear();
        self.drain_plan_cursors.clear();
        for i in 0..self.cores.len() {
            match self.core_wake_at[i] {
                0 => {
                    let Some(probe) = self.cores[i].offload_drain_probe(since, max_run) else {
                        return;
                    };
                    self.drain_plan_cores.push(i);
                    self.drain_plan_states.push(CoreDrain::new(&probe));
                }
                u64::MAX => {
                    // Parked or done. Such a core never ticks mid-window,
                    // but a non-empty MI would still demand per-cycle drain
                    // service the plan does not model.
                    if !self.cores[i].mi().is_empty() {
                        return;
                    }
                }
                at => {
                    // A compute-fast-forwarding core sleeps until core cycle
                    // `at`: close the window before the network cycle whose
                    // sub-loop ticks it.
                    if !self.cores[i].mi().is_empty() {
                        return;
                    }
                    let wake_nc = at / ratio;
                    if wake_nc <= now + MIN_DRAIN_CYCLES {
                        return;
                    }
                    horizon = horizon.min(wake_nc - 1);
                }
            }
        }
        if self.drain_plan_cores.is_empty() {
            return;
        }
        // Plan the window on pure scalars (the fast-forward caps above may
        // have pulled the horizon in).
        let n = drain::plan(
            &mut self.drain_plan_states,
            ratio,
            horizon - now,
            MAX_WINDOW_POPS,
            &mut self.drain_plan_pops,
        );
        if n < MIN_DRAIN_CYCLES {
            return;
        }
        // Commit: collect each drain core's submission stream (flat, with a
        // cursor marking where each core's span starts), expand the pop
        // schedule into the outbox (cycle-major, core-ascending within a
        // cycle — exactly the per-cycle drain phase's submission order), and
        // apply the window to every drain core in one shot.
        debug_assert!(self.drain_outbox.is_empty(), "outbox left over from a previous window");
        for slot in 0..self.drain_plan_cores.len() {
            let i = self.drain_plan_cores[slot];
            let start = self.drain_plan_commands.len();
            self.cores[i].peek_drain_commands(
                self.drain_plan_states[slot].pops,
                &mut self.drain_plan_commands,
            );
            debug_assert_eq!(
                (self.drain_plan_commands.len() - start) as u64,
                self.drain_plan_states[slot].pops
            );
            self.drain_plan_cursors.push(start);
        }
        for &(rel, slot) in &self.drain_plan_pops {
            let slot = slot as usize;
            let cmd = self.drain_plan_commands[self.drain_plan_cursors[slot]];
            self.drain_plan_cursors[slot] += 1;
            self.drain_outbox.push_back(DrainInjection { cycle: now + rel, cmd });
        }
        let end_ready_at = (now + 1 + n) * ratio;
        for (slot, &i) in self.drain_plan_cores.iter().enumerate() {
            let st = &self.drain_plan_states[slot];
            self.cores[i].finish_offload_drain(&OffloadDrainOutcome {
                core_cycles: n * ratio,
                end_ready_at,
                retired: st.retired,
                stall_offload: st.stall_offload,
                stall_rob_full: st.stall_rob_full,
                pushes: st.pushes,
                pops: st.pops,
            });
            debug_assert!(!self.cores[i].is_done(), "a drain window cannot finish a core");
            // The dense MI flag must describe the post-window queue for the
            // cycle that resumes normal draining.
            let mi_now = !self.cores[i].mi().is_empty();
            if mi_now != self.mi_pending[i] {
                self.mi_pending[i] = mi_now;
                if mi_now {
                    self.mi_pending_cores += 1;
                } else {
                    self.mi_pending_cores -= 1;
                }
            }
        }
        self.drain_until = now + n + 1;
        self.drain_windows += 1;
    }

    /// Replays the planned submissions of the current drain window that are
    /// due at `now`: each command is submitted to the host controller and
    /// the batch's packets injected exactly as the per-cycle drain phase
    /// would have, then the back-invalidations apply in submission order.
    fn flush_drain_outbox(&mut self, now: Cycle) {
        debug_assert!(now < self.drain_until);
        let Backend::Hmc(hmc) = &mut self.backend else {
            debug_assert!(false, "drain windows only arm on the HMC backend");
            return;
        };
        let Some(controller) = hmc.controller.as_mut() else {
            debug_assert!(false, "drain windows only arm with a host controller");
            return;
        };
        self.host_scratch.clear();
        while let Some(front) = self.drain_outbox.front() {
            if front.cycle > now {
                break;
            }
            debug_assert_eq!(front.cycle, now, "a planned submission cycle was skipped");
            let inj = self.drain_outbox.pop_front().expect("front just checked");
            controller.submit_into(now, inj.cmd, &mut self.host_scratch);
        }
        // Drain windows submit only `Update` commands: packets and
        // back-invalidations, never gather completions.
        debug_assert!(self.host_scratch.completions.is_empty());
        if !self.host_scratch.packets.is_empty() {
            for (_, packet) in self.host_scratch.packets.drain(..) {
                hmc.network.inject(now, packet);
            }
            Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Network);
        }
        for addr in self.host_scratch.back_invalidate.drain(..) {
            let (copies, _dirty) = self.caches.back_invalidate(addr);
            if copies > 0 {
                self.back_invalidations += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Memory side
    // ------------------------------------------------------------------

    fn step_dram(&mut self, now: Cycle, dram_due: bool) {
        if !dram_due {
            return;
        }
        // Retry requests that found their channel queue full.
        let retries = std::mem::take(&mut self.retry_dram);
        for (at, txn, addr, is_write) in retries {
            if at <= now {
                self.issue_memory_access(now, txn, addr, is_write);
            } else {
                self.retry_dram.push((at, txn, addr, is_write));
            }
        }
        let ratio = self.cfg.core_cycles_per_network_cycle();
        let mut ctx = SchedCtx::new(now);
        let Backend::Dram(dram) = &mut self.backend else { return };
        dram.wake(now, &mut ctx);
        while let Some(resp) = dram.pop_response(now) {
            if let Some(txn) = self.mem_txns.remove(&resp.id) {
                if txn.core != usize::MAX {
                    let done = now * ratio + txn.noc_return.max(1);
                    self.core_completions.push_at(done, (txn.core, txn.req_id));
                    // A sleeping cluster must be re-armed for the delivery.
                    Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Cores);
                }
            }
        }
        Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Dram);
    }

    /// One HMC-side network cycle, in four sub-phases with the same order as
    /// the original serial loop: the network tick, the per-cube delivery /
    /// engine sub-phase, the per-cube vault-drain sub-phase, and the host
    /// ports. The two per-cube sub-phases tick their due cube shards through
    /// tick jobs — concurrently when a [`WorkerPool`] is attached — and every
    /// cross-shard effect (purpose-map entries, traffic bytes, engine
    /// outputs, completions, stimuli) goes through a per-shard outbox merged
    /// in cube-index order at the sub-phase boundary, so the schedule of
    /// observable effects is byte-identical to the serial kernel.
    fn step_hmc(
        &mut self,
        now: Cycle,
        due: Option<&[SysKey]>,
        hub: &mut ObserverHub<'_>,
        mut pool: Option<&mut WorkerPool>,
    ) {
        let is_due = |key: SysKey| due.is_none_or(|set| set.binary_search(&key).is_ok());
        let ratio = self.cfg.core_cycles_per_network_cycle();
        let mut ctx = SchedCtx::new(now);
        // Split-borrow the backend once.
        let Backend::Hmc(hmc) = &mut self.backend else { return };
        let hmc = hmc.as_mut();

        // Expire cross-cycle windows the global clock has caught up with:
        // the cube's state already reflects local cycle `until`, so normal
        // ticking resumes at `until + 1` with nothing left to replay (every
        // replay stamp lies within the window and was drained at its exact
        // cycle by a scheduled wake).
        if self.active_windows > 0 {
            for window in &mut self.run_ahead {
                if window.until != 0 && now > window.until {
                    debug_assert!(
                        window.replay.is_empty(),
                        "a cross-cycle window expired with undrained replay entries"
                    );
                    window.until = 0;
                    self.active_windows -= 1;
                }
            }
        }

        if is_due(SysKey::Network) {
            hmc.network.wake(now, &mut ctx);
            Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Network);
        }

        // 1. Packets delivered at cubes, and the engines' own pipelines: one
        // tick per cube shard with a pending delivery or a due engine. Taking
        // the inbox up front is equivalent to the old per-packet pop — no new
        // delivery can appear at a cube until these outputs are applied. The
        // participating shard indices live in a persistent scratch, and the
        // borrow-holding job vector is only materialised when the batch is
        // worth a worker-pool dispatch — the serial hot path (small batches,
        // single-threaded hosts) allocates nothing per cycle.
        let mut participants = std::mem::take(&mut self.cube_participants);
        participants.clear();
        for c in 0..hmc.cubes.len() {
            let cube_id = CubeId::new(c);
            if self.run_ahead[c].active(now) {
                // The causality invariant of bounded-lag execution: the
                // horizon under which this window was armed guarantees no
                // delivery reaches the cube — and nothing wakes its (idle at
                // arming time) engine — before the window has expired. These
                // oracles back the property suite; a violation would mean an
                // unsound lookahead bound.
                debug_assert!(
                    !hmc.network.has_delivery_at_cube(cube_id),
                    "a packet reached cube {c} inside its cross-cycle window"
                );
                debug_assert!(
                    hmc.engines[c].is_idle(),
                    "cube {c}'s engine woke up inside its cross-cycle window"
                );
                continue;
            }
            if !hmc.network.has_delivery_at_cube(cube_id) && !is_due(SysKey::Engine(c)) {
                continue;
            }
            hmc.network.drain_at_cube_into(cube_id, &mut self.cube_scratch[c].inbox);
            participants.push(c);
        }
        if pool.is_some() && participants.len() >= PARALLEL_BATCH_MIN {
            let mut jobs: Vec<CubeDeliveryJob<'_>> = Vec::with_capacity(participants.len());
            let mut next = participants.iter().peekable();
            for ((c, (cube, engine)), scratch) in hmc
                .cubes
                .iter_mut()
                .zip(hmc.engines.iter_mut())
                .enumerate()
                .zip(self.cube_scratch.iter_mut())
            {
                if next.peek() == Some(&&c) {
                    next.next();
                    jobs.push(CubeDeliveryJob { cube, engine, scratch });
                }
            }
            run_shard_jobs(pool.as_deref_mut(), &mut jobs, |job| job.tick(now));
        } else {
            for &c in &participants {
                CubeDeliveryJob {
                    cube: &mut hmc.cubes[c],
                    engine: &mut hmc.engines[c],
                    scratch: &mut self.cube_scratch[c],
                }
                .tick(now);
            }
        }
        // Merge the outboxes in cube-index order (participants are
        // ascending): the per-cube accumulators are applied one after the
        // other, so every network injection and vault push lands in the same
        // order as the serial per-cube loop. Each accumulator is drained in
        // place and handed back to its outbox, so its capacity persists
        // across cycles.
        debug_assert!(
            participants.windows(2).all(|w| w[0] < w[1]),
            "per-cube outboxes must merge in ascending cube-index order \
             (same-cycle packets queue per link in merge order)"
        );
        for &c in &participants {
            let outbox = &mut self.cube_scratch[c].outbox;
            for id in outbox.normal_ids.drain(..) {
                self.vault_purpose.insert(id, VaultPurpose::Normal { txn: id });
            }
            self.hmc_bytes += outbox.hmc_bytes;
            outbox.hmc_bytes = 0;
            if outbox.cube_stimulated {
                outbox.cube_stimulated = false;
                Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Cube(c));
            }
            Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Engine(c));
            let mut out = std::mem::take(&mut self.cube_scratch[c].outbox.are_output);
            self.apply_cube_output(now, c, &mut out);
            self.cube_scratch[c].outbox.are_output = out;
        }
        self.cube_participants = participants;

        let Backend::Hmc(hmc) = &mut self.backend else { return };
        let hmc = hmc.as_mut();

        // 2. Advance the cubes and collect vault completions: one tick per
        // cube shard that is due — or was stimulated earlier this cycle
        // (sub-phase 1 pushes vault requests whose crossbar latency may be
        // zero). Same placement rule as sub-phase 1: the job vector only
        // exists for a pool dispatch.
        let mut participants = std::mem::take(&mut self.cube_participants);
        participants.clear();
        for c in 0..hmc.cubes.len() {
            if is_due(SysKey::Cube(c)) || self.arm_flags[Self::key_slot(SysKey::Cube(c))] {
                participants.push(c);
            }
        }
        // A cube inside an active cross-cycle window was already advanced
        // through this cycle when its window armed: it stays in the
        // participant list (its replayed completions merge below in the same
        // cube-index order), but must not be ticked again.
        if pool.is_some() && participants.len() >= PARALLEL_BATCH_MIN {
            let mut jobs: Vec<VaultDrainJob<'_>> = Vec::with_capacity(participants.len());
            let mut next = participants.iter().peekable();
            for ((c, cube), scratch) in
                hmc.cubes.iter_mut().enumerate().zip(self.cube_scratch.iter_mut())
            {
                if next.peek() == Some(&&c) {
                    next.next();
                    if !self.run_ahead[c].active(now) {
                        jobs.push(VaultDrainJob { cube, scratch });
                    }
                }
            }
            run_shard_jobs(pool.as_deref_mut(), &mut jobs, |job| job.tick(now));
        } else {
            for &c in &participants {
                if self.run_ahead[c].active(now) {
                    continue;
                }
                VaultDrainJob { cube: &mut hmc.cubes[c], scratch: &mut self.cube_scratch[c] }
                    .tick(now);
            }
        }
        let mut vault_completions = std::mem::take(&mut self.completion_scratch);
        for &c in &participants {
            if self.run_ahead[c].active(now) {
                // Replay the run-ahead window's completions due this cycle:
                // they were popped at exactly this local cycle during the
                // run-ahead, so the merged stream is the one per-cycle
                // ticking would have produced.
                while let Some((at, resp)) = self.run_ahead[c].replay.pop_due(now) {
                    debug_assert_eq!(at, now, "a replayed completion missed its merge cycle");
                    vault_completions.push((c, resp));
                }
            } else {
                let scratch = &mut self.cube_scratch[c];
                vault_completions.extend(scratch.completions.drain(..).map(|resp| (c, resp)));
            }
            Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Cube(c));
        }
        self.cube_participants = participants;
        let mut are_outputs = std::mem::take(&mut self.are_scratch);
        for (c, resp) in vault_completions.drain(..) {
            match self.vault_purpose.remove(&resp.id) {
                Some(VaultPurpose::Normal { txn }) => {
                    if let Some(info) = self.mem_txns.get(&txn) {
                        let kind = if info.is_write {
                            PacketKind::WriteAck { req_id: txn, addr: resp.addr }
                        } else {
                            PacketKind::ReadResp { req_id: txn, addr: resp.addr }
                        };
                        let packet = Packet::new(
                            txn | (1 << 59),
                            NetNode::Cube(CubeId::new(c)),
                            NetNode::Host(info.port),
                            kind,
                            now,
                        );
                        hmc.network.inject(now, packet);
                        Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Network);
                    }
                }
                Some(VaultPurpose::AreRead { cube, access_id }) => {
                    let value = self.func_mem.get(&resp.addr.as_u64()).copied().unwrap_or(0.0);
                    let mut out = self.are_spare.pop().unwrap_or_default();
                    hmc.engines[cube].complete_vault_read_into(now, access_id, value, &mut out);
                    are_outputs.push((cube, out));
                    Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Engine(cube));
                }
                Some(VaultPurpose::AreWrite) | None => {}
            }
        }
        self.completion_scratch = vault_completions;
        self.apply_are_outputs(now, &mut are_outputs);
        self.are_scratch = are_outputs;

        let Backend::Hmc(hmc) = &mut self.backend else { return };
        let hmc = hmc.as_mut();

        // 3. Packets delivered at the host ports. Completions accumulate in
        // the reused host-output scratch (empty outside the drain phases), so
        // the steady-state port loop allocates nothing.
        let mut scratch = std::mem::take(&mut self.host_scratch);
        debug_assert!(scratch.is_empty(), "the host scratch must be drained between phases");
        for p in 0..self.cfg.network.host_ports {
            let port = PortId::new(p);
            if !hmc.network.has_delivery_at_host(port) {
                continue;
            }
            while let Some(packet) = hmc.network.pop_at_host(port) {
                match &packet.kind {
                    PacketKind::ReadResp { req_id, .. } | PacketKind::WriteAck { req_id, .. } => {
                        if let Some(txn) = self.mem_txns.remove(req_id) {
                            if txn.core != usize::MAX {
                                let done = now * ratio + txn.noc_return.max(1);
                                self.core_completions.push_at(done, (txn.core, txn.req_id));
                                // Re-arm a sleeping cluster for the delivery.
                                Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Cores);
                            }
                        }
                    }
                    PacketKind::Active(_) => {
                        if let Some(controller) = hmc.controller.as_mut() {
                            controller.handle_port_packet_into(now, port, &packet, &mut scratch);
                        }
                    }
                    _ => {}
                }
            }
        }
        for done in scratch.completions.drain(..) {
            self.func_mem.insert(done.target.as_u64(), done.value);
            self.gather_results.push((done.target, done.value));
            if !hub.is_empty() {
                hub.emit(&SimEvent::GatherCompleted {
                    network_cycle: now,
                    target: done.target,
                    value: done.value,
                });
            }
            let core_cycle = now * ratio;
            for thread in &done.threads {
                if thread.index() < self.cores.len() {
                    self.cores[thread.index()].complete_gather(done.target, core_cycle);
                    // The gather result unparks its waiting cores: re-open
                    // their gates and re-arm the sleeping cluster. A
                    // fire-and-forget gather can complete after its issuer
                    // already finished — a done core's gate stays closed.
                    if !self.cores[thread.index()].is_done() {
                        self.core_wake_at[thread.index()] = 0;
                        Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Cores);
                    }
                }
            }
            // Close the recycling loop: the thread list goes back to the
            // controller for the next gather barrier.
            if let Some(controller) = hmc.controller.as_mut() {
                controller.recycle_thread_list(done.threads);
            }
        }
        self.host_scratch = scratch;

        // With the cycle's observable effects committed, eligible cube
        // shards may now run ahead of the global clock under conservative
        // horizons. Event kernel only — the lock-step reference never runs
        // ahead — and never past an observer stop (an armed window would
        // leak work past the stop).
        if due.is_some() && self.cross_cycle && !hub.stopped() {
            self.try_arm_cross_cycle(now, pool);
        }
    }

    /// Attempts to open bounded-lag run-ahead windows on eligible cube
    /// shards.
    ///
    /// A cube is eligible when its engine is idle (an idle engine holds no
    /// outstanding operand reads, so the cube's pending work can only emit
    /// host-bound responses) and its next wake-up lies strictly below its
    /// *horizon*: the earliest cycle at which any other shard could still
    /// deliver an influence to it, folded from the per-shard-pair lookahead
    /// table and each shard's earliest possible emission. Eligible cubes are
    /// advanced event by event to their horizon on the worker pool (they own
    /// disjoint state), their popped responses parked in per-cube replay
    /// queues; the normal sub-phases then skip them until the global clock
    /// catches up, merging the replay entries at their exact cycles.
    ///
    /// Windows never overlap in time (`active_windows == 0` is an arming
    /// precondition) and arming is skipped entirely while packets are in
    /// flight — the interesting shadow (cores parked on vault-latency-bound
    /// accesses, network drained) has none, and it keeps the horizon fold to
    /// state every shard exposes in O(1). A failed attempt backs off for
    /// [`MIN_CROSS_CYCLE_WINDOW`] cycles so traffic-heavy regimes (where
    /// horizons stay tight for long stretches) don't pay the fold per cycle.
    fn try_arm_cross_cycle(&mut self, now: Cycle, pool: Option<&mut WorkerPool>) {
        if self.active_windows != 0 || now < self.arm_backoff_until {
            return;
        }
        let Some(lookahead) = &self.lookahead else { return };
        // Effective cycle limit: a window must not run past the last cycle
        // the kernel would process.
        let max_cycles = if self.cfg.max_cycles == 0 { u64::MAX } else { self.cfg.max_cycles };
        if now + MIN_CROSS_CYCLE_WINDOW >= max_cycles {
            return;
        }
        // Bail on in-flight traffic first — the common case in busy regimes,
        // and O(1) — before paying for the host-side wake fold.
        {
            let Backend::Hmc(hmc) = &self.backend else { return };
            if hmc.network.has_pending_delivery() {
                self.arm_backoff_until = now + MIN_CROSS_CYCLE_WINDOW;
                return;
            }
        }
        // The host side's earliest spontaneous activity (core ticks, pending
        // completion deliveries, planned drain-window submissions) — anything
        // it injects reaches cube `c` no earlier than `host_to_cube(c)`
        // later. Computed before the backend borrow below.
        let cores_wake = self.cores_next_wake(now);
        if let NextWake::At(at) = cores_wake {
            // Fast bail: if host activity reaches even the *closest* cube
            // before the minimum window, no cube's horizon can qualify —
            // skip the per-cube fold entirely. This is the common case
            // whenever the cores are actively computing or offloading.
            if at.saturating_add(lookahead.min_host_to_cube()) < now + MIN_CROSS_CYCLE_WINDOW {
                self.arm_backoff_until = now + MIN_CROSS_CYCLE_WINDOW;
                return;
            }
        }
        let Backend::Hmc(hmc) = &mut self.backend else { return };
        let hmc = hmc.as_mut();
        // Earliest in-flight arrival per cube (direct influence) and overall
        // (indirect influence: an arrival anywhere can be re-emitted, paying
        // at least one more hop — host ports are at least one hop from every
        // cube — before reaching another cube).
        let any_arrival = hmc.network.inflight_arrival_bounds(&mut self.arrival_scratch);
        let hop_latency = self.cfg.network.hop_latency;
        let cores_bound = match cores_wake {
            NextWake::At(at) => Some(at),
            NextWake::Idle => None,
        };
        // No idle engine means no candidate cube: skip the per-vault probe
        // pass entirely (the common state while ARE flows are live).
        if !hmc.engines.iter().any(|engine| engine.is_idle()) {
            self.arm_backoff_until = now + MIN_CROSS_CYCLE_WINDOW;
            return;
        }
        // One O(vaults) probe per cube up front — the pair fold below then
        // reads each cube's emission state in O(1).
        self.emit_scratch.clear();
        self.emit_scratch.extend((0..hmc.cubes.len()).map(|d| {
            (
                hmc.cubes[d].earliest_response_at(now),
                hmc.engines[d].is_idle(),
                hmc.engines[d].next_wake(now),
            )
        }));
        let mut armed = 0usize;
        for c in 0..hmc.cubes.len() {
            let (self_emit, engine_idle, _) = self.emit_scratch[c];
            if !engine_idle {
                continue;
            }
            let NextWake::At(first) = hmc.cubes[c].next_wake(now) else { continue };
            // Fold the horizon: the earliest cycle any influence could still
            // reach cube `c`.
            let mut horizon = Horizon::unbounded();
            horizon.cap(max_cycles);
            horizon.cap(self.arrival_scratch[c]);
            horizon.cap_event(any_arrival, hop_latency);
            horizon.cap_event(cores_bound, lookahead.host_to_cube(c));
            for (d, &(emit, idle, engine_wake)) in self.emit_scratch.iter().enumerate() {
                if d == c {
                    continue;
                }
                let Some(emit) = emit else {
                    // Nothing pending and an idle engine never wakes on its
                    // own; a busy engine with an empty cube still can.
                    match engine_wake {
                        NextWake::At(at) => {
                            horizon.cap(
                                at.saturating_add(
                                    lookahead
                                        .cube_to_cube(d, c)
                                        .min(lookahead.cube_to_host(d) + lookahead.host_to_cube(c)),
                                ),
                            );
                        }
                        NextWake::Idle => {}
                    }
                    continue;
                };
                let emit = match engine_wake {
                    // A busy engine can emit active packets straight to
                    // another cube when it next wakes.
                    NextWake::At(at) => emit.min(at),
                    NextWake::Idle => emit,
                };
                let reach = if idle {
                    // Idle engine: every emission is a host-bound vault
                    // response; the shortest way back to cube `c` bounces
                    // through a host port.
                    lookahead.cube_to_host(d) + lookahead.host_to_cube(c)
                } else {
                    lookahead
                        .cube_to_cube(d, c)
                        .min(lookahead.cube_to_host(d) + lookahead.host_to_cube(c))
                };
                horizon.cap(emit.saturating_add(reach));
            }
            // The cube's own emissions can come back at it through the host.
            if let Some(emit) = self_emit {
                horizon.cap(
                    emit.saturating_add(lookahead.cube_to_host(c) + lookahead.host_to_cube(c)),
                );
            }
            let horizon = horizon.cycle();
            if !(first > now && first < horizon) {
                continue;
            }
            if horizon < now + MIN_CROSS_CYCLE_WINDOW {
                continue;
            }
            self.window_candidates.push((c, horizon));
        }
        if self.window_candidates.is_empty() {
            self.arm_backoff_until = now + MIN_CROSS_CYCLE_WINDOW;
            return;
        }
        // Run the eligible cubes ahead — concurrently when a pool is
        // attached; the jobs own disjoint cube/window pairs.
        {
            let mut jobs: Vec<RunAheadJob<'_>> = Vec::with_capacity(self.window_candidates.len());
            let mut next = self.window_candidates.iter().peekable();
            for ((c, cube), window) in
                hmc.cubes.iter_mut().enumerate().zip(self.run_ahead.iter_mut())
            {
                if let Some(&&(cand, horizon)) = next.peek() {
                    if cand == c {
                        next.next();
                        jobs.push(RunAheadJob { cube, window, from: now, horizon });
                    }
                }
            }
            run_shard_jobs(pool, &mut jobs, |job| job.run());
        }
        // Commit in ascending cube order: count the windows that actually
        // advanced and re-arm their scheduler entries so the replay stamps
        // (and the post-window wake) are visited at their exact cycles.
        for &(c, _) in &self.window_candidates {
            if self.run_ahead[c].until == 0 {
                continue;
            }
            armed += 1;
            Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Cube(c));
        }
        self.window_candidates.clear();
        if armed == 0 {
            self.arm_backoff_until = now + MIN_CROSS_CYCLE_WINDOW;
        }
        self.active_windows += armed;
        self.cross_cycle_windows += armed as u64;
    }

    /// Applies collected engine outputs (network injections, operand vault
    /// accesses) in emission order, draining `outputs` and recycling the
    /// emptied accumulators through the spare pool.
    fn apply_are_outputs(&mut self, now: Cycle, outputs: &mut Vec<(usize, AreOutput)>) {
        for (cube, mut out) in outputs.drain(..) {
            self.apply_cube_output(now, cube, &mut out);
            self.are_spare.push(out);
        }
    }

    /// Applies one cube's engine output in emission order, draining its
    /// lists in place so the buffer keeps its capacity for reuse.
    fn apply_cube_output(&mut self, now: Cycle, cube: usize, out: &mut AreOutput) {
        let Backend::Hmc(hmc) = &mut self.backend else { return };
        let hmc = hmc.as_mut();
        for packet in out.packets.drain(..) {
            // Packets whose destination is the local cube are handled by
            // this cube's own engine next cycle via the network's
            // zero-hop delivery.
            hmc.network.inject(now, packet);
            Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Network);
        }
        for access in out.vault_accesses.drain(..) {
            let id = (1 << 62) | self.next_vault_id;
            self.next_vault_id += 1;
            let purpose = match access.write_value {
                Some(value) => {
                    self.func_mem.insert(access.addr.as_u64(), value);
                    VaultPurpose::AreWrite
                }
                None => VaultPurpose::AreRead { cube, access_id: access.id },
            };
            self.vault_purpose.insert(id, purpose);
            let req = if access.write_value.is_some() {
                VaultRequest::write(id, access.addr)
            } else {
                VaultRequest::read(id, access.addr)
            };
            let _ = hmc.cubes[cube].try_push(now, req);
            Self::stimulate(&mut self.armq, &mut self.arm_flags, SysKey::Cube(cube));
            self.hmc_bytes += 8;
        }
    }

    // ------------------------------------------------------------------
    // Bookkeeping
    // ------------------------------------------------------------------

    fn sample_ipc(&mut self, now: Cycle, ratio: u64, hub: &mut ObserverHub<'_>) {
        let core_cycle = now * ratio;
        if core_cycle == 0 || !core_cycle.is_multiple_of(IPC_WINDOW_CORE_CYCLES) {
            return;
        }
        // A sample boundary landing inside a fast-forwarded compute interval
        // splits it: the prefix up to the end of this network cycle's core
        // sub-cycles settles (matching the ticks the lock-step kernel has
        // executed by this point in its step), the remainder stays pending.
        // Parked cores need no settling here — a blocked core retires
        // nothing, so its instruction count is already exact.
        for core in &mut self.cores {
            core.settle_compute_to(core_cycle + ratio);
        }
        let total: u64 = self.cores.iter().map(Core::instructions_retired).sum();
        let delta = total - self.last_ipc_sample_insns;
        self.last_ipc_sample_insns = total;
        let ipc = delta as f64 / IPC_WINDOW_CORE_CYCLES as f64;
        self.ipc_series.push(core_cycle as f64, ipc);
        if !hub.is_empty() {
            hub.emit(&SimEvent::Sample(Sample {
                network_cycle: now,
                core_cycle,
                instructions: total,
                window_ipc: ipc,
            }));
        }
    }

    /// Whether the whole system is quiescent. O(1): the core cluster is
    /// covered by the done-core counter and the completion queue, the memory
    /// side by the cached busy-component counter maintained in `step`'s
    /// re-arm sweep (plus the already-O(1) network and controller checks).
    fn is_finished(&self) -> bool {
        let finished = self.cores_done == self.cores.len()
            && self.core_completions.is_empty()
            && match &self.backend {
                Backend::Dram(_) => self.busy_count == 0 && self.retry_dram.is_empty(),
                Backend::Hmc(hmc) => {
                    self.busy_count == 0
                        && hmc.network.is_quiescent()
                        && hmc
                            .controller
                            .as_ref()
                            .map(HostOffloadController::is_idle)
                            .unwrap_or(true)
                }
            };
        debug_assert_eq!(
            finished,
            self.is_finished_scan(),
            "the quiescence tracker diverged from the full component scan"
        );
        finished
    }

    /// The original full-scan quiescence check, kept as the debug-mode oracle
    /// for the counter-based [`System::is_finished`].
    fn is_finished_scan(&self) -> bool {
        if !self.cores.iter().all(Core::is_done) {
            return false;
        }
        if !self.core_completions.is_empty() {
            return false;
        }
        match &self.backend {
            Backend::Dram(dram) => dram.is_idle() && self.retry_dram.is_empty(),
            Backend::Hmc(hmc) => {
                hmc.network.is_quiescent()
                    && hmc.cubes.iter().all(HmcCube::is_idle)
                    && hmc.engines.iter().all(ActiveRoutingEngine::is_idle)
                    && hmc.controller.as_ref().map(HostOffloadController::is_idle).unwrap_or(true)
                    && self.run_ahead.iter().all(|w| w.replay.is_empty())
            }
        }
    }

    /// Number of cores currently inside a pending fast-forwarded interval
    /// (crate-internal: the arming probe the kernel tests use, since the
    /// whole point of fast-forwarding is that reports cannot tell).
    #[cfg(test)]
    fn cores_fast_forwarding(&self) -> usize {
        self.cores.iter().filter(|c| c.fast_forward_until().is_some()).count()
    }

    /// Number of offload-drain windows planned so far. A diagnostic: the
    /// whole point of the planner is that reports cannot tell a planned
    /// window from per-cycle ticking, so the only observable trace is this
    /// counter (the kernel tests and the bench harness read it).
    pub fn drain_windows(&self) -> u64 {
        self.drain_windows
    }

    /// Number of cross-cycle run-ahead windows armed so far. A diagnostic
    /// with the same contract as [`System::drain_windows`]: reports cannot
    /// tell bounded-lag execution from per-cycle ticking, so this counter is
    /// the only observable trace (the kernel tests and the bench harness
    /// read it).
    pub fn cross_cycle_windows(&self) -> u64 {
        self.cross_cycle_windows
    }

    fn into_report(self, network_cycles: u64, completed: bool) -> SimReport {
        let ratio = self.cfg.core_cycles_per_network_cycle();
        let cache = self.caches.stats();
        let mut stalls = StallSummary::default();
        let mut instructions = 0;
        let mut updates_offloaded = 0;
        let mut gathers_offloaded = 0;
        // Parked cores were settled by `run_with` before this is called, so
        // the per-core stall counters already reflect every processed cycle.
        for core in &self.cores {
            let s = core.stalls();
            stalls.memory += s.memory;
            stalls.gather += s.gather;
            stalls.barrier += s.barrier;
            stalls.offload += s.offload;
            stalls.rob_full += s.rob_full;
            instructions += core.instructions_retired();
            updates_offloaded += core.updates_offloaded();
            gathers_offloaded += core.gathers_offloaded();
        }

        let mut report = SimReport {
            workload: self.workload,
            config_label: self.label,
            network_cycles,
            core_cycles: network_cycles * ratio,
            instructions,
            completed,
            stalls,
            l1_accesses: cache.l1_accesses,
            l1_hits: cache.l1_hits,
            l2_accesses: cache.l2_accesses,
            l2_hits: cache.l2_hits,
            invalidations: cache.invalidations + cache.back_invalidations,
            updates_offloaded,
            gathers_offloaded,
            noc_byte_hops: self.noc.byte_hops(),
            gather_results: self.gather_results,
            ipc_series: {
                // Drop the sampler's up-front reservation (sized for the
                // worst-case window count) before the series is retained in
                // the report.
                let mut series = self.ipc_series;
                series.shrink_to_fit();
                series
            },
            network_clock_ghz: self.cfg.network.clock_ghz,
            ..SimReport::default()
        };

        match self.backend {
            Backend::Dram(dram) => {
                report.dram_bytes = dram.bytes();
                report.data_movement = DataMovement {
                    norm_req_bytes: dram.accesses() * 16,
                    norm_resp_bytes: dram.bytes(),
                    active_req_bytes: 0,
                    active_resp_bytes: 0,
                };
            }
            Backend::Hmc(hmc) => {
                let net = hmc.network.stats();
                report.hmc_bytes = self.hmc_bytes;
                report.network_byte_hops = net.bit_hops / 8;
                report.data_movement = DataMovement {
                    norm_req_bytes: net.norm_req_bytes,
                    norm_resp_bytes: net.norm_resp_bytes,
                    active_req_bytes: net.active_req_bytes,
                    active_resp_bytes: net.active_resp_bytes,
                };
                let mut activity = CubeActivity::default();
                let mut samples = 0u64;
                let mut req_sum = 0u64;
                let mut stall_sum = 0u64;
                let mut resp_sum = 0u64;
                let mut are_ops = 0u64;
                for engine in &hmc.engines {
                    let s = engine.stats();
                    activity.updates_computed.push(s.updates_computed);
                    activity.operands_served.push(s.operands_served);
                    activity.operand_buffer_stalls.push(s.operand_buffer_stall_cycles);
                    samples += s.latency_samples;
                    req_sum += s.request_latency_sum;
                    stall_sum += s.stall_latency_sum;
                    resp_sum += s.response_latency_sum;
                    are_ops += s.alu_ops;
                }
                report.are_ops = are_ops;
                report.cube_activity = activity;
                if samples > 0 {
                    report.update_latency = LatencyBreakdown {
                        request: req_sum as f64 / samples as f64,
                        stall: stall_sum as f64 / samples as f64,
                        response: resp_sum as f64 / samples as f64,
                    };
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::ThreadId;

    /// A system whose cores each run one huge compute block.
    fn compute_block_system() -> System {
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 1_000_000;
        let streams = (0..cfg.cores.count)
            .map(|t| {
                let mut s = WorkStream::new(ThreadId::new(t));
                s.push(WorkItem::Compute(100_000));
                s
            })
            .collect();
        System::new(cfg, streams, Vec::new()).expect("valid configuration")
    }

    /// Drives `steps` cycles through `System::step` the way `run_with` does,
    /// in event (`Some(due)`) or lock-step (`None`) mode.
    fn drive_steps(sys: &mut System, event: bool, steps: u64) {
        let shard_count = SysKey::FIXED_SHARDS + System::backend_cube_count(&sys.backend);
        let mut sched: ShardedScheduler<SysKey> = ShardedScheduler::new(shard_count, SysKey::shard);
        sched.wake(SysKey::Cores);
        sched.schedule(sys.next_ipc_boundary(0), SysKey::Ipc);
        let mut due: Vec<SysKey> = Vec::new();
        let mut hub = ObserverHub::new(&mut []);
        for now in 0..steps {
            sched.pop_due_into(now, &mut due);
            sys.step(now, event.then_some(&due[..]), &mut sched, &mut hub, None);
        }
    }

    /// The arming probe: reports are byte-identical with and without
    /// fast-forwarding (that is the whole contract), so this is the one
    /// place that verifies the event kernel's cores phase really arms
    /// intervals on compute blocks — and that the lock-step reference and
    /// the disabled knob never do.
    #[test]
    fn event_kernel_arms_fast_forward_on_compute_blocks() {
        let mut sys = compute_block_system();
        drive_steps(&mut sys, true, 4);
        assert_eq!(
            sys.cores_fast_forwarding(),
            sys.cores.len(),
            "every compute-block core must be inside a fast-forwarded interval"
        );

        let mut lockstep = compute_block_system();
        drive_steps(&mut lockstep, false, 4);
        assert_eq!(lockstep.cores_fast_forwarding(), 0, "the per-cycle oracle must never arm");

        let mut disabled = compute_block_system().with_fast_forward(false);
        drive_steps(&mut disabled, true, 4);
        assert_eq!(disabled.cores_fast_forwarding(), 0, "the knob must gate arming");
    }

    /// With every core fast-forwarding, the cluster must sleep until the
    /// earliest interval end instead of re-arming every network cycle.
    #[test]
    fn fast_forwarding_cluster_sleeps_until_the_interval_end() {
        let mut sys = compute_block_system();
        drive_steps(&mut sys, true, 4);
        let until = sys.cores[0].fast_forward_until().expect("armed");
        let ratio = sys.cfg.core_cycles_per_network_cycle();
        match sys.cores_next_wake(3) {
            NextWake::At(at) => {
                assert_eq!(at, until / ratio, "cluster must wake at the interval end")
            }
            NextWake::Idle => panic!("a fast-forwarding cluster still has scheduled work"),
        }
    }

    /// A system whose cores each issue a long run of `Update` offloads — the
    /// MI-full drain regime of the offload-drain fast-forward.
    fn offload_run_system() -> System {
        let mut cfg = SystemConfig::small().with_scheme(ar_types::config::OffloadScheme::ArfTid);
        cfg.max_cycles = 1_000_000;
        let streams = (0..cfg.cores.count)
            .map(|t| {
                let mut s = WorkStream::new(ThreadId::new(t));
                for i in 0..2_000u64 {
                    s.push(WorkItem::Update {
                        op: ar_types::ReduceOp::Sum,
                        src1: Addr::new(0x10_0000 + (t as u64 * 2_000 + i) * 8),
                        src2: None,
                        imm: None,
                        target: Addr::new(0x80_0000 + t as u64 * 64),
                    });
                }
                s.push(WorkItem::Gather {
                    target: Addr::new(0x80_0000 + t as u64 * 64),
                    op: ar_types::ReduceOp::Sum,
                    num_threads: 1,
                    wait: true,
                });
                s
            })
            .collect();
        System::new(cfg, streams, Vec::new()).expect("valid configuration")
    }

    /// The drain-window arming probe: reports are byte-identical with and
    /// without the window planner (the equivalence suite owns that axis), so
    /// this is the one place that verifies the event kernel really plans
    /// windows in the offload regime — and that the lock-step reference and
    /// the disabled knob never do.
    #[test]
    fn event_kernel_plans_drain_windows_on_offload_runs() {
        let mut sys = offload_run_system();
        drive_steps(&mut sys, true, 64);
        assert!(sys.drain_windows() > 0, "the offload regime must arm a drain window");

        let mut lockstep = offload_run_system();
        drive_steps(&mut lockstep, false, 64);
        assert_eq!(lockstep.drain_windows(), 0, "the per-cycle oracle must never plan");

        let mut disabled = offload_run_system().with_drain_fast_forward(false);
        drive_steps(&mut disabled, true, 64);
        assert_eq!(disabled.drain_windows(), 0, "the knob must gate planning");
    }

    /// Inside a planned window the cluster must wake only at the planned
    /// submission cycles, never every network cycle.
    #[test]
    fn drain_window_cluster_wakes_at_planned_submissions_only() {
        let mut sys = offload_run_system();
        let mut steps = 0;
        while sys.drain_windows() == 0 {
            drive_steps(&mut sys, true, steps + 1);
            steps += 1;
            assert!(steps < 64, "offload regime must arm within a few cycles");
            if sys.drain_windows() > 0 {
                break;
            }
            sys = offload_run_system();
        }
        assert!(sys.drain_until > 0);
        let now = sys.drain_until - 1;
        match sys.cores_next_wake(now.saturating_sub(1)) {
            NextWake::At(at) => {
                let front = sys.drain_outbox.front().map_or(sys.drain_until, |inj| inj.cycle);
                assert_eq!(at, front.max(now), "cluster must wake at the next planned submission");
            }
            NextWake::Idle => panic!("a window-covered cluster still has scheduled submissions"),
        }
    }

    /// End-to-end: the offload-regime run finishes with the identical report
    /// whether the drain schedule is planned or ticked, and the planner
    /// actually covers a substantial share of the run.
    #[test]
    fn planned_and_ticked_offload_runs_report_identically() {
        let planned = offload_run_system().run();
        let ticked = offload_run_system().with_drain_fast_forward(false).run();
        let lockstep = offload_run_system().run_lockstep();
        assert_eq!(planned, ticked, "drain planning must not change the report");
        assert_eq!(planned, lockstep, "the event kernel must match the per-cycle oracle");
        assert!(planned.completed);
        assert_eq!(planned.updates_offloaded, 4 * 2_000);
    }

    /// A system whose cores all park on cache-missing loads: once the
    /// requests reach the cubes, the network drains and the vaults grind
    /// through their access latency with nothing else in flight — the
    /// latency shadow bounded-lag cross-cycle execution exploits.
    fn vault_shadow_system() -> System {
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 1_000_000;
        let streams = (0..cfg.cores.count)
            .map(|t| {
                let mut s = WorkStream::new(ThreadId::new(t));
                for i in 0..64u64 {
                    s.push(WorkItem::Load(Addr::new(0x40_0000 + (t as u64 * 64 + i) * 4096)));
                }
                s
            })
            .collect();
        System::new(cfg, streams, Vec::new()).expect("valid configuration")
    }

    /// The cross-cycle arming probe: reports are byte-identical with and
    /// without bounded-lag execution (the equivalence suite owns that axis),
    /// so this is the one place that verifies the event kernel really opens
    /// run-ahead windows in a vault-latency shadow — and that the lock-step
    /// reference and the disabled knob never do.
    #[test]
    fn event_kernel_arms_cross_cycle_windows_in_vault_shadows() {
        // 2000 cycles spans many load/shadow rounds even with the arming
        // backoff skipping probe cycles.
        let mut sys = vault_shadow_system();
        drive_steps(&mut sys, true, 2_000);
        assert!(
            sys.cross_cycle_windows() > 0,
            "a vault-latency shadow must open a cross-cycle window"
        );

        let mut lockstep = vault_shadow_system();
        drive_steps(&mut lockstep, false, 2_000);
        assert_eq!(lockstep.cross_cycle_windows(), 0, "the per-cycle oracle must never run ahead");

        let mut disabled = vault_shadow_system().with_cross_cycle(false);
        drive_steps(&mut disabled, true, 2_000);
        assert_eq!(disabled.cross_cycle_windows(), 0, "the knob must gate arming");
    }

    /// A cube inside a run-ahead window must wake only at its replay stamps
    /// (each completion merges at its exact cycle), never at the calendar
    /// events its window already consumed.
    #[test]
    fn window_cube_wakes_at_replay_stamps_only() {
        let mut sys = vault_shadow_system();
        let shard_count = SysKey::FIXED_SHARDS + System::backend_cube_count(&sys.backend);
        let mut sched: ShardedScheduler<SysKey> = ShardedScheduler::new(shard_count, SysKey::shard);
        sched.wake(SysKey::Cores);
        sched.schedule(sys.next_ipc_boundary(0), SysKey::Ipc);
        let mut due: Vec<SysKey> = Vec::new();
        let mut hub = ObserverHub::new(&mut []);
        // Step until the first window with a still-pending replay entry.
        let mut caught = None;
        for now in 0..2_000u64 {
            sched.pop_due_into(now, &mut due);
            sys.step(now, Some(&due[..]), &mut sched, &mut hub, None);
            if sys.run_ahead.iter().any(|w| w.until != 0 && !w.replay.is_empty()) {
                caught = Some(now);
                break;
            }
        }
        let now = caught.expect("the vault shadow must open a window with pending replays");
        let (c, window) = sys
            .run_ahead
            .iter()
            .enumerate()
            .find(|(_, w)| w.until != 0 && !w.replay.is_empty())
            .expect("just observed above");
        let stamp = window.replay.next_at().expect("non-empty replay");
        assert!(window.active(now));
        assert!(stamp > now, "replay stamps always lie ahead of the arming cycle");
        // The scheduled wake must be the stamp itself, not any earlier
        // (already-consumed) cube calendar event.
        match sys.next_wake_of(now, SysKey::Cube(c)) {
            NextWake::At(at) => assert_eq!(at, stamp, "window cube must wake at its replay stamp"),
            NextWake::Idle => panic!("a window with replay entries still has scheduled work"),
        }
    }

    /// End-to-end: the load-heavy run finishes with the identical report
    /// whether cube shards run ahead or tick per cycle, against both the
    /// cross-cycle-off event kernel and the lock-step oracle.
    #[test]
    fn cross_cycle_and_per_cycle_runs_report_identically() {
        let ahead = vault_shadow_system().run();
        let ticked = vault_shadow_system().with_cross_cycle(false).run();
        let lockstep = vault_shadow_system().run_lockstep();
        assert_eq!(ahead, ticked, "bounded-lag execution must not change the report");
        assert_eq!(ahead, lockstep, "the event kernel must match the per-cycle oracle");
        assert!(ahead.completed);
    }
}
