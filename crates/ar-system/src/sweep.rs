//! Parallel experiment sweeps over a configs × workloads × sizes matrix.
//!
//! A [`Sweep`] fans the cross product out onto `std::thread` workers (the
//! simulator itself stays single-threaded and deterministic per run) and
//! returns the reports in a deterministic order — workload-major, then
//! configuration, then size — that is byte-identical to running the same
//! points serially. This is the engine behind the `ar-experiments` figure
//! matrix and the `--json` CLI output.
//!
//! # Example
//!
//! ```
//! use ar_system::Sweep;
//! use ar_types::config::{NamedConfig, SystemConfig};
//! use ar_workloads::{SizeClass, WorkloadKind};
//!
//! let mut cfg = SystemConfig::small();
//! cfg.max_cycles = 2_000_000;
//! let results = Sweep::new(cfg)
//!     .configs([NamedConfig::Hmc, NamedConfig::ArfTid])
//!     .workloads([WorkloadKind::Reduce, WorkloadKind::Mac])
//!     .size(SizeClass::Tiny)
//!     .threads(2)
//!     .run()
//!     .expect("valid sweep");
//! assert_eq!(results.len(), 4);
//! let hmc = results.report("reduce", NamedConfig::Hmc, SizeClass::Tiny).unwrap();
//! let arf = results.report("reduce", NamedConfig::ArfTid, SizeClass::Tiny).unwrap();
//! assert!(arf.completed && hmc.completed);
//! ```

use crate::builder::Simulation;
use crate::report::SimReport;
use ar_types::config::{NamedConfig, SystemConfig};
use ar_types::error::ConfigError;
use ar_workloads::{SizeClass, Workload, WorkloadKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One completed sweep point.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Workload name of this point.
    pub workload: String,
    /// Named configuration of this point.
    pub config: NamedConfig,
    /// Size class of this point.
    pub size: SizeClass,
    /// The simulation report.
    pub report: SimReport,
}

/// The results of a sweep, in deterministic workload-major order
/// (`for workload { for config { for size { .. } } }`), independent of the
/// worker-thread count.
#[derive(Debug, Clone, Default)]
pub struct SweepResults {
    /// The completed points, in sweep order.
    pub cells: Vec<SweepCell>,
}

impl SweepResults {
    /// Number of completed points.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns true for an empty sweep.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The report of one `(workload, config, size)` point, if it was swept.
    pub fn report(
        &self,
        workload: &str,
        config: NamedConfig,
        size: SizeClass,
    ) -> Option<&SimReport> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.config == config && c.size == size)
            .map(|c| &c.report)
    }

    /// Iterates over the reports in sweep order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.cells.iter().map(|c| &c.report)
    }
}

/// A configs × workloads × sizes sweep driver. See the [module docs](self).
pub struct Sweep {
    base: SystemConfig,
    configs: Vec<NamedConfig>,
    workloads: Vec<Arc<dyn Workload>>,
    sizes: Vec<SizeClass>,
    threads: usize,
}

impl Sweep {
    /// Creates a sweep over the given base configuration with empty axes and
    /// one worker thread.
    pub fn new(base: SystemConfig) -> Self {
        Sweep { base, configs: Vec::new(), workloads: Vec::new(), sizes: Vec::new(), threads: 1 }
    }

    /// Appends named configurations to the config axis.
    #[must_use]
    pub fn configs(mut self, configs: impl IntoIterator<Item = NamedConfig>) -> Self {
        self.configs.extend(configs);
        self
    }

    /// Appends one named configuration.
    #[must_use]
    pub fn config(mut self, config: NamedConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Appends built-in workloads to the workload axis.
    #[must_use]
    pub fn workloads(mut self, kinds: impl IntoIterator<Item = WorkloadKind>) -> Self {
        for kind in kinds {
            self.workloads.push(Arc::new(kind));
        }
        self
    }

    /// Appends one workload (built-in or custom).
    #[must_use]
    pub fn workload(mut self, workload: impl Workload + 'static) -> Self {
        self.workloads.push(Arc::new(workload));
        self
    }

    /// Appends one already-shared workload handle (e.g. from a
    /// [`ar_workloads::WorkloadRegistry`]).
    #[must_use]
    pub fn workload_arc(mut self, workload: Arc<dyn Workload>) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Appends size classes to the size axis.
    #[must_use]
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = SizeClass>) -> Self {
        self.sizes.extend(sizes);
        self
    }

    /// Appends one size class.
    #[must_use]
    pub fn size(mut self, size: SizeClass) -> Self {
        self.sizes.push(size);
        self
    }

    /// Sets the worker-thread count. `1` (the default) runs serially on the
    /// calling thread; `0` uses the machine's available parallelism. The
    /// results are identical for every thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of points the sweep will run.
    pub fn point_count(&self) -> usize {
        self.configs.len() * self.workloads.len() * self.sizes.len()
    }

    /// Runs every point and returns the reports in sweep order.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when an axis is empty or the base
    /// configuration is inconsistent under one of the named overlays — both
    /// checked before any simulation starts. Building an individual point
    /// can still fail mid-sweep (e.g. a custom [`Workload`] whose streams
    /// offload under a non-offloading configuration); the sweep then stops
    /// claiming new points, finishes only the points already in flight, and
    /// returns the first error in sweep order.
    pub fn run(&self) -> Result<SweepResults, ConfigError> {
        if self.configs.is_empty() || self.workloads.is_empty() || self.sizes.is_empty() {
            return Err(ConfigError::new(
                "a sweep needs at least one config, one workload and one size",
            ));
        }
        for &config in &self.configs {
            self.base.clone().named(config).validate()?;
        }

        // The job list in deterministic sweep order; workers claim jobs by
        // index and write results back by index, so the output order never
        // depends on scheduling.
        let jobs: Vec<(Arc<dyn Workload>, NamedConfig, SizeClass)> = self
            .workloads
            .iter()
            .flat_map(|w| {
                self.configs
                    .iter()
                    .flat_map(move |&c| self.sizes.iter().map(move |&s| (w.clone(), c, s)))
            })
            .collect();

        let workers = match self.threads {
            0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
            n => n,
        }
        .min(jobs.len())
        .max(1);

        let run_job = |(workload, config, size): &(Arc<dyn Workload>, NamedConfig, SizeClass)| {
            let report = Simulation::builder()
                .config(self.base.clone())
                .named(*config)
                .workload_arc(workload.clone())
                .size(*size)
                .build()?
                .run();
            Ok::<SweepCell, ConfigError>(SweepCell {
                workload: report.workload.clone(),
                config: *config,
                size: *size,
                report,
            })
        };

        let mut cells: Vec<SweepCell> = Vec::with_capacity(jobs.len());
        if workers == 1 {
            for job in &jobs {
                cells.push(run_job(job)?);
            }
        } else {
            let next = AtomicUsize::new(0);
            let failed = std::sync::atomic::AtomicBool::new(false);
            let slots: Vec<Mutex<Option<Result<SweepCell, ConfigError>>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        // Stop claiming new points once any worker hit an
                        // error; in-flight points still finish.
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let result = run_job(job);
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    });
                }
            });
            for slot in slots {
                // Unfilled slots only exist after a failure cut the sweep
                // short; the error surfaces from an earlier filled slot (the
                // first in sweep order once cells are collected below) or,
                // for claimed-but-skipped points, from the flag.
                match slot.into_inner().expect("result slot poisoned") {
                    Some(result) => cells.push(result?),
                    None => {
                        debug_assert!(failed.load(Ordering::Relaxed));
                        break;
                    }
                }
            }
        }
        Ok(SweepResults { cells })
    }
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("configs", &self.configs)
            .field("workloads", &self.workloads.iter().map(|w| w.name()).collect::<Vec<_>>())
            .field("sizes", &self.sizes)
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 2_000_000;
        cfg
    }

    #[test]
    fn empty_axes_are_rejected_before_running() {
        assert!(Sweep::new(small_cfg()).run().is_err());
        assert!(Sweep::new(small_cfg()).config(NamedConfig::Hmc).run().is_err());
        let sweep =
            Sweep::new(small_cfg()).config(NamedConfig::Hmc).workloads([WorkloadKind::Reduce]);
        assert!(sweep.run().is_err(), "missing size axis");
        assert_eq!(sweep.point_count(), 0);
    }

    #[test]
    fn results_are_ordered_workload_major() {
        let results = Sweep::new(small_cfg())
            .configs([NamedConfig::Hmc, NamedConfig::ArfTid])
            .workloads([WorkloadKind::Reduce, WorkloadKind::Mac])
            .size(SizeClass::Tiny)
            .run()
            .expect("valid sweep");
        let order: Vec<(String, NamedConfig)> =
            results.cells.iter().map(|c| (c.workload.clone(), c.config)).collect();
        assert_eq!(
            order,
            vec![
                ("reduce".to_string(), NamedConfig::Hmc),
                ("reduce".to_string(), NamedConfig::ArfTid),
                ("mac".to_string(), NamedConfig::Hmc),
                ("mac".to_string(), NamedConfig::ArfTid),
            ]
        );
        assert!(results.report("mac", NamedConfig::ArfTid, SizeClass::Tiny).is_some());
        assert!(results.report("mac", NamedConfig::Dram, SizeClass::Tiny).is_none());
        assert_eq!(results.reports().count(), 4);
    }

    #[test]
    fn parallel_and_serial_sweeps_are_identical() {
        let make = |threads| {
            Sweep::new(small_cfg())
                .configs([NamedConfig::Hmc, NamedConfig::ArfTid, NamedConfig::ArfAddr])
                .workloads([WorkloadKind::Reduce, WorkloadKind::Mac])
                .size(SizeClass::Tiny)
                .threads(threads)
        };
        let serial = make(1).run().expect("serial run");
        for threads in [2, 3, 8] {
            let parallel = make(threads).run().expect("parallel run");
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.cells.iter().zip(&serial.cells) {
                assert_eq!(a.workload, b.workload);
                assert_eq!(a.config, b.config);
                assert_eq!(a.report, b.report, "{}/{}", a.workload, a.config);
            }
        }
    }

    #[test]
    fn invalid_named_overlay_fails_fast() {
        let mut cfg = small_cfg();
        cfg.network.groups = 3; // cubes=4 not divisible by 3
        let err = Sweep::new(cfg)
            .config(NamedConfig::Hmc)
            .workloads([WorkloadKind::Reduce])
            .size(SizeClass::Tiny)
            .run();
        assert!(err.is_err());
    }
}
