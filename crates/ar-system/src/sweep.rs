//! Parallel experiment sweeps over a configs × workloads × sizes matrix.
//!
//! A [`Sweep`] fans the cross product out onto `std::thread` workers (the
//! simulator itself stays single-threaded and deterministic per run) and
//! returns the reports in a deterministic order — workload-major, then
//! configuration, then size — that is byte-identical to running the same
//! points serially. This is the engine behind the `ar-experiments` figure
//! matrix and the `--json` CLI output.
//!
//! # Example
//!
//! ```
//! use ar_system::Sweep;
//! use ar_types::config::{NamedConfig, SystemConfig};
//! use ar_workloads::{SizeClass, WorkloadKind};
//!
//! let mut cfg = SystemConfig::small();
//! cfg.max_cycles = 2_000_000;
//! let results = Sweep::new(cfg)
//!     .configs([NamedConfig::Hmc, NamedConfig::ArfTid])
//!     .workloads([WorkloadKind::Reduce, WorkloadKind::Mac])
//!     .size(SizeClass::Tiny)
//!     .threads(2)
//!     .run()
//!     .expect("valid sweep");
//! assert_eq!(results.len(), 4);
//! let hmc = results.report("reduce", NamedConfig::Hmc, SizeClass::Tiny).unwrap();
//! let arf = results.report("reduce", NamedConfig::ArfTid, SizeClass::Tiny).unwrap();
//! assert!(arf.completed && hmc.completed);
//! ```

use crate::builder::{Simulation, SimulationBuilder};
use crate::report::SimReport;
use ar_types::config::{NamedConfig, SystemConfig};
use ar_types::error::ConfigError;
use ar_types::json::{Json, JsonError};
use ar_workloads::{SizeClass, Workload, WorkloadKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Version stamp of the cached-report key schema.
///
/// Every [`CellKey::cache_key`] document embeds this constant, so bumping it
/// orphans (invalidates) every existing sweep-server cache entry at once.
/// Bump it whenever the *semantics* of a [`SimReport`] change without the
/// inputs changing — a counter means something new, a timing-model fix alters
/// results for identical configurations, a field is added or removed — i.e.
/// whenever the golden-report corpus under `tests/fixtures/` has to be
/// regenerated. Configuration and workload changes never need a bump: they
/// are part of the key itself.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Execution knobs of one sweep cell.
///
/// The kernel knobs (threads, the fast-forward modes, cross-cycle
/// execution) place wall-clock work without affecting the [`SimReport`] —
/// the equivalence suite pins byte-identical reports across every thread
/// count and every knob setting — so they are deliberately *excluded* from
/// [`CellKey::cache_key`]: a report computed at `threads = 4` is a sound
/// cache hit for a later `threads = 1` request. `cycle_limit` truncates the
/// simulation and therefore *is* part of the key (folded into the effective
/// configuration's `max_cycles`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellKnobs {
    /// Sharded-kernel thread count
    /// ([`SimulationBuilder::threads`]; `0` = available parallelism).
    pub threads: usize,
    /// Forces bulk compute fast-forwarding on or off; `None` keeps the
    /// builder's automatic decision ([`SimulationBuilder::fast_forward`]).
    pub fast_forward: Option<bool>,
    /// Forces offload-drain fast-forwarding on or off; `None` keeps the
    /// builder's automatic decision
    /// ([`SimulationBuilder::drain_fast_forward`]).
    pub drain_fast_forward: Option<bool>,
    /// Forces bounded-lag cross-cycle execution on or off; `None` keeps the
    /// builder's default (enabled; [`SimulationBuilder::cross_cycle`]).
    pub cross_cycle: Option<bool>,
    /// Overrides the base configuration's `max_cycles` when set.
    pub cycle_limit: Option<u64>,
}

impl Default for CellKnobs {
    /// The builder's own defaults: serial kernel, automatic fast-forward
    /// decisions, cross-cycle execution enabled, the base configuration's
    /// cycle limit.
    fn default() -> Self {
        CellKnobs {
            threads: 1,
            fast_forward: None,
            drain_fast_forward: None,
            cross_cycle: None,
            cycle_limit: None,
        }
    }
}

/// The identity of one sweep cell: which workload, under which named
/// configuration, at which size, with which [`CellKnobs`].
///
/// This is the unit the sweep server schedules and caches by. The workload
/// travels as its registry *name* (resolved against an
/// [`ar_workloads::WorkloadRegistry`] on the executing side) so a cell key
/// can cross a process boundary; [`CellKey::to_json`] / [`CellKey::from_json`]
/// are the wire encoding and [`CellKey::cache_key`] the canonical
/// content-address document.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Workload name, as returned by [`Workload::name`].
    pub workload: String,
    /// Named configuration of the cell.
    pub config: NamedConfig,
    /// Problem-size class of the cell.
    pub size: SizeClass,
    /// Execution knobs.
    pub knobs: CellKnobs,
}

impl CellKey {
    /// A cell key with default knobs.
    pub fn new(workload: impl Into<String>, config: NamedConfig, size: SizeClass) -> Self {
        CellKey { workload: workload.into(), config, size, knobs: CellKnobs::default() }
    }

    /// Returns a copy with the given knobs.
    #[must_use]
    pub fn with_knobs(mut self, knobs: CellKnobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// A short human-readable label (`workload/config/size`).
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.workload, self.config, self.size)
    }

    /// The [`SimulationBuilder`] for this cell over a base configuration:
    /// named overlay, size, and every knob applied. Callers attach observers
    /// and `build()` — both [`Sweep::run`] and the sweep server execute
    /// cells through here, so a cached report and a fresh run share one
    /// construction path.
    pub fn configure(&self, base: &SystemConfig, workload: Arc<dyn Workload>) -> SimulationBuilder {
        let mut cfg = base.clone();
        if let Some(limit) = self.knobs.cycle_limit {
            cfg.max_cycles = limit;
        }
        let mut builder = Simulation::builder()
            .config(cfg)
            .named(self.config)
            .workload_arc(workload)
            .size(self.size)
            .threads(self.knobs.threads);
        if let Some(ff) = self.knobs.fast_forward {
            builder = builder.fast_forward(ff);
        }
        if let Some(dff) = self.knobs.drain_fast_forward {
            builder = builder.drain_fast_forward(dff);
        }
        if let Some(cc) = self.knobs.cross_cycle {
            builder = builder.cross_cycle(cc);
        }
        builder
    }

    /// The canonical cache-key document of this cell over a base
    /// configuration: `{schema, workload, size, config, base}` where `base`
    /// is the *effective* configuration — named overlay applied and
    /// `cycle_limit` folded into `max_cycles`, so the same effective limit
    /// expressed either way produces the same key. Report-neutral knobs
    /// (threads, fast-forward modes) are excluded; see [`CellKnobs`].
    ///
    /// Content-hash this document ([`Json::content_hash`]) to get the cache
    /// address of the cell's report.
    pub fn cache_key(&self, base: &SystemConfig) -> Json {
        let mut effective = base.clone().named(self.config);
        if let Some(limit) = self.knobs.cycle_limit {
            effective.max_cycles = limit;
        }
        Json::obj([
            ("schema", Json::from(CACHE_SCHEMA_VERSION)),
            ("workload", Json::from(self.workload.clone())),
            ("size", Json::from(self.size.to_string())),
            ("config", Json::from(self.config.to_string())),
            ("base", effective.to_json()),
        ])
    }

    /// The content hash of [`CellKey::cache_key`] — the cell's cache address
    /// under the given base configuration.
    pub fn cache_hash(&self, base: &SystemConfig) -> u64 {
        self.cache_key(base).content_hash()
    }

    /// Encodes the cell key (including knobs) for the wire.
    pub fn to_json(&self) -> Json {
        let opt_bool = |v: Option<bool>| v.map(Json::from).unwrap_or(Json::Null);
        Json::obj([
            ("workload", Json::from(self.workload.clone())),
            ("config", Json::from(self.config.to_string())),
            ("size", Json::from(self.size.to_string())),
            ("threads", Json::from(self.knobs.threads)),
            ("fast_forward", opt_bool(self.knobs.fast_forward)),
            ("drain_fast_forward", opt_bool(self.knobs.drain_fast_forward)),
            ("cross_cycle", opt_bool(self.knobs.cross_cycle)),
            ("cycle_limit", self.knobs.cycle_limit.map(Json::from).unwrap_or(Json::Null)),
        ])
    }

    /// Decodes a [`CellKey::to_json`] document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when a field is missing, mistyped, or names
    /// an unknown configuration or size class.
    pub fn from_json(doc: &Json) -> Result<CellKey, JsonError> {
        fn bad(what: &str) -> JsonError {
            JsonError { message: format!("missing or mistyped cell field {what:?}"), offset: 0 }
        }
        let workload =
            doc.get("workload").and_then(Json::as_str).ok_or_else(|| bad("workload"))?.to_string();
        let config = doc
            .get("config")
            .and_then(Json::as_str)
            .and_then(NamedConfig::parse)
            .ok_or_else(|| bad("config"))?;
        let size = doc
            .get("size")
            .and_then(Json::as_str)
            .and_then(SizeClass::parse)
            .ok_or_else(|| bad("size"))?;
        let opt_bool = |key: &str| match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_bool().map(Some).ok_or_else(|| bad(key)),
        };
        let knobs = CellKnobs {
            threads: doc
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("threads"))?
                .try_into()
                .map_err(|_| bad("threads"))?,
            fast_forward: opt_bool("fast_forward")?,
            drain_fast_forward: opt_bool("drain_fast_forward")?,
            cross_cycle: opt_bool("cross_cycle")?,
            cycle_limit: match doc.get("cycle_limit") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| bad("cycle_limit"))?),
            },
        };
        Ok(CellKey { workload, config, size, knobs })
    }
}

/// One completed sweep point.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Workload name of this point.
    pub workload: String,
    /// Named configuration of this point.
    pub config: NamedConfig,
    /// Size class of this point.
    pub size: SizeClass,
    /// The simulation report.
    pub report: SimReport,
}

/// The results of a sweep, in deterministic workload-major order
/// (`for workload { for config { for size { .. } } }`), independent of the
/// worker-thread count.
#[derive(Debug, Clone, Default)]
pub struct SweepResults {
    /// The completed points, in sweep order.
    pub cells: Vec<SweepCell>,
}

impl SweepResults {
    /// Number of completed points.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns true for an empty sweep.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The report of one `(workload, config, size)` point, if it was swept.
    pub fn report(
        &self,
        workload: &str,
        config: NamedConfig,
        size: SizeClass,
    ) -> Option<&SimReport> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.config == config && c.size == size)
            .map(|c| &c.report)
    }

    /// Iterates over the reports in sweep order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.cells.iter().map(|c| &c.report)
    }
}

/// A configs × workloads × sizes sweep driver. See the [module docs](self).
pub struct Sweep {
    base: SystemConfig,
    configs: Vec<NamedConfig>,
    workloads: Vec<Arc<dyn Workload>>,
    sizes: Vec<SizeClass>,
    threads: usize,
}

impl Sweep {
    /// Creates a sweep over the given base configuration with empty axes and
    /// one worker thread.
    pub fn new(base: SystemConfig) -> Self {
        Sweep { base, configs: Vec::new(), workloads: Vec::new(), sizes: Vec::new(), threads: 1 }
    }

    /// Appends named configurations to the config axis.
    #[must_use]
    pub fn configs(mut self, configs: impl IntoIterator<Item = NamedConfig>) -> Self {
        self.configs.extend(configs);
        self
    }

    /// Appends one named configuration.
    #[must_use]
    pub fn config(mut self, config: NamedConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Appends built-in workloads to the workload axis.
    #[must_use]
    pub fn workloads(mut self, kinds: impl IntoIterator<Item = WorkloadKind>) -> Self {
        for kind in kinds {
            self.workloads.push(Arc::new(kind));
        }
        self
    }

    /// Appends one workload (built-in or custom).
    #[must_use]
    pub fn workload(mut self, workload: impl Workload + 'static) -> Self {
        self.workloads.push(Arc::new(workload));
        self
    }

    /// Appends one already-shared workload handle (e.g. from a
    /// [`ar_workloads::WorkloadRegistry`]).
    #[must_use]
    pub fn workload_arc(mut self, workload: Arc<dyn Workload>) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Appends size classes to the size axis.
    #[must_use]
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = SizeClass>) -> Self {
        self.sizes.extend(sizes);
        self
    }

    /// Appends one size class.
    #[must_use]
    pub fn size(mut self, size: SizeClass) -> Self {
        self.sizes.push(size);
        self
    }

    /// Sets the worker-thread count. `1` (the default) runs serially on the
    /// calling thread; `0` uses the machine's available parallelism. The
    /// results are identical for every thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of points the sweep will run.
    pub fn point_count(&self) -> usize {
        self.configs.len() * self.workloads.len() * self.sizes.len()
    }

    /// The [`CellKey`] of every point, in sweep order (workload-major, then
    /// configuration, then size) with default knobs — the request a client
    /// sends to a sweep server to compute this matrix remotely.
    pub fn cell_keys(&self) -> Vec<CellKey> {
        self.workloads
            .iter()
            .flat_map(|w| {
                self.configs.iter().flat_map(move |&c| {
                    self.sizes.iter().map(move |&s| CellKey::new(w.name(), c, s))
                })
            })
            .collect()
    }

    /// Runs every point and returns the reports in sweep order.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when an axis is empty or the base
    /// configuration is inconsistent under one of the named overlays — both
    /// checked before any simulation starts. Building an individual point
    /// can still fail mid-sweep (e.g. a custom [`Workload`] whose streams
    /// offload under a non-offloading configuration); the sweep then stops
    /// claiming new points, finishes only the points already in flight, and
    /// returns the first error in sweep order.
    pub fn run(&self) -> Result<SweepResults, ConfigError> {
        if self.configs.is_empty() || self.workloads.is_empty() || self.sizes.is_empty() {
            return Err(ConfigError::new(
                "a sweep needs at least one config, one workload and one size",
            ));
        }
        for &config in &self.configs {
            self.base.clone().named(config).validate()?;
        }

        // The job list in deterministic sweep order; workers claim jobs by
        // index and write results back by index, so the output order never
        // depends on scheduling.
        let jobs: Vec<(Arc<dyn Workload>, NamedConfig, SizeClass)> = self
            .workloads
            .iter()
            .flat_map(|w| {
                self.configs
                    .iter()
                    .flat_map(move |&c| self.sizes.iter().map(move |&s| (w.clone(), c, s)))
            })
            .collect();

        let workers = match self.threads {
            0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
            n => n,
        }
        .min(jobs.len())
        .max(1);

        let run_job = |(workload, config, size): &(Arc<dyn Workload>, NamedConfig, SizeClass)| {
            let key = CellKey::new(workload.name(), *config, *size);
            let report = key.configure(&self.base, workload.clone()).build()?.run();
            Ok::<SweepCell, ConfigError>(SweepCell {
                workload: report.workload.clone(),
                config: *config,
                size: *size,
                report,
            })
        };

        let mut cells: Vec<SweepCell> = Vec::with_capacity(jobs.len());
        if workers == 1 {
            for job in &jobs {
                cells.push(run_job(job)?);
            }
        } else {
            let next = AtomicUsize::new(0);
            let failed = std::sync::atomic::AtomicBool::new(false);
            let slots: Vec<Mutex<Option<Result<SweepCell, ConfigError>>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        // Stop claiming new points once any worker hit an
                        // error; in-flight points still finish.
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let result = run_job(job);
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    });
                }
            });
            for slot in slots {
                // Unfilled slots only exist after a failure cut the sweep
                // short; the error surfaces from an earlier filled slot (the
                // first in sweep order once cells are collected below) or,
                // for claimed-but-skipped points, from the flag.
                match slot.into_inner().expect("result slot poisoned") {
                    Some(result) => cells.push(result?),
                    None => {
                        debug_assert!(failed.load(Ordering::Relaxed));
                        break;
                    }
                }
            }
        }
        Ok(SweepResults { cells })
    }
}

/// Runs one cell's shared prefix **exactly once**, snapshots it, and fans a
/// family of report-neutral [`CellKnobs`] variants out from that single
/// checkpoint, each resumed and run to completion on its own worker thread.
///
/// This is the warm-up-once sweep shape: when a matrix varies only kernel
/// knobs (thread counts, fast-forward modes, cross-cycle execution) over one
/// `(workload, config, size)` identity, the cold prefix is identical across
/// every variant — the knobs are report-neutral by the pinned equivalence
/// invariant — so simulating it per variant is pure waste. The warm-up runs
/// under `cell`'s own knobs to network cycle `prefix` (capped at the cycle
/// limit), and every variant resumes from the resulting [`crate::Checkpoint`];
/// restored runs are byte-identical to uninterrupted ones, so the returned
/// reports (in `variants` order) match a cold sweep of the same cells.
///
/// # Errors
///
/// Returns a [`ConfigError`] when the cell fails to build, when a variant
/// changes `cycle_limit` (the one knob that is *not* report-neutral — a
/// different limit is a different cell), or when a variant fails to build or
/// restore.
pub fn warm_fan_out(
    base: &SystemConfig,
    workload: Arc<dyn Workload>,
    cell: &CellKey,
    prefix: u64,
    variants: &[CellKnobs],
) -> Result<Vec<SimReport>, ConfigError> {
    for v in variants {
        if v.cycle_limit != cell.knobs.cycle_limit {
            return Err(ConfigError::new(format!(
                "warm fan-out variants must share the cell's cycle limit ({:?}), got {:?}: \
                 a different limit is a different cell, not a kernel knob",
                cell.knobs.cycle_limit, v.cycle_limit
            )));
        }
    }
    let mut warm = cell.configure(base, workload.clone()).build()?;
    warm.run_prefix(prefix);
    let checkpoint = warm.checkpoint();
    drop(warm);

    let slots: Vec<Mutex<Option<Result<SimReport, ConfigError>>>> =
        variants.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (i, &knobs) in variants.iter().enumerate() {
            let workload = workload.clone();
            let checkpoint = checkpoint.clone();
            let slots = &slots;
            scope.spawn(move || {
                let result = cell
                    .clone()
                    .with_knobs(knobs)
                    .configure(base, workload)
                    .from_checkpoint(checkpoint)
                    .build()
                    .map(Simulation::run);
                *slots[i].lock().expect("fan-out slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("fan-out slot poisoned").expect("worker filled slot"))
        .collect()
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("configs", &self.configs)
            .field("workloads", &self.workloads.iter().map(|w| w.name()).collect::<Vec<_>>())
            .field("sizes", &self.sizes)
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 2_000_000;
        cfg
    }

    #[test]
    fn empty_axes_are_rejected_before_running() {
        assert!(Sweep::new(small_cfg()).run().is_err());
        assert!(Sweep::new(small_cfg()).config(NamedConfig::Hmc).run().is_err());
        let sweep =
            Sweep::new(small_cfg()).config(NamedConfig::Hmc).workloads([WorkloadKind::Reduce]);
        assert!(sweep.run().is_err(), "missing size axis");
        assert_eq!(sweep.point_count(), 0);
    }

    #[test]
    fn results_are_ordered_workload_major() {
        let results = Sweep::new(small_cfg())
            .configs([NamedConfig::Hmc, NamedConfig::ArfTid])
            .workloads([WorkloadKind::Reduce, WorkloadKind::Mac])
            .size(SizeClass::Tiny)
            .run()
            .expect("valid sweep");
        let order: Vec<(String, NamedConfig)> =
            results.cells.iter().map(|c| (c.workload.clone(), c.config)).collect();
        assert_eq!(
            order,
            vec![
                ("reduce".to_string(), NamedConfig::Hmc),
                ("reduce".to_string(), NamedConfig::ArfTid),
                ("mac".to_string(), NamedConfig::Hmc),
                ("mac".to_string(), NamedConfig::ArfTid),
            ]
        );
        assert!(results.report("mac", NamedConfig::ArfTid, SizeClass::Tiny).is_some());
        assert!(results.report("mac", NamedConfig::Dram, SizeClass::Tiny).is_none());
        assert_eq!(results.reports().count(), 4);
    }

    #[test]
    fn parallel_and_serial_sweeps_are_identical() {
        let make = |threads| {
            Sweep::new(small_cfg())
                .configs([NamedConfig::Hmc, NamedConfig::ArfTid, NamedConfig::ArfAddr])
                .workloads([WorkloadKind::Reduce, WorkloadKind::Mac])
                .size(SizeClass::Tiny)
                .threads(threads)
        };
        let serial = make(1).run().expect("serial run");
        for threads in [2, 3, 8] {
            let parallel = make(threads).run().expect("parallel run");
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.cells.iter().zip(&serial.cells) {
                assert_eq!(a.workload, b.workload);
                assert_eq!(a.config, b.config);
                assert_eq!(a.report, b.report, "{}/{}", a.workload, a.config);
            }
        }
    }

    #[test]
    fn cell_keys_enumerate_in_sweep_order_and_round_trip_the_wire() {
        let sweep = Sweep::new(small_cfg())
            .configs([NamedConfig::Hmc, NamedConfig::ArfTid])
            .workloads([WorkloadKind::Reduce, WorkloadKind::Mac])
            .sizes([SizeClass::Tiny]);
        let keys = sweep.cell_keys();
        assert_eq!(keys.len(), sweep.point_count());
        let labels: Vec<String> = keys.iter().map(CellKey::label).collect();
        assert_eq!(
            labels,
            ["reduce/HMC/tiny", "reduce/ARF-tid/tiny", "mac/HMC/tiny", "mac/ARF-tid/tiny"]
        );
        for key in &keys {
            let wired = CellKey::from_json(&key.to_json()).expect("well-formed key doc");
            assert_eq!(&wired, key);
        }
        // Knobs survive the wire too, including explicit fast-forward forcing.
        let knobbed = keys[0].clone().with_knobs(CellKnobs {
            threads: 4,
            fast_forward: Some(false),
            drain_fast_forward: Some(true),
            cross_cycle: Some(false),
            cycle_limit: Some(12_345),
        });
        assert_eq!(CellKey::from_json(&knobbed.to_json()).unwrap(), knobbed);
        // Malformed documents are rejected.
        assert!(CellKey::from_json(&Json::parse(r#"{"workload":"x"}"#).unwrap()).is_err());
        let bad_cfg = r#"{"workload":"mac","config":"NOPE","size":"tiny","threads":1}"#;
        assert!(CellKey::from_json(&Json::parse(bad_cfg).unwrap()).is_err());
    }

    #[test]
    fn cache_keys_ignore_report_neutral_knobs_and_track_semantic_ones() {
        let base = small_cfg();
        let key = CellKey::new("pagerank", NamedConfig::ArfTid, SizeClass::Tiny);
        let addr = key.cache_hash(&base);
        // threads / fast-forward knobs never change the report, so they must
        // share the cache address...
        let neutral = key.clone().with_knobs(CellKnobs {
            threads: 8,
            fast_forward: Some(true),
            drain_fast_forward: Some(false),
            cross_cycle: None,
            cycle_limit: None,
        });
        assert_eq!(neutral.cache_hash(&base), addr);
        // Cross-cycle execution is report-neutral too: forcing it on or off
        // must keep the cell at the same cache address, so reports computed
        // before the knob existed stay valid hits.
        for forced in [Some(true), Some(false)] {
            let crossed =
                key.clone().with_knobs(CellKnobs { cross_cycle: forced, ..CellKnobs::default() });
            assert_eq!(crossed.cache_hash(&base), addr);
        }
        // ...while the cycle limit, the named config, the size, the workload
        // and any base-config field all do change it.
        let limited =
            key.clone().with_knobs(CellKnobs { cycle_limit: Some(99), ..CellKnobs::default() });
        assert_ne!(limited.cache_hash(&base), addr);
        assert_ne!(
            CellKey::new("spmv", NamedConfig::ArfTid, SizeClass::Tiny).cache_hash(&base),
            addr
        );
        assert_ne!(
            CellKey::new("pagerank", NamedConfig::Hmc, SizeClass::Tiny).cache_hash(&base),
            addr
        );
        assert_ne!(
            CellKey::new("pagerank", NamedConfig::ArfTid, SizeClass::Small).cache_hash(&base),
            addr
        );
        let mut tweaked = base.clone();
        tweaked.hmc.vault_access_latency += 1;
        assert_ne!(key.cache_hash(&tweaked), addr);
        // A cycle limit equal to the base max_cycles folds away: the key is
        // the *effective* configuration.
        let folded = key
            .clone()
            .with_knobs(CellKnobs { cycle_limit: Some(base.max_cycles), ..CellKnobs::default() });
        assert_eq!(folded.cache_hash(&base), addr);
        assert_eq!(
            key.cache_key(&base).get("schema").and_then(Json::as_u64),
            Some(u64::from(CACHE_SCHEMA_VERSION))
        );
    }

    #[test]
    fn configured_cells_reproduce_sweep_reports() {
        let base = small_cfg();
        let results = Sweep::new(base.clone())
            .config(NamedConfig::ArfTid)
            .workloads([WorkloadKind::Mac])
            .size(SizeClass::Tiny)
            .run()
            .expect("valid sweep");
        let key = CellKey::new("mac", NamedConfig::ArfTid, SizeClass::Tiny);
        let direct =
            key.configure(&base, Arc::new(WorkloadKind::Mac)).build().expect("valid cell").run();
        assert_eq!(&direct, &results.cells[0].report);
        // The cycle-limit knob truncates the run.
        let truncated = key
            .with_knobs(CellKnobs { cycle_limit: Some(100), ..CellKnobs::default() })
            .configure(&base, Arc::new(WorkloadKind::Mac))
            .build()
            .expect("valid cell")
            .run();
        assert!(!truncated.completed);
    }

    #[test]
    fn warm_fan_out_matches_cold_runs_and_rejects_limit_drift() {
        let base = small_cfg();
        let cell = CellKey::new("reduce", NamedConfig::ArfTid, SizeClass::Tiny);
        let variants = [
            CellKnobs::default(),
            CellKnobs { threads: 4, ..CellKnobs::default() },
            CellKnobs { fast_forward: Some(false), ..CellKnobs::default() },
            CellKnobs { cross_cycle: Some(false), ..CellKnobs::default() },
        ];
        let warm = warm_fan_out(&base, Arc::new(WorkloadKind::Reduce), &cell, 400, &variants)
            .expect("fan-out runs");
        assert_eq!(warm.len(), variants.len());
        // Every variant resumed from one shared prefix must reproduce its
        // cold, uncheckpointed run — which by the equivalence invariant is
        // the same report for all of them.
        let cold = cell
            .configure(&base, Arc::new(WorkloadKind::Reduce))
            .build()
            .expect("valid cell")
            .run();
        for (report, knobs) in warm.iter().zip(&variants) {
            assert_eq!(report, &cold, "variant {knobs:?} diverged from the cold run");
        }

        // cycle_limit is semantic, not report-neutral: a variant that drifts
        // from the cell's limit is a different cell and must be rejected.
        let drifted = [CellKnobs { cycle_limit: Some(99), ..CellKnobs::default() }];
        assert!(warm_fan_out(&base, Arc::new(WorkloadKind::Reduce), &cell, 400, &drifted).is_err());
    }

    #[test]
    fn invalid_named_overlay_fails_fast() {
        let mut cfg = small_cfg();
        cfg.network.groups = 3; // cubes=4 not divisible by 3
        let err = Sweep::new(cfg)
            .config(NamedConfig::Hmc)
            .workloads([WorkloadKind::Reduce])
            .size(SizeClass::Tiny)
            .run();
        assert!(err.is_err());
    }
}
