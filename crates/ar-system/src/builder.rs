//! The typed experiment-driver entry point: [`Simulation`] and
//! [`SimulationBuilder`].
//!
//! The builder pairs a base [`SystemConfig`] with a [`NamedConfig`], a
//! [`Workload`] (one of the built-in [`ar_workloads::WorkloadKind`]s or any
//! custom implementation), a [`SizeClass`] and optional streaming
//! [`Observer`]s, and produces a ready-to-run [`Simulation`]. It subsumed
//! (and has since replaced) the free-function drivers that used to live in
//! [`crate::runner`]; that module now only keeps the verification helpers.
//!
//! # Example
//!
//! ```
//! use ar_system::Simulation;
//! use ar_types::config::{NamedConfig, SystemConfig};
//! use ar_workloads::{SizeClass, WorkloadKind};
//!
//! let mut cfg = SystemConfig::small();
//! cfg.max_cycles = 2_000_000;
//! let sim = Simulation::builder()
//!     .config(cfg)
//!     .named(NamedConfig::ArfTid)
//!     .workload(WorkloadKind::Reduce)
//!     .size(SizeClass::Tiny)
//!     .build()
//!     .expect("valid configuration");
//! let references = sim.references().to_vec();
//! let report = sim.run();
//! assert!(report.completed);
//! assert_eq!(ar_system::runner::verify_gathers(&report, &references), 0);
//! ```

use crate::checkpoint::Checkpoint;
use crate::observer::Observer;
use crate::report::SimReport;
use crate::system::System;
use ar_types::config::{MemoryMode, NamedConfig, SystemConfig};
use ar_types::error::ConfigError;
use ar_types::{Addr, Cycle};
use ar_workloads::{SizeClass, Variant, Workload};
use std::sync::Arc;

/// A fully wired simulation: the system, its attached observers, and the
/// workload's functional reference results.
pub struct Simulation {
    system: System,
    observers: Vec<Box<dyn Observer>>,
    references: Vec<(Addr, f64)>,
    lockstep: bool,
    size: SizeClass,
    variant: Variant,
}

impl Simulation {
    /// Starts building a simulation. See the [module docs](self) for the
    /// full call chain.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::new()
    }

    /// The workload's functional reference results (`(target, expected)`),
    /// for checking the run's gathered values with
    /// [`crate::runner::verify_gathers`]. Empty for baseline variants.
    pub fn references(&self) -> &[(Addr, f64)] {
        &self.references
    }

    /// Runs the simulation to completion (or to the cycle limit, or to an
    /// observer-requested stop) and returns the report.
    pub fn run(mut self) -> SimReport {
        if self.lockstep {
            self.system.run_lockstep_observed(&mut self.observers)
        } else {
            self.system.run_observed(&mut self.observers)
        }
    }

    /// Runs the configured kernel forward to network cycle `until` (or the
    /// configured cycle limit, whichever is lower) and stops at a settled
    /// boundary that [`Simulation::checkpoint`] can snapshot. Returns whether
    /// the run quiesced within the prefix. May be called repeatedly; a later
    /// [`Simulation::run`] continues from the boundary and produces the same
    /// report as an uninterrupted run.
    pub fn run_prefix(&mut self, until: Cycle) -> bool {
        self.system.run_prefix(until, self.lockstep)
    }

    /// Snapshots the complete dynamic state at the current settled boundary
    /// (cycle 0 on a fresh simulation, or wherever [`Simulation::run_prefix`]
    /// stopped). Restore with [`SimulationBuilder::from_checkpoint`].
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            config_hash: self.system.config().to_json().content_hash(),
            workload: self.system.workload().to_string(),
            size: self.size,
            variant: self.variant,
            cycle: self.system.resume_cycle(),
            completed: self.system.prefix_completed(),
            state: self.system.state_to_json(),
        }
    }

    /// Unwraps the underlying [`System`], discarding observers — for callers
    /// that need the raw run methods (e.g. the kernel benchmarks).
    pub fn into_system(self) -> System {
        self.system
    }

    /// The underlying [`System`], for reading run progress between
    /// [`Simulation::run_prefix`] calls (e.g. the sampling harness).
    pub fn system(&self) -> &System {
        &self.system
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("system", &self.system)
            .field("observers", &self.observers.len())
            .field("references", &self.references.len())
            .field("lockstep", &self.lockstep)
            .finish()
    }
}

/// Builder for a [`Simulation`]; create one with [`Simulation::builder`].
///
/// Only the workload is mandatory. Defaults: the Table 4.1 base
/// configuration ([`SystemConfig::paper`]), no named overlay,
/// [`SizeClass::Small`], the variant implied by the offload scheme, no
/// observers, the event-driven kernel.
pub struct SimulationBuilder {
    base: SystemConfig,
    named: Option<NamedConfig>,
    workload: Option<Arc<dyn Workload>>,
    size: SizeClass,
    variant: Option<Variant>,
    observers: Vec<Box<dyn Observer>>,
    lockstep: bool,
    threads: usize,
    fast_forward: Option<bool>,
    drain_fast_forward: Option<bool>,
    cross_cycle: Option<bool>,
    checkpoint: Option<Checkpoint>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Creates a builder with the defaults described on the type.
    pub fn new() -> Self {
        SimulationBuilder {
            base: SystemConfig::paper(),
            named: None,
            workload: None,
            size: SizeClass::Small,
            variant: None,
            observers: Vec::new(),
            lockstep: false,
            threads: 1,
            fast_forward: None,
            drain_fast_forward: None,
            cross_cycle: None,
            checkpoint: None,
        }
    }

    /// Restores a [`Checkpoint`] instead of starting from cycle 0, and
    /// adopts the checkpoint's size class and variant.
    ///
    /// The caller still supplies the configuration and workload — a
    /// checkpoint carries only dynamic state plus identity, never code or
    /// streams (see [`crate::checkpoint`]). [`SimulationBuilder::build`]
    /// fails when the rebuilt configuration or regenerated workload does not
    /// match the one the snapshot was taken under. Report-neutral kernel
    /// knobs (threads, fast-forwarding, drain, cross-cycle, lock-step) may
    /// differ freely between the snapshotting run and the restored one.
    #[must_use]
    pub fn from_checkpoint(mut self, checkpoint: Checkpoint) -> Self {
        self.size = checkpoint.size;
        self.variant = Some(checkpoint.variant);
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Sets the base system configuration (platform dimensions, timings,
    /// cycle limit). Applied before the named overlay.
    #[must_use]
    pub fn config(mut self, base: SystemConfig) -> Self {
        self.base = base;
        self
    }

    /// Overlays one of the named evaluation configurations (memory mode +
    /// offload scheme) and uses its display name as the report label.
    #[must_use]
    pub fn named(mut self, named: NamedConfig) -> Self {
        self.named = Some(named);
        self
    }

    /// Sets the workload. Accepts any [`Workload`], including the built-in
    /// [`ar_workloads::WorkloadKind`] variants.
    #[must_use]
    pub fn workload(mut self, workload: impl Workload + 'static) -> Self {
        self.workload = Some(Arc::new(workload));
        self
    }

    /// Sets the workload from an already-shared handle (e.g. one obtained
    /// from a [`ar_workloads::WorkloadRegistry`]).
    #[must_use]
    pub fn workload_arc(mut self, workload: Arc<dyn Workload>) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the problem-size class (default [`SizeClass::Small`]).
    #[must_use]
    pub fn size(mut self, size: SizeClass) -> Self {
        self.size = size;
        self
    }

    /// Overrides the workload variant. Without this, the variant follows the
    /// offload scheme: baselines run [`Variant::Baseline`], the adaptive
    /// scheme runs [`Variant::Adaptive`], every other scheme
    /// [`Variant::Active`] — the pairing of Section 5.1.
    #[must_use]
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = Some(variant);
        self
    }

    /// Attaches a streaming [`Observer`]. May be called repeatedly; events
    /// fan out to every observer in attachment order.
    #[must_use]
    pub fn observer(mut self, observer: impl Observer + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Uses the lock-step reference kernel instead of the event-driven one
    /// (for equivalence tests and benchmarks).
    #[must_use]
    pub fn lockstep(mut self) -> Self {
        self.lockstep = true;
        self
    }

    /// Sets the thread count of the sharded event-driven kernel (see
    /// [`System::with_threads`]): due cube shards tick concurrently within a
    /// cycle, with cross-shard effects merged deterministically, so the
    /// report is byte-identical for every value. Default `1` (serial); `0`
    /// resolves to the machine's available parallelism, and explicit counts
    /// are clamped to it at build time — workers beyond physical CPUs only
    /// add scheduling overhead, never speedup ([`System::with_threads`] is
    /// the unclamped low-level knob). Ignored by the lock-step reference
    /// kernel.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Forces bulk compute fast-forwarding on or off (see
    /// [`System::with_fast_forward`]).
    ///
    /// Without this call the builder decides automatically from the
    /// generated workload's compute-block statistics
    /// ([`ar_workloads::GeneratedWorkload::compute_block_stats`]): the fast
    /// path is armed only when some block is at least
    /// [`ar_cpu::PROFITABLE_BLOCK_INSNS`] instructions long, because shorter
    /// blocks never yield a skippable interval and the per-tick eligibility
    /// probes would be pure overhead. The [`SimReport`] is byte-identical in
    /// every mode — the equivalence suite's on/off axis asserts exactly that
    /// — so the knob (and the auto decision) only place wall-clock work.
    /// Ignored by the lock-step reference kernel, which never fast-forwards.
    #[must_use]
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = Some(enabled);
        self
    }

    /// Forces offload-drain fast-forwarding on or off (see
    /// [`System::with_drain_fast_forward`]).
    ///
    /// Without this call the builder enables the drain planner exactly when
    /// the generated workload offloads at all (`updates > 0`): a workload
    /// with no `Update` items can never enter the MI-full drain regime, so
    /// the per-cycle arming probe would be pure overhead. As with compute
    /// fast-forwarding, the [`SimReport`] is byte-identical in every mode —
    /// the equivalence suite's on/off axis asserts exactly that — so the
    /// knob only places wall-clock work. Ignored by the lock-step reference
    /// kernel, which never plans drain windows.
    #[must_use]
    pub fn drain_fast_forward(mut self, enabled: bool) -> Self {
        self.drain_fast_forward = Some(enabled);
        self
    }

    /// Forces bounded-lag cross-cycle execution on or off (see
    /// [`System::with_cross_cycle`]).
    ///
    /// Without this call the kernel runs with cross-cycle execution enabled:
    /// the arming pass self-gates (it only opens a run-ahead window when a
    /// cube's pending work sits strictly below its conservative lookahead
    /// horizon), so there is no workload statistic to auto-tune on. As with
    /// the other kernel knobs, the [`SimReport`] is byte-identical in every
    /// mode — the equivalence suite's on/off axis asserts exactly that — so
    /// the knob only places wall-clock work. Ignored by the lock-step
    /// reference kernel, which never runs ahead.
    #[must_use]
    pub fn cross_cycle(mut self, enabled: bool) -> Self {
        self.cross_cycle = Some(enabled);
        self
    }

    /// Generates the workload, validates the configuration and wires the
    /// system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when no workload was set or when the
    /// (overlaid) configuration is inconsistent.
    pub fn build(self) -> Result<Simulation, ConfigError> {
        let workload = self.workload.ok_or_else(|| {
            ConfigError::new("SimulationBuilder needs a workload (.workload(..))")
        })?;
        let cfg = match self.named {
            Some(named) => self.base.named(named),
            None => self.base,
        };
        let variant = self.variant.unwrap_or_else(|| variant_for_scheme(cfg.scheme));
        let generated = workload.generate(cfg.cores.count, self.size, variant);
        let label = match self.named {
            Some(named) => named.to_string(),
            None if cfg.scheme.offloads() => cfg.scheme.to_string(),
            None => match cfg.memory_mode {
                MemoryMode::DdrBaseline => "DRAM".to_string(),
                MemoryMode::HmcNetwork => "HMC".to_string(),
            },
        };
        let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let threads = match self.threads {
            0 => available,
            n => n.min(available),
        };
        let fast_forward = self.fast_forward.unwrap_or_else(|| {
            generated.compute_block_stats().longest_block >= ar_cpu::PROFITABLE_BLOCK_INSNS
        });
        let drain_fast_forward = self.drain_fast_forward.unwrap_or(generated.updates > 0);
        let mut system = System::new(cfg, generated.streams, generated.memory)?
            .with_labels(generated.name, label)
            .with_threads(threads)
            .with_fast_forward(fast_forward)
            .with_drain_fast_forward(drain_fast_forward)
            .with_cross_cycle(self.cross_cycle.unwrap_or(true));
        if let Some(ck) = &self.checkpoint {
            let config_hash = system.config().to_json().content_hash();
            if ck.config_hash != config_hash {
                return Err(ConfigError::new(format!(
                    "checkpoint was taken under configuration {:016x} but the builder \
                     produced {config_hash:016x}; restore requires the identical \
                     base/named configuration",
                    ck.config_hash
                )));
            }
            if ck.workload != system.workload() {
                return Err(ConfigError::new(format!(
                    "checkpoint belongs to workload {:?} but the builder generated {:?}",
                    ck.workload,
                    system.workload()
                )));
            }
            if ck.size != self.size || ck.variant != variant {
                return Err(ConfigError::new(format!(
                    "checkpoint is a {}/{} run but the builder is configured for {}/{}",
                    ck.size, ck.variant, self.size, variant
                )));
            }
            system.load_state(&ck.state).map_err(|e| {
                ConfigError::new(format!("checkpoint state failed to restore: {}", e.message))
            })?;
        }
        Ok(Simulation {
            system,
            observers: self.observers,
            references: generated.references,
            lockstep: self.lockstep,
            size: self.size,
            variant,
        })
    }
}

/// The workload variant implied by an offload scheme (Section 5.1 / 5.4):
/// baselines run the unoptimised kernels, the adaptive scheme the
/// dynamically offloaded ones, everything else the offloaded ones. The
/// single source of this pairing — the builder and the deprecated
/// [`crate::runner::variant_for`] alias both delegate here.
pub fn variant_for_scheme(scheme: ar_types::config::OffloadScheme) -> Variant {
    use ar_types::config::OffloadScheme;
    match scheme {
        OffloadScheme::None => Variant::Baseline,
        OffloadScheme::ArfTidAdaptive => Variant::Adaptive,
        OffloadScheme::Art | OffloadScheme::ArfTid | OffloadScheme::ArfAddr => Variant::Active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{ObserverControl, SampleRecorder, SimEvent};
    use ar_workloads::{GeneratedWorkload, WorkloadKind};

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 2_000_000;
        cfg
    }

    #[test]
    fn builder_requires_a_workload() {
        let err = Simulation::builder().config(small_cfg()).build();
        assert!(err.is_err());
    }

    #[test]
    fn builder_matches_the_cell_key_path() {
        let cfg = small_cfg();
        let via_builder = Simulation::builder()
            .config(cfg.clone())
            .named(NamedConfig::ArfTid)
            .workload(WorkloadKind::Reduce)
            .size(SizeClass::Tiny)
            .build()
            .expect("valid")
            .run();
        // The sweep server executes cells through CellKey::configure; the
        // two construction paths must stay behaviourally identical.
        let via_cell = crate::CellKey::new("reduce", NamedConfig::ArfTid, SizeClass::Tiny)
            .configure(&cfg, std::sync::Arc::new(WorkloadKind::Reduce))
            .build()
            .expect("valid")
            .run();
        assert_eq!(via_builder, via_cell);
    }

    #[test]
    fn variant_follows_the_scheme_unless_overridden() {
        assert_eq!(variant_for_scheme(NamedConfig::Hmc.scheme()), Variant::Baseline);
        assert_eq!(variant_for_scheme(NamedConfig::ArfTidAdaptive.scheme()), Variant::Adaptive);
        assert_eq!(variant_for_scheme(NamedConfig::Art.scheme()), Variant::Active);

        // Forcing the baseline variant onto an offloading config runs it
        // without any offloads.
        let report = Simulation::builder()
            .config(small_cfg())
            .named(NamedConfig::ArfTid)
            .workload(WorkloadKind::Mac)
            .size(SizeClass::Tiny)
            .variant(Variant::Baseline)
            .build()
            .expect("valid")
            .run();
        assert!(report.completed);
        assert_eq!(report.updates_offloaded, 0);
    }

    #[test]
    fn labels_without_a_named_config_fall_back_to_the_scheme() {
        let mut cfg = small_cfg();
        cfg.memory_mode = MemoryMode::DdrBaseline;
        let report = Simulation::builder()
            .config(cfg)
            .workload(WorkloadKind::Reduce)
            .size(SizeClass::Tiny)
            .build()
            .expect("valid")
            .run();
        assert_eq!(report.config_label, "DRAM");
        assert_eq!(report.workload, "reduce");
    }

    #[test]
    fn observers_stream_events_and_can_stop_the_run() {
        // A full run streams samples and gathers.
        let report = Simulation::builder()
            .config(small_cfg())
            .named(NamedConfig::ArfTid)
            .workload(WorkloadKind::Reduce)
            .size(SizeClass::Tiny)
            .observer(SampleRecorder::new())
            .build()
            .expect("valid")
            .run();
        assert!(report.completed);

        // An immediately-stopping observer truncates it.
        struct StopNow;
        impl crate::Observer for StopNow {
            fn on_event(&mut self, _: &SimEvent) -> ObserverControl {
                ObserverControl::Stop
            }
        }
        let stopped = Simulation::builder()
            .config(small_cfg())
            .named(NamedConfig::ArfTid)
            .workload(WorkloadKind::Reduce)
            .size(SizeClass::Tiny)
            .observer(StopNow)
            .build()
            .expect("valid")
            .run();
        assert!(!stopped.completed, "an early stop must report an incomplete run");
    }

    fn arf_tid_reduce() -> SimulationBuilder {
        Simulation::builder()
            .config(small_cfg())
            .named(NamedConfig::ArfTid)
            .workload(WorkloadKind::Reduce)
            .size(SizeClass::Tiny)
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let full = arf_tid_reduce().build().expect("valid").run();

        // Snapshot mid-run, push the checkpoint through its on-disk JSON
        // encoding, restore into a fresh simulation, run to the end.
        let mut warm = arf_tid_reduce().build().expect("valid");
        assert!(!warm.run_prefix(500), "prefix must stop before quiescence");
        let ck = warm.checkpoint();
        assert_eq!(ck.cycle, 500);
        let wire = ar_types::json::Json::parse(&ck.to_json().render()).expect("valid JSON");
        let restored = crate::Checkpoint::from_json(&wire).expect("decodes");
        assert_eq!(restored, ck);
        let resumed = arf_tid_reduce().from_checkpoint(restored).build().expect("restores").run();
        assert_eq!(resumed, full, "restored run must reproduce the full report");

        // The kernel knobs are report-neutral across the restore boundary:
        // resume the same snapshot on the lock-step kernel and at 4 threads.
        let lockstep =
            arf_tid_reduce().from_checkpoint(ck.clone()).lockstep().build().expect("ok").run();
        assert_eq!(lockstep, full);
        let threaded = arf_tid_reduce().from_checkpoint(ck).threads(4).build().expect("ok").run();
        assert_eq!(threaded, full);
    }

    #[test]
    fn checkpoints_can_stack_across_repeated_prefixes() {
        let full = arf_tid_reduce().build().expect("valid").run();
        let mut sim = arf_tid_reduce().build().expect("valid");
        // Walk the run in prefix hops, re-snapshotting and re-restoring at
        // every boundary; the final report must still be byte-identical.
        for hop in [1_000u64, 7_777, 20_000] {
            sim.run_prefix(hop);
            let ck = sim.checkpoint();
            sim = arf_tid_reduce().from_checkpoint(ck).build().expect("restores");
        }
        assert_eq!(sim.run(), full);
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let mut sim = arf_tid_reduce().build().expect("valid");
        sim.run_prefix(1_000);
        let ck = sim.checkpoint();

        // Wrong workload.
        let err = Simulation::builder()
            .config(small_cfg())
            .named(NamedConfig::ArfTid)
            .workload(WorkloadKind::Mac)
            .size(SizeClass::Tiny)
            .from_checkpoint(ck.clone())
            .build();
        assert!(err.is_err(), "workload mismatch must fail");

        // Wrong named configuration (different config hash).
        let err = Simulation::builder()
            .config(small_cfg())
            .named(NamedConfig::Art)
            .workload(WorkloadKind::Reduce)
            .size(SizeClass::Tiny)
            .from_checkpoint(ck.clone())
            .build();
        assert!(err.is_err(), "config mismatch must fail");

        // Overriding the checkpoint's size after restoring it must fail.
        let err = arf_tid_reduce().from_checkpoint(ck).size(SizeClass::Small).build();
        assert!(err.is_err(), "size mismatch must fail");
    }

    #[test]
    fn custom_workloads_run_through_the_builder() {
        struct ComputeOnly;
        impl Workload for ComputeOnly {
            fn name(&self) -> &str {
                "compute_only"
            }
            fn generate(
                &self,
                threads: usize,
                _size: SizeClass,
                variant: Variant,
            ) -> GeneratedWorkload {
                let mut kernel = active_routing::ActiveKernel::new(threads);
                for t in 0..threads {
                    kernel.compute(t, 64);
                }
                GeneratedWorkload {
                    name: "compute_only".to_string(),
                    variant,
                    streams: kernel.into_streams(),
                    memory: Vec::new(),
                    references: Vec::new(),
                    updates: 0,
                }
            }
        }
        let report = Simulation::builder()
            .config(small_cfg())
            .named(NamedConfig::Hmc)
            .workload(ComputeOnly)
            .size(SizeClass::Tiny)
            .build()
            .expect("valid")
            .run();
        assert!(report.completed);
        assert_eq!(report.workload, "compute_only");
        assert!(report.instructions > 0);
    }
}
