//! Full-system integration of the Active-Routing evaluation platform.
//!
//! This crate wires every substrate together into the system of Fig. 3.1 /
//! Table 4.1 and runs it cycle by cycle:
//!
//! * 16 out-of-order cores ([`ar_cpu`]) executing per-thread
//!   [`ar_types::WorkStream`]s, with private L1s and a shared S-NUCA L2 kept
//!   coherent by a directory ([`ar_cache`]), connected by a 4×4 mesh
//!   ([`ar_network::MeshNoc`]);
//! * either the DDR DRAM baseline ([`ar_dram`]) or a 16-cube dragonfly memory
//!   network of HMCs ([`ar_network::MemoryNetwork`], [`ar_hmc`]) with one
//!   Active-Routing Engine per cube ([`active_routing`]);
//! * the host offload controller that turns Message-Interface commands into
//!   active packets and collects gather results.
//!
//! The entry points are [`System`] (explicit streams + memory image) and the
//! [`runner`] helpers that pair a [`ar_types::config::NamedConfig`] with an
//! [`ar_workloads::WorkloadKind`]. Every run produces a [`SimReport`], the
//! single input from which the experiments crate regenerates each figure of
//! the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use ar_system::runner;
//! use ar_types::config::{NamedConfig, SystemConfig};
//! use ar_workloads::{SizeClass, WorkloadKind};
//!
//! let mut cfg = SystemConfig::small();
//! cfg.max_cycles = 2_000_000;
//! let report = runner::run(&cfg, NamedConfig::ArfTid, WorkloadKind::Reduce, SizeClass::Tiny)
//!     .expect("valid configuration");
//! assert!(report.completed);
//! assert!(report.updates_offloaded > 0);
//! ```

pub mod report;
pub mod runner;
pub mod system;

pub use report::{CubeActivity, DataMovement, LatencyBreakdown, SimReport, StallSummary};
pub use runner::{build, run, run_all_configs, variant_for, verify_gathers};
pub use system::System;
