//! Full-system integration of the Active-Routing evaluation platform.
//!
//! This crate wires every substrate together into the system of Fig. 3.1 /
//! Table 4.1 and runs it cycle by cycle:
//!
//! * 16 out-of-order cores ([`ar_cpu`]) executing per-thread
//!   [`ar_types::WorkStream`]s, with private L1s and a shared S-NUCA L2 kept
//!   coherent by a directory ([`ar_cache`]), connected by a 4×4 mesh
//!   ([`ar_network::MeshNoc`]);
//! * either the DDR DRAM baseline ([`ar_dram`]) or a 16-cube dragonfly memory
//!   network of HMCs ([`ar_network::MemoryNetwork`], [`ar_hmc`]) with one
//!   Active-Routing Engine per cube ([`active_routing`]);
//! * the host offload controller that turns Message-Interface commands into
//!   active packets and collects gather results.
//!
//! # Driving experiments
//!
//! The experiment-driver surface has three layers:
//!
//! * [`SimulationBuilder`] (via [`Simulation::builder`]) — one run: pair a
//!   base [`ar_types::config::SystemConfig`] with a named configuration, any
//!   [`ar_workloads::Workload`] and a size class, optionally attach
//!   streaming [`Observer`]s, and [`Simulation::run`] it to a [`SimReport`];
//! * [`Sweep`] — a configs × workloads × sizes matrix fanned out over
//!   `std::thread` workers with deterministic, thread-count-independent
//!   result ordering;
//! * [`System`] — the raw model, for hand-built
//!   [`ar_types::WorkStream`]s and memory images.
//!
//! A sweep point can also travel as a [`CellKey`] — workload name, named
//! configuration, size and knobs — which is how the `ar-serve` sweep server
//! schedules, deduplicates and content-addresses remote runs.
//! Every run produces a [`SimReport`], the single input from which the
//! experiments crate regenerates each figure of the paper's evaluation;
//! [`SimReport::to_json`] / [`SimReport::from_json`] serialise it through
//! the in-tree [`ar_types::json`] shim.
//!
//! # Example
//!
//! ```
//! use ar_system::Simulation;
//! use ar_types::config::{NamedConfig, SystemConfig};
//! use ar_workloads::{SizeClass, WorkloadKind};
//!
//! let mut cfg = SystemConfig::small();
//! cfg.max_cycles = 2_000_000;
//! let report = Simulation::builder()
//!     .config(cfg)
//!     .named(NamedConfig::ArfTid)
//!     .workload(WorkloadKind::Reduce)
//!     .size(SizeClass::Tiny)
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! assert!(report.completed);
//! assert!(report.updates_offloaded > 0);
//! ```

pub mod builder;
pub mod checkpoint;
mod drain;
mod lookahead;
pub mod observer;
pub mod report;
pub mod runner;
pub mod sampling;
pub mod sweep;
pub mod system;

pub use builder::{variant_for_scheme, Simulation, SimulationBuilder};
pub use checkpoint::{Checkpoint, CHECKPOINT_SCHEMA_VERSION};
pub use observer::{
    DeadlineStop, Observer, ObserverControl, RunInfo, Sample, SampleRecorder, SimEvent,
};
pub use report::{CubeActivity, DataMovement, LatencyBreakdown, SimReport, StallSummary};
pub use runner::{variant_for, verify_gathers};
pub use sampling::{SampledMetric, SampledReport, SamplingPlan};
pub use sweep::{
    warm_fan_out, CellKey, CellKnobs, Sweep, SweepCell, SweepResults, CACHE_SCHEMA_VERSION,
};
pub use system::{RunFootprint, System};
