//! SimPoint-style interval sampling on top of checkpointed prefix runs.
//!
//! Detailed simulation of the Paper-scale workloads is expensive; most
//! summary metrics stabilise long before the run finishes. The sampling
//! harness runs a warm-up prefix, then measures `K` fixed-length windows
//! (optionally separated by unmeasured gaps) by reading architectural
//! counters between [`crate::Simulation::run_prefix`] calls, and reports
//! per-metric point estimates with error bars ([`SampledReport`]): the
//! window mean, the standard error of that mean, and a 95% confidence
//! interval. Because windows ride the same deterministic kernel as full
//! runs, a sampled run perturbs nothing — running the remaining cycles
//! afterwards still produces the byte-identical full report.
//!
//! This is the measurement half of SimPoint-style sampling; the repo's
//! deterministic workloads make cluster selection unnecessary, so windows
//! are taken periodically.

use crate::builder::Simulation;
use ar_types::error::ConfigError;
use ar_types::json::Json;
use ar_types::Cycle;

/// Where and how much to measure: warm-up prefix, window length, window
/// count and the unmeasured gap between windows (all in network cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPlan {
    /// Network cycles simulated (but not measured) before the first window.
    pub warmup: Cycle,
    /// Length of each measured window in network cycles.
    pub window: Cycle,
    /// Number of windows to measure.
    pub windows: usize,
    /// Unmeasured network cycles simulated between consecutive windows.
    pub gap: Cycle,
}

impl SamplingPlan {
    /// Builds a plan, validating that it measures anything at all.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `window` or `windows` is zero.
    pub fn new(
        warmup: Cycle,
        window: Cycle,
        windows: usize,
        gap: Cycle,
    ) -> Result<Self, ConfigError> {
        if window == 0 {
            return Err(ConfigError::new("sampling windows must be at least one cycle long"));
        }
        if windows == 0 {
            return Err(ConfigError::new("a sampling plan needs at least one window"));
        }
        Ok(SamplingPlan { warmup, window, windows, gap })
    }
}

/// One sampled metric: the per-window observations and their summary
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledMetric {
    /// Metric name (e.g. `"ipc"`).
    pub name: String,
    /// One observation per measured window, in window order.
    pub samples: Vec<f64>,
    /// Mean across windows — the point estimate.
    pub mean: f64,
    /// Standard error of the mean (`s / sqrt(K)`, sample standard
    /// deviation); `0` with fewer than two windows.
    pub stderr: f64,
}

impl SampledMetric {
    /// Summarises one metric's per-window observations.
    pub fn from_samples(name: impl Into<String>, samples: Vec<f64>) -> SampledMetric {
        let n = samples.len() as f64;
        let mean = if samples.is_empty() { 0.0 } else { samples.iter().sum::<f64>() / n };
        let stderr = if samples.len() < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
            (var / n).sqrt()
        };
        SampledMetric { name: name.into(), samples, mean, stderr }
    }

    /// The 95% confidence interval `(low, high)` around the mean, using the
    /// normal approximation `mean ± 1.96 · stderr`.
    pub fn ci95(&self) -> (f64, f64) {
        (self.mean - 1.96 * self.stderr, self.mean + 1.96 * self.stderr)
    }

    fn to_json(&self) -> Json {
        let (lo, hi) = self.ci95();
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("samples", Json::Arr(self.samples.iter().map(|&s| Json::from(s)).collect())),
            ("mean", Json::from(self.mean)),
            ("stderr", Json::from(self.stderr)),
            ("ci95_low", Json::from(lo)),
            ("ci95_high", Json::from(hi)),
        ])
    }
}

/// The result of a sampled run: per-metric estimates plus enough context to
/// judge them (how much was measured, and whether the run actually survived
/// the whole plan or quiesced early).
#[derive(Debug, Clone, PartialEq)]
pub struct SampledReport {
    /// Generated-workload name of the sampled run.
    pub workload: String,
    /// The plan the measurement executed.
    pub plan: SamplingPlan,
    /// Windows actually measured — fewer than `plan.windows` when the run
    /// quiesced mid-plan.
    pub windows_measured: usize,
    /// Whether the run quiesced while the plan was still executing. When
    /// true the sample is really a (cheap) full run and the error bars
    /// describe within-run variation, not an extrapolation.
    pub completed: bool,
    /// Sampled metrics: aggregate IPC per window, instructions per window.
    pub metrics: Vec<SampledMetric>,
}

impl SampledReport {
    /// The named metric, if measured.
    pub fn metric(&self, name: &str) -> Option<&SampledMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Aggregate-IPC point estimate (mean over windows).
    pub fn ipc(&self) -> f64 {
        self.metric("ipc").map(|m| m.mean).unwrap_or(0.0)
    }

    /// Encodes the report for the experiment drivers.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.as_str())),
            ("warmup", Json::from(self.plan.warmup)),
            ("window", Json::from(self.plan.window)),
            ("windows_planned", Json::from(self.plan.windows)),
            ("gap", Json::from(self.plan.gap)),
            ("windows_measured", Json::from(self.windows_measured)),
            ("completed", Json::from(self.completed)),
            ("metrics", Json::Arr(self.metrics.iter().map(SampledMetric::to_json).collect())),
        ])
    }
}

impl Simulation {
    /// Executes a [`SamplingPlan`] and summarises the measured windows.
    ///
    /// The warm-up prefix and inter-window gaps are simulated in full but
    /// excluded from the estimates. Measurement is pure observation — the
    /// simulation can afterwards be [`Simulation::run`] to the end and still
    /// produces the byte-identical report of an unsampled run.
    pub fn run_sampled(&mut self, plan: &SamplingPlan) -> SampledReport {
        let ratio = self.system().config().core_cycles_per_network_cycle();
        let workload = self.system().workload().to_string();
        let mut completed = false;
        if plan.warmup > 0 {
            completed = self.run_prefix(plan.warmup);
        }
        let mut ipc = Vec::new();
        let mut insns = Vec::new();
        for k in 0..plan.windows {
            if completed {
                break;
            }
            if k > 0 && plan.gap > 0 {
                completed = self.run_prefix(self.system().resume_cycle() + plan.gap);
                if completed {
                    break;
                }
            }
            let start_cycle = self.system().resume_cycle();
            let start_insns = self.system().instructions_retired();
            completed = self.run_prefix(start_cycle + plan.window);
            let d_cycles = (self.system().resume_cycle() - start_cycle).saturating_mul(ratio);
            let d_insns = self.system().instructions_retired() - start_insns;
            if d_cycles > 0 {
                ipc.push(d_insns as f64 / d_cycles as f64);
                insns.push(d_insns as f64);
            }
        }
        SampledReport {
            workload,
            plan: *plan,
            windows_measured: ipc.len(),
            completed,
            metrics: vec![
                SampledMetric::from_samples("ipc", ipc),
                SampledMetric::from_samples("instructions", insns),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use ar_types::config::{NamedConfig, SystemConfig};
    use ar_workloads::{SizeClass, WorkloadKind};

    fn reduce_sim(size: SizeClass) -> Simulation {
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 20_000_000;
        Simulation::builder()
            .config(cfg)
            .named(NamedConfig::ArfTid)
            .workload(WorkloadKind::Reduce)
            .size(size)
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn sampling_is_pure_observation_and_tracks_the_full_run() {
        let full = reduce_sim(SizeClass::Tiny).run();

        let mut sim = reduce_sim(SizeClass::Tiny);
        // Tiny runs retire all instructions early, so sample from cycle 0
        // with contiguous windows to catch the active phase.
        let plan = SamplingPlan::new(0, 200, 6, 0).expect("valid plan");
        let sampled = sim.run_sampled(&plan);
        assert!(sampled.windows_measured > 0, "tiny run must yield at least one window");
        assert_eq!(sampled.workload, "reduce");
        let ipc = sampled.metric("ipc").expect("ipc metric present");
        assert_eq!(ipc.samples.len(), sampled.windows_measured);
        assert!(sampled.ipc() > 0.0);
        assert!(ipc.stderr >= 0.0);
        let (lo, hi) = ipc.ci95();
        assert!(lo <= sampled.ipc() && sampled.ipc() <= hi);
        // The sampled estimate stays in the neighbourhood of the full-run
        // IPC — windows cover most of this short run.
        let rel = (sampled.ipc() - full.ipc()).abs() / full.ipc();
        assert!(rel < 0.5, "sampled {} vs full {}", sampled.ipc(), full.ipc());

        // Measurement is pure observation: finishing the sampled simulation
        // still produces the byte-identical full report.
        assert_eq!(sim.run(), full);

        // The JSON encoding carries the estimates.
        let doc = sampled.to_json();
        assert_eq!(
            doc.get("completed").and_then(ar_types::json::Json::as_bool),
            sampled.completed.into()
        );
        assert!(doc.get("metrics").and_then(ar_types::json::Json::as_array).is_some());
    }

    #[test]
    #[ignore = "Paper-scale validation; minutes of runtime, run explicitly"]
    fn paper_scale_sampled_ipc_matches_the_full_run() {
        let full = reduce_sim(SizeClass::Paper).run();
        let mut sim = reduce_sim(SizeClass::Paper);
        let plan = SamplingPlan::new(2_000, 1_000, 10, 1_000).expect("valid plan");
        let sampled = sim.run_sampled(&plan);
        assert!(sampled.windows_measured >= 5);
        let rel = (sampled.ipc() - full.ipc()).abs() / full.ipc();
        assert!(rel < 0.25, "sampled {} vs full {}", sampled.ipc(), full.ipc());
    }

    #[test]
    fn plans_validate_their_shape() {
        assert!(SamplingPlan::new(0, 0, 4, 0).is_err());
        assert!(SamplingPlan::new(0, 128, 0, 0).is_err());
        let plan = SamplingPlan::new(1_000, 128, 4, 64).expect("valid");
        assert_eq!(plan.windows, 4);
    }

    #[test]
    fn metric_statistics_match_hand_computation() {
        let m = SampledMetric::from_samples("ipc", vec![1.0, 2.0, 3.0, 4.0]);
        assert!((m.mean - 2.5).abs() < 1e-12);
        // s = sqrt(5/3), stderr = s/2.
        let expected = (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((m.stderr - expected).abs() < 1e-12);
        let (lo, hi) = m.ci95();
        assert!(lo < m.mean && m.mean < hi);

        let single = SampledMetric::from_samples("ipc", vec![1.5]);
        assert_eq!(single.stderr, 0.0);
        let empty = SampledMetric::from_samples("ipc", Vec::new());
        assert_eq!(empty.mean, 0.0);
    }
}
