//! Regenerates every table and figure of the Active-Routing evaluation.
//!
//! Each module corresponds to one artefact of the paper's Chapter 5 (plus
//! the two configuration tables):
//!
//! | artefact | module | what it reports |
//! |---|---|---|
//! | Table 3.1 | [`tables::table_3_1`] | flow-table entry fields |
//! | Table 4.1 | [`tables::table_4_1`] | system configuration |
//! | Fig. 5.1(a)/(b) | [`speedup::figure_5_1`] | runtime speedup over DRAM |
//! | Fig. 5.2(a)/(b) | [`latency::figure_5_2`] | update roundtrip latency breakdown |
//! | Fig. 5.3 | [`heatmap::figure_5_3`] | per-cube stalls / update / operand distribution (lud) |
//! | Fig. 5.4(a)/(b) | [`traffic::figure_5_4`] | data movement normalized to HMC |
//! | Fig. 5.5 | [`energy::figure_energy`] (Power) | normalized power breakdown |
//! | Fig. 5.6 | [`energy::figure_energy`] (Energy) | normalized energy breakdown |
//! | Fig. 5.7 | [`energy::figure_energy`] (EDP) | normalized energy-delay product |
//! | Fig. 5.8 | [`adaptive::AdaptiveStudy`] | lud phase analysis + dynamic offloading |
//!
//! All artefacts are produced from [`matrix::Matrix`] runs of the full-system
//! simulator at a chosen [`scale::ExperimentScale`] (the matrix fans its
//! cells out over worker threads through [`ar_system::Sweep`]), and rendered
//! as [`table::Table`] values (text, CSV, or JSON). The `ar-experiments`
//! binary drives them from the command line:
//!
//! ```text
//! cargo run -p ar-experiments --release -- --figure 5.1a --scale standard
//! cargo run -p ar-experiments --release -- --all --scale quick
//! cargo run -p ar-experiments --release -- --figure 5.1a --json
//! ```

pub mod adaptive;
pub mod backend;
pub mod checkpoint;
pub mod energy;
pub mod heatmap;
pub mod latency;
pub mod matrix;
pub mod scale;
pub mod speedup;
pub mod table;
pub mod tables;
pub mod traffic;

pub use adaptive::AdaptiveStudy;
pub use energy::EnergyMetric;
pub use matrix::Matrix;
pub use scale::ExperimentScale;
pub use table::Table;

/// Identifier of one regenerable artefact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Table 3.1.
    Table3_1,
    /// Table 4.1.
    Table4_1,
    /// Fig. 5.1(a): benchmark speedups.
    Fig5_1a,
    /// Fig. 5.1(b): microbenchmark speedups.
    Fig5_1b,
    /// Fig. 5.2(a): benchmark update latency breakdown.
    Fig5_2a,
    /// Fig. 5.2(b): microbenchmark update latency breakdown.
    Fig5_2b,
    /// Fig. 5.3: lud heatmaps.
    Fig5_3,
    /// Fig. 5.4(a): benchmark data movement.
    Fig5_4a,
    /// Fig. 5.4(b): microbenchmark data movement.
    Fig5_4b,
    /// Fig. 5.5: power breakdown (benchmarks + microbenchmarks).
    Fig5_5,
    /// Fig. 5.6: energy breakdown.
    Fig5_6,
    /// Fig. 5.7: energy-delay product.
    Fig5_7,
    /// Fig. 5.8: lud dynamic offloading case study.
    Fig5_8,
}

impl Artifact {
    /// Every artefact, in paper order.
    pub const ALL: [Artifact; 13] = [
        Artifact::Table3_1,
        Artifact::Table4_1,
        Artifact::Fig5_1a,
        Artifact::Fig5_1b,
        Artifact::Fig5_2a,
        Artifact::Fig5_2b,
        Artifact::Fig5_3,
        Artifact::Fig5_4a,
        Artifact::Fig5_4b,
        Artifact::Fig5_5,
        Artifact::Fig5_6,
        Artifact::Fig5_7,
        Artifact::Fig5_8,
    ];

    /// Parses an artefact name as used on the command line (e.g. `"5.1a"`,
    /// `"table4.1"`, `"5.8"`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "3.1" | "table3.1" => Some(Artifact::Table3_1),
            "4.1" | "table4.1" => Some(Artifact::Table4_1),
            "5.1a" => Some(Artifact::Fig5_1a),
            "5.1b" => Some(Artifact::Fig5_1b),
            "5.2a" => Some(Artifact::Fig5_2a),
            "5.2b" => Some(Artifact::Fig5_2b),
            "5.3" => Some(Artifact::Fig5_3),
            "5.4a" => Some(Artifact::Fig5_4a),
            "5.4b" => Some(Artifact::Fig5_4b),
            "5.5" => Some(Artifact::Fig5_5),
            "5.6" => Some(Artifact::Fig5_6),
            "5.7" => Some(Artifact::Fig5_7),
            "5.8" => Some(Artifact::Fig5_8),
            _ => None,
        }
    }

    /// The artefact's display name.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::Table3_1 => "Table 3.1",
            Artifact::Table4_1 => "Table 4.1",
            Artifact::Fig5_1a => "Figure 5.1(a)",
            Artifact::Fig5_1b => "Figure 5.1(b)",
            Artifact::Fig5_2a => "Figure 5.2(a)",
            Artifact::Fig5_2b => "Figure 5.2(b)",
            Artifact::Fig5_3 => "Figure 5.3",
            Artifact::Fig5_4a => "Figure 5.4(a)",
            Artifact::Fig5_4b => "Figure 5.4(b)",
            Artifact::Fig5_5 => "Figure 5.5",
            Artifact::Fig5_6 => "Figure 5.6",
            Artifact::Fig5_7 => "Figure 5.7",
            Artifact::Fig5_8 => "Figure 5.8",
        }
    }

    /// Runs the artefact at the given scale and renders it as text. Matrix
    /// runs are not shared between artefacts here; callers that want several
    /// figures from one matrix should use the figure modules directly.
    pub fn render(self, scale: ExperimentScale) -> String {
        match self.produce(scale) {
            ArtifactOutput::Text(text) => text,
            ArtifactOutput::Table(table) => table.to_string(),
        }
    }

    /// Runs the artefact at the given scale and renders it as one JSON
    /// document: `{artifact, scale, table}` for figure tables, or
    /// `{artifact, scale, text}` for the prose configuration tables.
    pub fn render_json(self, scale: ExperimentScale) -> String {
        let (key, body) = match self.produce(scale) {
            ArtifactOutput::Text(text) => ("text", ar_types::Json::from(text)),
            ArtifactOutput::Table(table) => ("table", table.to_json()),
        };
        ar_types::Json::obj([
            ("artifact", ar_types::Json::from(self.name())),
            ("scale", ar_types::Json::from(scale.to_string())),
            (key, body),
        ])
        .render()
    }

    fn produce(self, scale: ExperimentScale) -> ArtifactOutput {
        match self {
            Artifact::Table3_1 => ArtifactOutput::Text(tables::table_3_1()),
            Artifact::Table4_1 => ArtifactOutput::Text(tables::table_4_1(&scale.system_config())),
            Artifact::Fig5_1a => ArtifactOutput::Table(speedup::figure_5_1(
                &Matrix::benchmarks(scale),
                "Figure 5.1(a): benchmark runtime speedup over DRAM",
            )),
            Artifact::Fig5_1b => ArtifactOutput::Table(speedup::figure_5_1(
                &Matrix::microbenchmarks(scale),
                "Figure 5.1(b): microbenchmark runtime speedup over DRAM",
            )),
            Artifact::Fig5_2a => ArtifactOutput::Table(latency::figure_5_2(
                &Matrix::run(
                    &ar_workloads::WorkloadKind::BENCHMARKS,
                    &latency::LATENCY_CONFIGS,
                    scale,
                ),
                "Figure 5.2(a): benchmark update roundtrip latency (cycles)",
            )),
            Artifact::Fig5_2b => ArtifactOutput::Table(latency::figure_5_2(
                &Matrix::run(
                    &ar_workloads::WorkloadKind::MICROBENCHMARKS,
                    &latency::LATENCY_CONFIGS,
                    scale,
                ),
                "Figure 5.2(b): microbenchmark update roundtrip latency (cycles)",
            )),
            Artifact::Fig5_3 => ArtifactOutput::Table(heatmap::to_table(
                &heatmap::figure_5_3(scale),
                "Figure 5.3: lud per-cube stalls / update / operand distribution",
            )),
            Artifact::Fig5_4a => ArtifactOutput::Table(traffic::figure_5_4(
                &Matrix::run(
                    &ar_workloads::WorkloadKind::BENCHMARKS,
                    &traffic::TRAFFIC_CONFIGS,
                    scale,
                ),
                "Figure 5.4(a): benchmark data movement normalized to HMC",
            )),
            Artifact::Fig5_4b => ArtifactOutput::Table(traffic::figure_5_4(
                &Matrix::run(
                    &ar_workloads::WorkloadKind::MICROBENCHMARKS,
                    &traffic::TRAFFIC_CONFIGS,
                    scale,
                ),
                "Figure 5.4(b): microbenchmark data movement normalized to HMC",
            )),
            Artifact::Fig5_5 => ArtifactOutput::Table(energy::figure_energy(
                &Matrix::benchmarks(scale),
                EnergyMetric::Power,
                "Figure 5.5: normalized power breakdown over DRAM",
            )),
            Artifact::Fig5_6 => ArtifactOutput::Table(energy::figure_energy(
                &Matrix::benchmarks(scale),
                EnergyMetric::Energy,
                "Figure 5.6: normalized energy breakdown over DRAM",
            )),
            Artifact::Fig5_7 => ArtifactOutput::Table(energy::figure_energy(
                &Matrix::benchmarks(scale),
                EnergyMetric::EnergyDelayProduct,
                "Figure 5.7: normalized energy-delay product over DRAM",
            )),
            Artifact::Fig5_8 => {
                let study = AdaptiveStudy::run(scale);
                ArtifactOutput::Table(study.speedup_table("Figure 5.8: lud dynamic offloading"))
            }
        }
    }
}

/// What producing an artefact yields: a numeric table for the figures, plain
/// prose for the two configuration tables.
enum ArtifactOutput {
    Text(String),
    Table(Table),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_parse_back() {
        for a in Artifact::ALL {
            // Every artefact has a unique display name.
            assert!(!a.name().is_empty());
        }
        assert_eq!(Artifact::parse("5.1a"), Some(Artifact::Fig5_1a));
        assert_eq!(Artifact::parse("table4.1"), Some(Artifact::Table4_1));
        assert_eq!(Artifact::parse("9.9"), None);
    }

    #[test]
    fn static_tables_render_without_simulation() {
        let t31 = Artifact::Table3_1.render(ExperimentScale::Quick);
        assert!(t31.contains("flow ID"));
        let t41 = Artifact::Table4_1.render(ExperimentScale::Quick);
        assert!(t41.contains("Dragonfly"));
    }

    #[test]
    fn json_rendering_is_parseable_and_labelled() {
        use ar_types::Json;
        // A prose table serialises as {artifact, scale, text}.
        let doc = Json::parse(&Artifact::Table4_1.render_json(ExperimentScale::Quick)).unwrap();
        assert_eq!(doc.get("artifact").and_then(Json::as_str), Some("Table 4.1"));
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("quick"));
        assert!(doc.get("text").and_then(Json::as_str).unwrap().contains("Dragonfly"));

        // A figure serialises its table with rows and columns.
        let doc = Json::parse(&Artifact::Fig5_8.render_json(ExperimentScale::Quick)).unwrap();
        let table = doc.get("table").expect("figure artefacts carry a table");
        assert!(!table.get("rows").and_then(Json::as_array).unwrap().is_empty());
    }
}
