//! Plain-text table rendering shared by every experiment.

use ar_types::json::Json;
use std::fmt;

/// A labelled table of numeric series: one row per workload (or field), one
/// column per configuration (or metric). This is the common output format of
/// every regenerated figure; `Display` renders aligned text and
/// [`Table::to_csv`] produces machine-readable output.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. `"Figure 5.1(a): runtime speedup over DRAM"`).
    pub title: String,
    /// Label of the row-name column.
    pub row_label: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows: `(name, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        row_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table { title: title.into(), row_label: row_label.into(), columns, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn push_row(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width must match the header");
        self.rows.push((name.into(), values));
    }

    /// Returns the value at `(row, column)` by name.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows.iter().find(|(name, _)| name == row).map(|(_, vals)| vals[col])
    }

    /// The values of one column, in row order.
    pub fn column(&self, column: &str) -> Option<Vec<f64>> {
        let col = self.columns.iter().position(|c| c == column)?;
        Some(self.rows.iter().map(|(_, vals)| vals[col]).collect())
    }

    /// Serialises the table as a JSON document:
    /// `{title, row_label, columns, rows: [{name, values}]}` — the
    /// machine-readable form behind `ar-experiments --json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::from(self.title.clone())),
            ("row_label", Json::from(self.row_label.clone())),
            ("columns", Json::arr(self.columns.iter().map(String::as_str))),
            (
                "rows",
                Json::arr(self.rows.iter().map(|(name, values)| {
                    Json::obj([
                        ("name", Json::from(name.as_str())),
                        ("values", Json::arr(values.iter().copied())),
                    ])
                })),
            ),
        ])
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (name, values) in &self.rows {
            out.push_str(name);
            for v in values {
                out.push(',');
                out.push_str(&format!("{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let name_width = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(std::iter::once(self.row_label.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        write!(f, "{:<name_width$}", self.row_label)?;
        for c in &self.columns {
            write!(f, "  {c:>12}")?;
        }
        writeln!(f)?;
        for (name, values) in &self.rows {
            write!(f, "{name:<name_width$}")?;
            for v in values {
                write!(f, "  {v:>12.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure X", "workload", vec!["A".into(), "B".into()]);
        t.push_row("mac", vec![1.0, 2.5]);
        t.push_row("reduce", vec![3.0, 4.0]);
        t
    }

    #[test]
    fn lookup_by_row_and_column() {
        let t = sample();
        assert_eq!(t.value("mac", "B"), Some(2.5));
        assert_eq!(t.value("mac", "C"), None);
        assert_eq!(t.value("nope", "A"), None);
        assert_eq!(t.column("A"), Some(vec![1.0, 3.0]));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("workload,A,B"));
        assert!(lines[1].starts_with("mac,1.0"));
    }

    #[test]
    fn display_contains_title_and_all_rows() {
        let text = sample().to_string();
        assert!(text.contains("Figure X"));
        assert!(text.contains("reduce"));
        assert!(text.contains("2.5"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = sample();
        t.push_row("bad", vec![1.0]);
    }

    #[test]
    fn json_form_carries_every_cell() {
        let doc = sample().to_json();
        assert_eq!(doc.get("title").and_then(Json::as_str), Some("Figure X"));
        assert_eq!(doc.get("columns").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        let rows = doc.get("rows").and_then(Json::as_array).expect("rows array");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("name").and_then(Json::as_str), Some("mac"));
        let values = rows[0].get("values").and_then(Json::as_array).expect("values");
        assert_eq!(values[1].as_f64(), Some(2.5));
        // The document parses back from its rendered text.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }
}
