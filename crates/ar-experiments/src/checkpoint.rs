//! The `checkpoint` subcommand: snapshot, resume, verify and sample runs
//! from the command line.
//!
//! ```text
//! ar-experiments checkpoint snapshot --workload reduce --config ARF-tid --at 500 --out ck.json
//! ar-experiments checkpoint resume --config ARF-tid --from ck.json
//! ar-experiments checkpoint verify --workload reduce --config ARF-tid --at 500
//! ar-experiments checkpoint sample --workload reduce --config ARF-tid --windows 8 --window 500
//! ```
//!
//! All four actions run over a scale's base configuration
//! ([`ExperimentScale::system_config`]); `resume` takes everything else from
//! the checkpoint file itself. `verify` is the CI smoke: one full run, one
//! snapshot-at-cycle run restored through its on-disk JSON encoding, and a
//! report diff that must be byte-identical.

use crate::scale::ExperimentScale;
use ar_system::{Checkpoint, SampledMetric, SamplingPlan, Simulation, SimulationBuilder};
use ar_types::config::NamedConfig;
use ar_workloads::{SizeClass, WorkloadRegistry};

/// Usage text of the `checkpoint` subcommand.
pub fn usage() -> &'static str {
    "usage: ar-experiments checkpoint <action> [options]\n\
     \u{20} snapshot  --workload <name> --config <named> --at <cycle> --out <file>\n\
     \u{20}           [--scale quick|standard|full] [--size <class>]\n\
     \u{20} resume    --config <named> --from <file> [--scale quick|standard|full]\n\
     \u{20} verify    --workload <name> --config <named> --at <cycle>\n\
     \u{20}           [--scale quick|standard|full] [--size <class>]\n\
     \u{20} sample    --workload <name> --config <named> [--scale ...] [--size <class>]\n\
     \u{20}           [--warmup <cycles>] [--window <cycles>] [--windows <k>] [--gap <cycles>]\n\
     snapshot runs the shared prefix and writes an atomic checkpoint file;\n\
     resume restores it and runs to completion, printing the report JSON;\n\
     verify asserts a snapshot/restore run reproduces the full run byte-identically;\n\
     sample prints interval-sampled metrics with error bars as JSON"
}

/// Parsed common options of every `checkpoint` action.
struct Options {
    scale: ExperimentScale,
    size: Option<SizeClass>,
    workload: Option<String>,
    config: Option<NamedConfig>,
    at: Option<u64>,
    out: Option<String>,
    from: Option<String>,
    warmup: u64,
    window: u64,
    windows: usize,
    gap: u64,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale: ExperimentScale::Quick,
        size: None,
        workload: None,
        config: None,
        at: None,
        out: None,
        from: None,
        warmup: 0,
        window: 1_000,
        windows: 8,
        gap: 0,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--scale" => {
                opts.scale = ExperimentScale::parse(value)
                    .ok_or_else(|| format!("unknown scale {value:?}"))?;
            }
            "--size" => {
                opts.size =
                    Some(SizeClass::parse(value).ok_or_else(|| format!("unknown size {value:?}"))?);
            }
            "--workload" => opts.workload = Some(value.clone()),
            "--config" => {
                opts.config = Some(
                    NamedConfig::parse(value)
                        .ok_or_else(|| format!("unknown configuration {value:?}"))?,
                );
            }
            "--at" => {
                opts.at =
                    Some(value.parse().map_err(|_| format!("--at needs a cycle, got {value:?}"))?);
            }
            "--out" => opts.out = Some(value.clone()),
            "--from" => opts.from = Some(value.clone()),
            "--warmup" => {
                opts.warmup = value.parse().map_err(|_| "--warmup needs a cycle count")?;
            }
            "--window" => {
                opts.window = value.parse().map_err(|_| "--window needs a cycle count")?;
            }
            "--windows" => {
                opts.windows = value.parse().map_err(|_| "--windows needs a count")?;
            }
            "--gap" => opts.gap = value.parse().map_err(|_| "--gap needs a cycle count")?,
            other => return Err(format!("unknown checkpoint option {other:?}")),
        }
        i += 2;
    }
    Ok(opts)
}

impl Options {
    /// The builder for this invocation's (workload, config, size) identity.
    fn builder(&self) -> Result<SimulationBuilder, String> {
        let workload = self.workload.as_deref().ok_or("--workload is required")?;
        let config = self.config.ok_or("--config is required")?;
        let handle = WorkloadRegistry::builtin()
            .get(workload)
            .ok_or_else(|| format!("unknown workload {workload:?}"))?;
        Ok(Simulation::builder()
            .config(self.scale.system_config())
            .named(config)
            .workload_arc(handle)
            .size(self.size.unwrap_or_else(|| self.scale.size_class())))
    }
}

/// Runs the `checkpoint` subcommand; returns the text to print on success.
///
/// # Errors
///
/// Returns a human-readable message for unparseable options, invalid
/// configurations, unreadable/corrupt checkpoint files, and — from `verify`
/// — a restored run that fails to reproduce the full run.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(action) = args.first() else {
        return Ok(usage().to_string());
    };
    if action == "--help" || action == "-h" {
        return Ok(usage().to_string());
    }
    let opts = parse_options(&args[1..])?;
    match action.as_str() {
        "snapshot" => {
            let at = opts.at.ok_or("snapshot needs --at <cycle>")?;
            let out = opts.out.as_deref().ok_or("snapshot needs --out <file>")?;
            let mut sim = opts.builder()?.build().map_err(|e| e.to_string())?;
            let completed = sim.run_prefix(at);
            let ck = sim.checkpoint();
            ck.save(out).map_err(|e| format!("cannot write {out}: {e}"))?;
            Ok(format!(
                "checkpoint {} at cycle {} ({}) -> {out}",
                ck.workload,
                ck.cycle,
                if completed { "quiesced" } else { "mid-run" }
            ))
        }
        "resume" => {
            let from = opts.from.as_deref().ok_or("resume needs --from <file>")?;
            let config = opts.config.ok_or("--config is required")?;
            let ck = Checkpoint::load(from).map_err(|e| format!("cannot load {from}: {e}"))?;
            let handle = WorkloadRegistry::builtin()
                .get(&ck.workload)
                .ok_or_else(|| format!("checkpoint names unknown workload {:?}", ck.workload))?;
            let report = Simulation::builder()
                .config(opts.scale.system_config())
                .named(config)
                .workload_arc(handle)
                .from_checkpoint(ck)
                .build()
                .map_err(|e| e.to_string())?
                .run();
            Ok(report.to_json().render())
        }
        "verify" => {
            let at = opts.at.ok_or("verify needs --at <cycle>")?;
            let full = opts.builder()?.build().map_err(|e| e.to_string())?.run();
            let mut warm = opts.builder()?.build().map_err(|e| e.to_string())?;
            warm.run_prefix(at);
            // Round-trip the snapshot through its serialized form, exactly
            // like a restore from disk.
            let doc = ar_types::Json::parse(&warm.checkpoint().to_json().render())
                .map_err(|e| format!("snapshot did not render to valid JSON: {e}"))?;
            let ck = Checkpoint::from_json(&doc).map_err(|e| format!("snapshot decode: {e}"))?;
            let resumed =
                opts.builder()?.from_checkpoint(ck).build().map_err(|e| e.to_string())?.run();
            if resumed == full {
                Ok(format!(
                    "verify OK: restore at cycle {at} reproduces the full run byte-identically \
                     ({} network cycles)",
                    full.network_cycles
                ))
            } else {
                Err(format!(
                    "verify FAILED: restored report diverges from the full run\n full: {}\n restored: {}",
                    full.to_json().render(),
                    resumed.to_json().render()
                ))
            }
        }
        "sample" => {
            let plan = SamplingPlan::new(opts.warmup, opts.window, opts.windows, opts.gap)
                .map_err(|e| e.to_string())?;
            let mut sim = opts.builder()?.build().map_err(|e| e.to_string())?;
            let sampled = sim.run_sampled(&plan);
            Ok(sampled.to_json().render())
        }
        other => Err(format!("unknown checkpoint action {other:?}\n{}", usage())),
    }
}

/// Formats one metric as a human-readable `mean ± ci` string (used by tests
/// and callers that post-process [`ar_system::SampledReport`]s).
pub fn format_metric(metric: &SampledMetric) -> String {
    let (lo, hi) = metric.ci95();
    format!(
        "{}: {:.4} (95% CI {:.4}..{:.4}, {} windows)",
        metric.name,
        metric.mean,
        lo,
        hi,
        metric.samples.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ar-ck-cli-{}-{name}", std::process::id()))
    }

    #[test]
    fn snapshot_resume_and_verify_round_trip() {
        let out = temp_path("snap.json");
        let out_str = out.to_string_lossy().to_string();
        let msg = run(&args(&[
            "snapshot",
            "--workload",
            "reduce",
            "--config",
            "ARF-tid",
            "--size",
            "tiny",
            "--at",
            "400",
            "--out",
            &out_str,
        ]))
        .expect("snapshot succeeds");
        assert!(msg.contains("cycle 400"), "{msg}");

        let report = run(&args(&["resume", "--config", "ARF-tid", "--from", &out_str]))
            .expect("resume succeeds");
        let doc = ar_types::Json::parse(&report).expect("resume prints JSON");
        assert_eq!(doc.get("completed").and_then(ar_types::Json::as_bool), Some(true));

        let verdict = run(&args(&[
            "verify",
            "--workload",
            "reduce",
            "--config",
            "ARF-tid",
            "--size",
            "tiny",
            "--at",
            "400",
        ]))
        .expect("verify passes");
        assert!(verdict.contains("verify OK"), "{verdict}");
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn sample_prints_error_bars_and_bad_options_fail() {
        let doc = run(&args(&[
            "sample",
            "--workload",
            "reduce",
            "--config",
            "ARF-tid",
            "--size",
            "tiny",
            "--window",
            "200",
            "--windows",
            "6",
        ]))
        .expect("sample succeeds");
        let doc = ar_types::Json::parse(&doc).expect("sample prints JSON");
        let metrics = doc.get("metrics").and_then(ar_types::Json::as_array).expect("metrics");
        assert!(!metrics.is_empty());
        assert!(metrics[0].get("stderr").is_some());

        assert!(run(&args(&["snapshot", "--workload", "reduce"])).is_err());
        assert!(run(&args(&["sample", "--workload", "nope", "--config", "ARF-tid"])).is_err());
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&["sample", "--config", "NOPE"])).is_err());
        assert!(run(&[]).expect("bare call prints usage").contains("usage"));
    }
}
