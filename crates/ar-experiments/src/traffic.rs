//! Figure 5.4: on/off-chip data movement normalized to the HMC baseline,
//! broken into normal/active request/response bytes.

use crate::matrix::Matrix;
use crate::table::Table;
use ar_types::config::NamedConfig;

/// The configurations plotted by Fig. 5.4 (DRAM is excluded: the figure is
/// normalized to HMC).
pub const TRAFFIC_CONFIGS: [NamedConfig; 4] =
    [NamedConfig::Hmc, NamedConfig::Art, NamedConfig::ArfTid, NamedConfig::ArfAddr];

/// Builds the Fig. 5.4 data-movement table: one row per
/// `(workload, config)`, with the four byte categories normalized to the
/// workload's HMC total.
pub fn figure_5_4(matrix: &Matrix, title: &str) -> Table {
    let columns = vec![
        "norm_req".to_string(),
        "norm_resp".to_string(),
        "active_req".to_string(),
        "active_resp".to_string(),
        "total".to_string(),
    ];
    let mut table = Table::new(title, "workload/config", columns);
    for &workload in &matrix.workloads {
        let Some(hmc) = matrix.report(workload, NamedConfig::Hmc) else { continue };
        let base = hmc.data_movement.total().max(1) as f64;
        for &config in &matrix.configs {
            if !TRAFFIC_CONFIGS.contains(&config) {
                continue;
            }
            if let Some(report) = matrix.report(workload, config) {
                let d = report.data_movement;
                table.push_row(
                    format!("{}/{}", workload.name(), config),
                    vec![
                        d.norm_req_bytes as f64 / base,
                        d.norm_resp_bytes as f64 / base,
                        d.active_req_bytes as f64 / base,
                        d.active_resp_bytes as f64 / base,
                        d.total() as f64 / base,
                    ],
                );
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use ar_workloads::WorkloadKind;

    #[test]
    fn hmc_row_is_normalized_to_one_and_has_no_active_traffic() {
        let m = Matrix::run(
            &[WorkloadKind::Mac],
            &[NamedConfig::Hmc, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        let t = figure_5_4(&m, "Figure 5.4 (test)");
        assert!((t.value("mac/HMC", "total").unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(t.value("mac/HMC", "active_req"), Some(0.0));
        assert!(t.value("mac/ARF-tid", "active_req").unwrap() > 0.0);
    }

    #[test]
    fn offloading_mac_reduces_normal_response_traffic() {
        // The microbenchmarks' whole parallel phase is offloaded, so the
        // cache-block fills of the baseline disappear (Fig. 5.4b).
        let m = Matrix::run(
            &[WorkloadKind::Mac],
            &[NamedConfig::Hmc, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        let t = figure_5_4(&m, "Figure 5.4 (test)");
        let hmc_resp = t.value("mac/HMC", "norm_resp").unwrap();
        let arf_resp = t.value("mac/ARF-tid", "norm_resp").unwrap();
        assert!(arf_resp < hmc_resp);
    }
}
