//! Experiment scales: how big a platform and problem size each run uses.

use ar_types::config::SystemConfig;
use ar_workloads::SizeClass;
use std::fmt;

/// How large the simulated platform and inputs are.
///
/// The paper's own inputs (Section 4.2) are impractically large for a
/// software model inside a test suite; each scale keeps the full architecture
/// but shrinks the platform and/or the input so the relative behaviour of the
/// configurations — who wins, by roughly what factor, where the crossovers
/// are — is preserved while the wall-clock stays reasonable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentScale {
    /// 4 cores, 4 cubes, tiny inputs: seconds per figure. Used by the unit
    /// tests and the Criterion benchmarks.
    Quick,
    /// The paper's 16-core / 16-cube platform with small inputs: the default
    /// for `cargo run -p ar-experiments`.
    Standard,
    /// The paper's platform with the largest tractable inputs; minutes per
    /// figure.
    Full,
}

impl ExperimentScale {
    /// The base system configuration of this scale (before a named
    /// configuration is applied).
    pub fn system_config(self) -> SystemConfig {
        match self {
            ExperimentScale::Quick => {
                let mut cfg = SystemConfig::small();
                // Shrink the caches so that even the small workload inputs
                // exceed the LLC — the "large footprint, low reuse" regime the
                // paper evaluates — while keeping runs fast.
                cfg.caches.l1_bytes = 2 * 1024;
                cfg.caches.l2_bytes = 8 * 1024;
                cfg.max_cycles = 5_000_000;
                cfg
            }
            ExperimentScale::Standard | ExperimentScale::Full => {
                let mut cfg = SystemConfig::paper();
                cfg.max_cycles = 50_000_000;
                cfg
            }
        }
    }

    /// The workload size class of this scale.
    pub fn size_class(self) -> SizeClass {
        match self {
            ExperimentScale::Quick | ExperimentScale::Standard => SizeClass::Small,
            ExperimentScale::Full => SizeClass::Medium,
        }
    }

    /// Parses a scale name (`quick`, `standard`, `full`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(ExperimentScale::Quick),
            "standard" => Some(ExperimentScale::Standard),
            "full" => Some(ExperimentScale::Full),
            _ => None,
        }
    }
}

impl fmt::Display for ExperimentScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Standard => "standard",
            ExperimentScale::Full => "full",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_valid_configs() {
        for scale in [ExperimentScale::Quick, ExperimentScale::Standard, ExperimentScale::Full] {
            assert!(scale.system_config().validate().is_ok());
        }
        assert_eq!(ExperimentScale::Quick.system_config().cores.count, 4);
        assert_eq!(ExperimentScale::Standard.system_config().cores.count, 16);
    }

    #[test]
    fn parse_roundtrips_display() {
        for scale in [ExperimentScale::Quick, ExperimentScale::Standard, ExperimentScale::Full] {
            assert_eq!(ExperimentScale::parse(&scale.to_string()), Some(scale));
        }
        assert_eq!(ExperimentScale::parse("bogus"), None);
    }
}
