//! The workload × configuration run matrix shared by Figures 5.1 and 5.4-5.7.

use crate::scale::ExperimentScale;
use ar_system::{runner, SimReport};
use ar_types::config::NamedConfig;
use ar_workloads::WorkloadKind;

/// The reports of running a set of workloads under a set of configurations.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Workloads, in row order.
    pub workloads: Vec<WorkloadKind>,
    /// Configurations, in column order.
    pub configs: Vec<NamedConfig>,
    /// `reports[w][c]` is the run of `workloads[w]` under `configs[c]`.
    pub reports: Vec<Vec<SimReport>>,
}

impl Matrix {
    /// Runs every workload under every configuration at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if the scale's base configuration is invalid (it never is for
    /// the built-in scales).
    pub fn run(
        workloads: &[WorkloadKind],
        configs: &[NamedConfig],
        scale: ExperimentScale,
    ) -> Self {
        let base = scale.system_config();
        let size = scale.size_class();
        let reports = workloads
            .iter()
            .map(|&w| {
                configs
                    .iter()
                    .map(|&c| runner::run(&base, c, w, size).expect("built-in scales are valid"))
                    .collect()
            })
            .collect();
        Matrix { workloads: workloads.to_vec(), configs: configs.to_vec(), reports }
    }

    /// Runs the five benchmarks under the five configurations of Fig. 5.1(a).
    pub fn benchmarks(scale: ExperimentScale) -> Self {
        Matrix::run(&WorkloadKind::BENCHMARKS, &NamedConfig::ALL, scale)
    }

    /// Runs the four microbenchmarks under the five configurations of
    /// Fig. 5.1(b).
    pub fn microbenchmarks(scale: ExperimentScale) -> Self {
        Matrix::run(&WorkloadKind::MICROBENCHMARKS, &NamedConfig::ALL, scale)
    }

    /// The report of one `(workload, config)` cell.
    pub fn report(&self, workload: WorkloadKind, config: NamedConfig) -> Option<&SimReport> {
        let w = self.workloads.iter().position(|&x| x == workload)?;
        let c = self.configs.iter().position(|&x| x == config)?;
        Some(&self.reports[w][c])
    }

    /// Iterates over `(workload, config, report)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (WorkloadKind, NamedConfig, &SimReport)> {
        self.workloads.iter().enumerate().flat_map(move |(wi, &w)| {
            self.configs.iter().enumerate().map(move |(ci, &c)| (w, c, &self.reports[wi][ci]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_runs_and_indexes() {
        let m = Matrix::run(
            &[WorkloadKind::Reduce],
            &[NamedConfig::Hmc, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        assert_eq!(m.reports.len(), 1);
        assert_eq!(m.reports[0].len(), 2);
        let hmc = m.report(WorkloadKind::Reduce, NamedConfig::Hmc).unwrap();
        let arf = m.report(WorkloadKind::Reduce, NamedConfig::ArfTid).unwrap();
        assert!(hmc.completed && arf.completed);
        assert!(m.report(WorkloadKind::Mac, NamedConfig::Hmc).is_none());
        assert_eq!(m.iter().count(), 2);
    }
}
