//! The workload × configuration run matrix shared by Figures 5.1 and 5.4-5.7.
//!
//! Since the driver redesign the matrix is a thin shape adapter over
//! [`ar_system::Sweep`]: the runs fan out over worker threads (one per
//! available core by default) and the reports come back in deterministic
//! row/column order, identical to a serial run. When a sweep server is
//! configured ([`crate::backend::use_server`]) the cells are resolved
//! remotely instead, against the server's persistent report cache; the
//! simulator's determinism makes the two paths byte-identical.

use crate::backend;
use crate::scale::ExperimentScale;
use ar_serve::SweepClient;
use ar_system::{CellKey, SimReport, Sweep};
use ar_types::config::NamedConfig;
use ar_workloads::WorkloadKind;

/// The reports of running a set of workloads under a set of configurations.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Workloads, in row order.
    pub workloads: Vec<WorkloadKind>,
    /// Configurations, in column order.
    pub configs: Vec<NamedConfig>,
    /// `reports[w][c]` is the run of `workloads[w]` under `configs[c]`.
    pub reports: Vec<Vec<SimReport>>,
}

impl Matrix {
    /// Runs every workload under every configuration at the given scale,
    /// fanning the cells out over one worker thread per available core.
    ///
    /// # Panics
    ///
    /// Panics if the scale's base configuration is invalid (it never is for
    /// the built-in scales).
    pub fn run(
        workloads: &[WorkloadKind],
        configs: &[NamedConfig],
        scale: ExperimentScale,
    ) -> Self {
        Matrix::run_with_threads(workloads, configs, scale, 0)
    }

    /// [`Matrix::run`] with an explicit worker-thread count (`1` = serial,
    /// `0` = available parallelism). The reports are identical for every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if the scale's base configuration is invalid (it never is for
    /// the built-in scales).
    pub fn run_with_threads(
        workloads: &[WorkloadKind],
        configs: &[NamedConfig],
        scale: ExperimentScale,
        threads: usize,
    ) -> Self {
        if let Some(addr) = backend::server() {
            return Matrix::run_via_server(&addr, workloads, configs, scale);
        }
        let results = Sweep::new(scale.system_config())
            .configs(configs.iter().copied())
            .workloads(workloads.iter().copied())
            .size(scale.size_class())
            .threads(threads)
            .run()
            .expect("built-in scales are valid");
        // The sweep order is workload-major over a single size, i.e. exactly
        // row-major over this matrix.
        let mut cells = results.cells.into_iter();
        let reports = workloads
            .iter()
            .map(|_| {
                configs
                    .iter()
                    .map(|_| cells.next().expect("sweep covers every cell").report)
                    .collect()
            })
            .collect();
        Matrix { workloads: workloads.to_vec(), configs: configs.to_vec(), reports }
    }

    /// Resolves the matrix through the sweep server at `addr`; cells the
    /// server has cached come back without simulating.
    ///
    /// # Panics
    ///
    /// Panics when the server is unreachable, fails a cell, or — the
    /// correctness guard — simulates a different base configuration than
    /// this scale (its hello banner carries the base's content hash).
    fn run_via_server(
        addr: &str,
        workloads: &[WorkloadKind],
        configs: &[NamedConfig],
        scale: ExperimentScale,
    ) -> Self {
        let mut client =
            SweepClient::connect(addr).unwrap_or_else(|e| panic!("sweep server {addr}: {e}"));
        let base_hash = scale.system_config().to_json().content_hash();
        assert_eq!(
            client.base_hash(),
            base_hash,
            "sweep server {addr} simulates a different base configuration; \
             start it with `ar-experiments serve --scale {scale}`"
        );
        let cells: Vec<CellKey> = workloads
            .iter()
            .flat_map(|w| {
                configs.iter().map(move |&c| CellKey::new(w.name(), c, scale.size_class()))
            })
            .collect();
        let outcomes = client
            .run_cells(&cells)
            .unwrap_or_else(|e| panic!("sweep server {addr} failed the matrix: {e}"));
        let cached = outcomes.iter().filter(|o| o.cached).count();
        eprintln!(
            "[ar-experiments] sweep server resolved {} cells ({} cached, {} computed)",
            outcomes.len(),
            cached,
            outcomes.len() - cached
        );
        // The request was laid out row-major, so the outcomes (which arrive
        // in request order) reshape directly.
        let mut outcomes = outcomes.into_iter();
        let reports = workloads
            .iter()
            .map(|_| {
                configs
                    .iter()
                    .map(|_| outcomes.next().expect("server answers every cell").report)
                    .collect()
            })
            .collect();
        Matrix { workloads: workloads.to_vec(), configs: configs.to_vec(), reports }
    }

    /// Runs the five benchmarks under the five configurations of Fig. 5.1(a).
    pub fn benchmarks(scale: ExperimentScale) -> Self {
        Matrix::run(&WorkloadKind::BENCHMARKS, &NamedConfig::ALL, scale)
    }

    /// Runs the four microbenchmarks under the five configurations of
    /// Fig. 5.1(b).
    pub fn microbenchmarks(scale: ExperimentScale) -> Self {
        Matrix::run(&WorkloadKind::MICROBENCHMARKS, &NamedConfig::ALL, scale)
    }

    /// The report of one `(workload, config)` cell.
    pub fn report(&self, workload: WorkloadKind, config: NamedConfig) -> Option<&SimReport> {
        let w = self.workloads.iter().position(|&x| x == workload)?;
        let c = self.configs.iter().position(|&x| x == config)?;
        Some(&self.reports[w][c])
    }

    /// Iterates over `(workload, config, report)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (WorkloadKind, NamedConfig, &SimReport)> {
        self.workloads.iter().enumerate().flat_map(move |(wi, &w)| {
            self.configs.iter().enumerate().map(move |(ci, &c)| (w, c, &self.reports[wi][ci]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_runs_and_indexes() {
        let m = Matrix::run(
            &[WorkloadKind::Reduce],
            &[NamedConfig::Hmc, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        assert_eq!(m.reports.len(), 1);
        assert_eq!(m.reports[0].len(), 2);
        let hmc = m.report(WorkloadKind::Reduce, NamedConfig::Hmc).unwrap();
        let arf = m.report(WorkloadKind::Reduce, NamedConfig::ArfTid).unwrap();
        assert!(hmc.completed && arf.completed);
        assert!(m.report(WorkloadKind::Mac, NamedConfig::Hmc).is_none());
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn matrix_cells_land_in_their_labelled_slots_regardless_of_threads() {
        for threads in [1, 4] {
            let m = Matrix::run_with_threads(
                &[WorkloadKind::Reduce, WorkloadKind::Mac],
                &[NamedConfig::Hmc, NamedConfig::ArfTid],
                ExperimentScale::Quick,
                threads,
            );
            for (workload, config, report) in m.iter() {
                assert_eq!(report.workload, workload.to_string());
                assert_eq!(report.config_label, config.to_string());
            }
        }
    }
}
