//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! ar-experiments --all --scale quick
//! ar-experiments --figure 5.1a --scale standard
//! ar-experiments --figure 5.1a --json
//! ar-experiments --table 4.1
//! ar-experiments --list
//! ```

use ar_experiments::{Artifact, ExperimentScale};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: ar-experiments [--list] [--all] [--figure <id>] [--table <id>] [--scale quick|standard|full] [--json]\n\
     ids: 3.1 4.1 5.1a 5.1b 5.2a 5.2b 5.3 5.4a 5.4b 5.5 5.6 5.7 5.8\n\
     --json emits one machine-readable JSON document per selected artefact"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Quick;
    let mut selected: Vec<Artifact> = Vec::new();
    let mut list = false;
    let mut all = false;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--all" => all = true,
            "--json" => json = true,
            "--scale" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match ExperimentScale::parse(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale {name:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--figure" | "--table" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("{} needs a value\n{}", args[i - 1], usage());
                    return ExitCode::FAILURE;
                };
                match Artifact::parse(name) {
                    Some(a) => selected.push(a),
                    None => {
                        eprintln!("unknown artefact {name:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if list {
        for a in Artifact::ALL {
            println!("{}", a.name());
        }
        return ExitCode::SUCCESS;
    }
    if all {
        selected = Artifact::ALL.to_vec();
    }
    if selected.is_empty() {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    for artifact in selected {
        eprintln!("[ar-experiments] running {} at scale {scale} ...", artifact.name());
        if json {
            println!("{}", artifact.render_json(scale));
        } else {
            println!("{}", artifact.render(scale));
        }
    }
    ExitCode::SUCCESS
}
