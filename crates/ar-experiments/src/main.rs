//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! ar-experiments --all --scale quick
//! ar-experiments --figure 5.1a --scale standard
//! ar-experiments --figure 5.1a --json
//! ar-experiments --table 4.1
//! ar-experiments --list
//! ar-experiments serve --scale quick --cache target/sweep-cache
//! ar-experiments --all --cached 127.0.0.1:7171
//! ```

use ar_experiments::{backend, Artifact, ExperimentScale};
use ar_serve::{ServerConfig, SweepServer};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: ar-experiments [--list] [--all] [--figure <id>] [--table <id>] [--scale quick|standard|full] [--json] [--cached <addr>]\n\
     \u{20}      ar-experiments serve [--scale quick|standard|full] [--addr <ip:port>] [--cache <dir>] [--workers <n>]\n\
     \u{20}      ar-experiments checkpoint <snapshot|resume|verify|sample> [options] (see `checkpoint --help`)\n\
     ids: 3.1 4.1 5.1a 5.1b 5.2a 5.2b 5.3 5.4a 5.4b 5.5 5.6 5.7 5.8\n\
     --json emits one machine-readable JSON document per selected artefact\n\
     --cached resolves matrix cells through a running sweep server (start one with `serve`)\n\
     serve runs a persistent sweep daemon with a content-addressed report cache\n\
     checkpoint snapshots, restores, verifies and interval-samples single runs"
}

/// Runs the `serve` subcommand: a persistent sweep daemon over the scale's
/// base configuration.
fn serve(args: &[String]) -> ExitCode {
    let mut scale = ExperimentScale::Quick;
    let mut addr = "127.0.0.1:7171".to_string();
    let mut cache = "target/sweep-cache".to_string();
    let mut workers = 0usize;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1).cloned().ok_or_else(|| {
                eprintln!("{} needs a value\n{}", args[i], usage());
            })
        };
        match args[i].as_str() {
            "--scale" => {
                let Ok(name) = value(i) else { return ExitCode::FAILURE };
                match ExperimentScale::parse(&name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale {name:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
                i += 1;
            }
            "--addr" => {
                let Ok(v) = value(i) else { return ExitCode::FAILURE };
                addr = v;
                i += 1;
            }
            "--cache" => {
                let Ok(v) = value(i) else { return ExitCode::FAILURE };
                cache = v;
                i += 1;
            }
            "--workers" => {
                let Ok(v) = value(i) else { return ExitCode::FAILURE };
                match v.parse() {
                    Ok(n) => workers = n,
                    Err(_) => {
                        eprintln!("--workers needs a number\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
                i += 1;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown serve argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let config = ServerConfig::new(scale.system_config(), &cache).workers(workers);
    let server = match SweepServer::bind(addr.as_str(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Machine-parseable: scripts bind port 0 and scrape the actual port.
    println!("[ar-serve] listening on {} scale {scale} cache {cache}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("checkpoint") {
        return match ar_experiments::checkpoint::run(&args[1..]) {
            Ok(output) => {
                println!("{output}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    let mut scale = ExperimentScale::Quick;
    let mut selected: Vec<Artifact> = Vec::new();
    let mut list = false;
    let mut all = false;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--all" => all = true,
            "--json" => json = true,
            "--cached" => {
                i += 1;
                let Some(addr) = args.get(i) else {
                    eprintln!("--cached needs a server address\n{}", usage());
                    return ExitCode::FAILURE;
                };
                backend::use_server(addr);
            }
            "--scale" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match ExperimentScale::parse(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale {name:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--figure" | "--table" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("{} needs a value\n{}", args[i - 1], usage());
                    return ExitCode::FAILURE;
                };
                match Artifact::parse(name) {
                    Some(a) => selected.push(a),
                    None => {
                        eprintln!("unknown artefact {name:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if list {
        for a in Artifact::ALL {
            println!("{}", a.name());
        }
        return ExitCode::SUCCESS;
    }
    if all {
        selected = Artifact::ALL.to_vec();
    }
    if selected.is_empty() {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    for artifact in selected {
        eprintln!("[ar-experiments] running {} at scale {scale} ...", artifact.name());
        if json {
            println!("{}", artifact.render_json(scale));
        } else {
            println!("{}", artifact.render(scale));
        }
    }
    ExitCode::SUCCESS
}
