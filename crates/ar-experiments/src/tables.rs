//! Tables 3.1 (flow table entry fields) and 4.1 (system configurations) as
//! printable artefacts.

use ar_types::config::SystemConfig;

/// Renders Table 3.1: the fields of a flow table entry and their purpose.
pub fn table_3_1() -> String {
    let rows: [(&str, &str); 7] = [
        ("flow ID", "A unique ID of the Active Routing flow"),
        ("opcode", "The operation type of this flow"),
        ("result", "The reduction result processed in this cube"),
        ("req_counter", "Count of Update requests for this node"),
        ("resp_counter", "Count of processed requests"),
        ("parent", "The port id connected to parent of Active-Routing tree"),
        ("children_flags / Gflag", "Children indicators and gather-ready flag"),
    ];
    let mut out = String::from("Table 3.1: Flow Table Entry Fields\n");
    for (field, purpose) in rows {
        out.push_str(&format!("  {field:<24} {purpose}\n"));
    }
    out
}

/// Renders Table 4.1: the simulated system configuration.
pub fn table_4_1(cfg: &SystemConfig) -> String {
    let mut out = String::from("Table 4.1: System Configurations\n");
    out.push_str(&format!(
        "  CPU Core        {} O3cores @ {} GHz, issue/commit width: {}, ROB: {}\n",
        cfg.cores.count, cfg.cores.clock_ghz, cfg.cores.issue_width, cfg.cores.rob_entries
    ));
    out.push_str(&format!(
        "  L1I/DCache      Private, {} KB, {} way\n",
        cfg.caches.l1_bytes / 1024,
        cfg.caches.l1_ways
    ));
    out.push_str(&format!(
        "  L2Cache         S-NUCA {} MB, {} way, MESI, {} banks\n",
        cfg.caches.l2_bytes / (1024 * 1024),
        cfg.caches.l2_ways,
        cfg.caches.l2_banks
    ));
    out.push_str(&format!(
        "  NoC             {}x{} mesh, {} MC at corners\n",
        cfg.noc.mesh_width, cfg.noc.mesh_width, cfg.noc.memory_controllers
    ));
    out.push_str(&format!(
        "  DRAM Baseline   {} MCs, {} GB, {} ranks/channel, {} banks/rank, tRCD={} tRAS={} tRP={} tCL={} tBL={} tRR={}\n",
        cfg.dram.channels,
        cfg.dram.capacity_gib,
        cfg.dram.ranks_per_channel,
        cfg.dram.banks_per_rank,
        cfg.dram.t_rcd,
        cfg.dram.t_ras,
        cfg.dram.t_rp,
        cfg.dram.t_cl,
        cfg.dram.t_bl,
        cfg.dram.t_rr
    ));
    out.push_str(&format!(
        "  HMC             {} GB/cube, {} layers, {} vaults, {} banks/vault\n",
        cfg.hmc.capacity_gib, cfg.hmc.layers, cfg.hmc.vaults, cfg.hmc.banks_per_vault
    ));
    out.push_str(&format!(
        "  HMC-Net         {} cube Dragonfly, {} controllers, minimal routing, {} lanes @ {} Gbps/lane, switch @ {} GHz\n",
        cfg.network.cubes,
        cfg.network.host_ports,
        cfg.network.lanes,
        cfg.network.gbps_per_lane,
        cfg.network.clock_ghz
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_1_lists_every_flow_entry_field() {
        let t = table_3_1();
        for field in
            ["flow ID", "opcode", "result", "req_counter", "resp_counter", "parent", "Gflag"]
        {
            assert!(t.contains(field), "missing field {field}");
        }
    }

    #[test]
    fn table_4_1_matches_the_paper_configuration() {
        let t = table_4_1(&SystemConfig::paper());
        assert!(t.contains("16 O3cores @ 2 GHz"));
        assert!(t.contains("16 KB"));
        assert!(t.contains("16 MB"));
        assert!(t.contains("4x4 mesh"));
        assert!(t.contains("16 cube Dragonfly"));
        assert!(t.contains("tRCD=14"));
    }
}
