//! Figure 5.8: `lud` phase analysis and dynamic offloading (Section 5.4).
//!
//! The left panel of the figure tracks IPC over the run for the HMC baseline
//! and ARF-tid; the right panel compares the end-to-end speedup of HMC,
//! always-offload ARF and the adaptive scheme that starts on the host and
//! switches to offloading once the per-flow reduction length crosses the
//! locality threshold.

use crate::scale::ExperimentScale;
use crate::table::Table;
use ar_sim::TimeSeries;
use ar_system::{SimReport, Sweep};
use ar_types::config::NamedConfig;
use ar_workloads::WorkloadKind;

/// The three configurations compared in Fig. 5.8.
pub const ADAPTIVE_CONFIGS: [NamedConfig; 3] =
    [NamedConfig::Hmc, NamedConfig::ArfTid, NamedConfig::ArfTidAdaptive];

/// The result of the case study: one report per configuration, in
/// [`ADAPTIVE_CONFIGS`] order.
#[derive(Debug, Clone)]
pub struct AdaptiveStudy {
    /// Reports for HMC, ARF-tid and ARF-tid-adaptive.
    pub reports: Vec<SimReport>,
}

impl AdaptiveStudy {
    /// Runs `lud` under the three configurations, one sweep worker per
    /// configuration.
    pub fn run(scale: ExperimentScale) -> Self {
        let results = Sweep::new(scale.system_config())
            .configs(ADAPTIVE_CONFIGS)
            .workloads([WorkloadKind::Lud])
            .size(scale.size_class())
            .threads(ADAPTIVE_CONFIGS.len())
            .run()
            .expect("built-in scales are valid");
        AdaptiveStudy { reports: results.cells.into_iter().map(|c| c.report).collect() }
    }

    /// The report of one configuration.
    pub fn report(&self, config: NamedConfig) -> Option<&SimReport> {
        ADAPTIVE_CONFIGS.iter().position(|&c| c == config).map(|i| &self.reports[i])
    }

    /// The windowed IPC series of one configuration (left panel of Fig. 5.8).
    pub fn ipc_series(&self, config: NamedConfig) -> Option<&TimeSeries> {
        self.report(config).map(|r| &r.ipc_series)
    }

    /// The speedup-over-HMC table (right panel of Fig. 5.8).
    pub fn speedup_table(&self, title: &str) -> Table {
        let hmc = &self.reports[0];
        let columns: Vec<String> = ADAPTIVE_CONFIGS.iter().map(|c| c.to_string()).collect();
        let mut table = Table::new(title, "metric", columns);
        table.push_row(
            "speedup_over_HMC",
            self.reports.iter().map(|r| r.speedup_over(hmc)).collect(),
        );
        table.push_row(
            "updates_offloaded",
            self.reports.iter().map(|r| r.updates_offloaded as f64).collect(),
        );
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_offloads_fewer_updates_than_always_offload() {
        let study = AdaptiveStudy::run(ExperimentScale::Quick);
        let arf = study.report(NamedConfig::ArfTid).unwrap();
        let adaptive = study.report(NamedConfig::ArfTidAdaptive).unwrap();
        let hmc = study.report(NamedConfig::Hmc).unwrap();
        assert_eq!(hmc.updates_offloaded, 0);
        assert!(adaptive.updates_offloaded > 0, "late phases must offload");
        assert!(
            adaptive.updates_offloaded < arf.updates_offloaded,
            "early low-reuse phases must stay on the host"
        );
        let table = study.speedup_table("Figure 5.8 (test)");
        assert!((table.value("speedup_over_HMC", "HMC").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_series_are_recorded_for_long_enough_runs() {
        let study = AdaptiveStudy::run(ExperimentScale::Quick);
        // The series may be empty for extremely short runs; at minimum the
        // accessor must work and the reports must have completed.
        for &config in &ADAPTIVE_CONFIGS {
            assert!(study.report(config).unwrap().completed);
            let _ = study.ipc_series(config).unwrap();
        }
    }
}
