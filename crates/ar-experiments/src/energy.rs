//! Figures 5.5-5.7: power, energy and energy-delay product normalized to the
//! DRAM baseline, each broken into cache / memory / network components.

use crate::matrix::Matrix;
use crate::table::Table;
use ar_power::geometric_mean;
use ar_types::config::{NamedConfig, PowerConfig};

/// Which of the three related figures to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnergyMetric {
    /// Fig. 5.5: average power.
    Power,
    /// Fig. 5.6: energy.
    Energy,
    /// Fig. 5.7: energy-delay product.
    EnergyDelayProduct,
}

/// Builds the Fig. 5.5 (power), 5.6 (energy) or 5.7 (EDP) table. Power and
/// energy rows carry the three component columns plus the total; every value
/// is normalized to the workload's DRAM total.
pub fn figure_energy(matrix: &Matrix, metric: EnergyMetric, title: &str) -> Table {
    let power_cfg = PowerConfig::default();
    match metric {
        EnergyMetric::EnergyDelayProduct => edp_table(matrix, &power_cfg, title),
        _ => breakdown_table(matrix, metric, &power_cfg, title),
    }
}

fn breakdown_table(
    matrix: &Matrix,
    metric: EnergyMetric,
    power_cfg: &PowerConfig,
    title: &str,
) -> Table {
    let columns =
        vec!["cache".to_string(), "memory".to_string(), "network".to_string(), "total".to_string()];
    let mut table = Table::new(title, "workload/config", columns);
    for &workload in &matrix.workloads {
        let Some(dram) = matrix.report(workload, NamedConfig::Dram) else { continue };
        let base = match metric {
            EnergyMetric::Power => dram.power(power_cfg).total_w(),
            _ => dram.energy(power_cfg).total_pj(),
        };
        let base = if base == 0.0 { 1.0 } else { base };
        for &config in &matrix.configs {
            let Some(report) = matrix.report(workload, config) else { continue };
            let (cache, memory, network) = match metric {
                EnergyMetric::Power => {
                    let p = report.power(power_cfg);
                    (p.cache_w, p.memory_w, p.network_w)
                }
                _ => {
                    let e = report.energy(power_cfg);
                    (e.cache_pj, e.memory_pj, e.network_pj)
                }
            };
            table.push_row(
                format!("{}/{}", workload.name(), config),
                vec![
                    cache / base,
                    memory / base,
                    network / base,
                    (cache + memory + network) / base,
                ],
            );
        }
    }
    table
}

fn edp_table(matrix: &Matrix, power_cfg: &PowerConfig, title: &str) -> Table {
    let columns: Vec<String> = matrix.configs.iter().map(|c| c.to_string()).collect();
    let mut table = Table::new(title, "workload", columns);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); matrix.configs.len()];
    for (wi, workload) in matrix.workloads.iter().enumerate() {
        let Some(dram) = matrix.report(*workload, NamedConfig::Dram) else { continue };
        let base = dram.energy_delay_product(power_cfg);
        let base = if base == 0.0 { 1.0 } else { base };
        let mut row = Vec::new();
        for (ci, _) in matrix.configs.iter().enumerate() {
            let edp = matrix.reports[wi][ci].energy_delay_product(power_cfg) / base;
            per_config[ci].push(edp);
            row.push(edp);
        }
        table.push_row(workload.name(), row);
    }
    let gmeans: Vec<f64> = per_config.iter().map(|v| geometric_mean(v)).collect();
    table.push_row("gmean", gmeans);
    table
}

/// Mean EDP improvement of `config` relative to `baseline` over the matrix's
/// workloads, as a fraction in `[0, 1)` (e.g. `0.88` means 88 % lower EDP).
pub fn mean_edp_reduction(matrix: &Matrix, config: NamedConfig, baseline: NamedConfig) -> f64 {
    let power_cfg = PowerConfig::default();
    let ratios: Vec<f64> = matrix
        .workloads
        .iter()
        .filter_map(|&w| {
            let a = matrix.report(w, config)?.energy_delay_product(&power_cfg);
            let b = matrix.report(w, baseline)?.energy_delay_product(&power_cfg);
            if b == 0.0 {
                None
            } else {
                Some(a / b)
            }
        })
        .collect();
    1.0 - geometric_mean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use ar_workloads::WorkloadKind;

    fn matrix() -> Matrix {
        Matrix::run(
            &[WorkloadKind::Mac],
            &[NamedConfig::Dram, NamedConfig::Hmc, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        )
    }

    #[test]
    fn energy_table_normalizes_dram_total_to_one() {
        let m = matrix();
        let t = figure_energy(&m, EnergyMetric::Energy, "Figure 5.6 (test)");
        assert!((t.value("mac/DRAM", "total").unwrap() - 1.0).abs() < 1e-9);
        for column in ["cache", "memory", "network"] {
            assert!(t.value("mac/ARF-tid", column).unwrap() >= 0.0);
        }
    }

    #[test]
    fn power_and_edp_tables_have_expected_shape() {
        let m = matrix();
        let p = figure_energy(&m, EnergyMetric::Power, "Figure 5.5 (test)");
        assert_eq!(p.rows.len(), 3);
        let edp = figure_energy(&m, EnergyMetric::EnergyDelayProduct, "Figure 5.7 (test)");
        assert_eq!(edp.rows.len(), 2, "one workload row plus the gmean row");
        assert!((edp.value("mac", "DRAM").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn offloading_improves_edp_on_random_mac() {
        let m = Matrix::run(
            &[WorkloadKind::RandMac],
            &[NamedConfig::Dram, NamedConfig::Hmc, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        let reduction = mean_edp_reduction(&m, NamedConfig::ArfTid, NamedConfig::Hmc);
        assert!(
            reduction > 0.0,
            "ARF-tid must reduce EDP relative to HMC on rand_mac, got {reduction:.3}"
        );
    }
}
