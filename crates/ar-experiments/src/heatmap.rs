//! Figure 5.3: per-cube heatmaps of operand-buffer stalls, update
//! distribution and operand distribution for `lud` under ARF-tid and
//! ARF-addr.

use crate::scale::ExperimentScale;
use crate::table::Table;
use ar_system::{SimReport, Simulation};
use ar_types::config::NamedConfig;
use ar_workloads::WorkloadKind;

/// The per-cube activity of one configuration, as three parallel vectors
/// indexed by cube id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    /// Configuration label.
    pub config: String,
    /// Operand-buffer stall cycles per cube.
    pub operand_buffer_stalls: Vec<u64>,
    /// Updates computed per cube.
    pub update_distribution: Vec<u64>,
    /// Operand requests served per cube.
    pub operand_distribution: Vec<u64>,
}

impl Heatmap {
    /// Builds the heatmap data from a report.
    pub fn from_report(report: &SimReport) -> Self {
        Heatmap {
            config: report.config_label.clone(),
            operand_buffer_stalls: report.cube_activity.operand_buffer_stalls.clone(),
            update_distribution: report.cube_activity.updates_computed.clone(),
            operand_distribution: report.cube_activity.operands_served.clone(),
        }
    }

    /// Coefficient of variation of the update distribution: 0 means perfectly
    /// balanced across cubes; larger means more imbalance (the property that
    /// separates ARF-tid from ARF-addr in the paper's discussion).
    pub fn update_imbalance(&self) -> f64 {
        imbalance(&self.update_distribution)
    }
}

fn imbalance(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt() / mean
}

/// Runs `lud` under ARF-tid and ARF-addr and returns both heatmaps
/// (Fig. 5.3's two rows).
pub fn figure_5_3(scale: ExperimentScale) -> Vec<Heatmap> {
    let base = scale.system_config();
    [NamedConfig::ArfTid, NamedConfig::ArfAddr]
        .iter()
        .map(|&config| {
            let report = Simulation::builder()
                .config(base.clone())
                .named(config)
                .workload(WorkloadKind::Lud)
                .size(scale.size_class())
                .build()
                .expect("built-in scales are valid")
                .run();
            Heatmap::from_report(&report)
        })
        .collect()
}

/// Renders a set of heatmaps as a table with one row per `(config, metric)`
/// and one column per cube.
pub fn to_table(heatmaps: &[Heatmap], title: &str) -> Table {
    let cubes = heatmaps.first().map(|h| h.update_distribution.len()).unwrap_or(0);
    let columns: Vec<String> = (0..cubes).map(|c| format!("cube{c}")).collect();
    let mut table = Table::new(title, "config/metric", columns);
    for h in heatmaps {
        table.push_row(
            format!("{}/stalls", h.config),
            h.operand_buffer_stalls.iter().map(|&v| v as f64).collect(),
        );
        table.push_row(
            format!("{}/updates", h.config),
            h.update_distribution.iter().map(|&v| v as f64).collect(),
        );
        table.push_row(
            format!("{}/operands", h.config),
            h.operand_distribution.iter().map(|&v| v as f64).collect(),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_is_zero_for_uniform_and_positive_for_skewed() {
        assert_eq!(imbalance(&[5, 5, 5, 5]), 0.0);
        assert!(imbalance(&[10, 0, 0, 0]) > 1.0);
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
    }

    #[test]
    fn lud_heatmaps_cover_every_cube_and_all_updates() {
        let maps = figure_5_3(ExperimentScale::Quick);
        assert_eq!(maps.len(), 2);
        let cubes = ExperimentScale::Quick.system_config().network.cubes;
        for h in &maps {
            assert_eq!(h.update_distribution.len(), cubes);
            assert!(h.update_distribution.iter().sum::<u64>() > 0, "{}: no updates", h.config);
        }
        let table = to_table(&maps, "Figure 5.3 (test)");
        assert_eq!(table.rows.len(), 6);
    }
}
