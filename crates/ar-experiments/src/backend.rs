//! Where matrix cells execute: in-process through [`ar_system::Sweep`], or
//! remotely through a persistent [`ar_serve`] sweep server.
//!
//! The figure modules all funnel through [`Matrix::run`](crate::Matrix::run),
//! so the execution backend is a single process-wide switch rather than a
//! parameter threaded through every artefact: `ar-experiments --cached ADDR`
//! calls [`use_server`] once at startup, and every matrix after that is
//! resolved against the server's content-addressed report cache — a repeated
//! `--all` run recomputes only the cells whose effective configuration
//! actually changed.

use std::sync::RwLock;

static SERVER: RwLock<Option<String>> = RwLock::new(None);

/// Routes all subsequent matrix runs through the sweep server at `addr`.
pub fn use_server(addr: impl Into<String>) {
    *SERVER.write().expect("backend lock poisoned") = Some(addr.into());
}

/// Routes all subsequent matrix runs through the in-process sweep (the
/// default).
pub fn use_local() {
    *SERVER.write().expect("backend lock poisoned") = None;
}

/// The currently configured server address, if any.
pub fn server() -> Option<String> {
    SERVER.read().expect("backend lock poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_switch_round_trips() {
        // Serialised in one test: the switch is process-global.
        assert_eq!(server(), None);
        use_server("127.0.0.1:7171");
        assert_eq!(server(), Some("127.0.0.1:7171".to_string()));
        use_local();
        assert_eq!(server(), None);
    }
}
