//! Figure 5.1: runtime speedup over the DRAM baseline.

use crate::matrix::Matrix;
use crate::table::Table;
use ar_power::geometric_mean;
use ar_types::config::NamedConfig;

/// Builds the Fig. 5.1 speedup table from a run matrix that includes the
/// DRAM baseline column. Every value is `runtime(DRAM) / runtime(config)`;
/// the final `gmean` row is the geometric mean over the workloads.
pub fn figure_5_1(matrix: &Matrix, title: &str) -> Table {
    let columns: Vec<String> = matrix.configs.iter().map(|c| c.to_string()).collect();
    let mut table = Table::new(title, "workload", columns);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); matrix.configs.len()];
    for (wi, workload) in matrix.workloads.iter().enumerate() {
        let baseline =
            matrix.report(*workload, NamedConfig::Dram).unwrap_or(&matrix.reports[wi][0]);
        let mut row = Vec::new();
        for (ci, _) in matrix.configs.iter().enumerate() {
            let speedup = matrix.reports[wi][ci].speedup_over(baseline);
            per_config[ci].push(speedup);
            row.push(speedup);
        }
        table.push_row(workload.name(), row);
    }
    let gmeans: Vec<f64> = per_config.iter().map(|v| geometric_mean(v)).collect();
    table.push_row("gmean", gmeans);
    table
}

/// Speedup of one configuration over another, averaged (geometric mean) over
/// the matrix's workloads — used by EXPERIMENTS.md to report the headline
/// "ARF over HMC" improvement.
pub fn mean_speedup_over(matrix: &Matrix, config: NamedConfig, baseline: NamedConfig) -> f64 {
    let ratios: Vec<f64> = matrix
        .workloads
        .iter()
        .filter_map(|&w| {
            let a = matrix.report(w, config)?;
            let b = matrix.report(w, baseline)?;
            Some(a.speedup_over(b))
        })
        .collect();
    geometric_mean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use ar_workloads::WorkloadKind;

    #[test]
    fn speedup_table_has_dram_column_of_ones() {
        let m = Matrix::run(
            &[WorkloadKind::Mac],
            &[NamedConfig::Dram, NamedConfig::Hmc, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        let t = figure_5_1(&m, "Figure 5.1 (test)");
        assert_eq!(t.value("mac", "DRAM"), Some(1.0));
        let arf = t.value("mac", "ARF-tid").unwrap();
        assert!(arf > 0.0);
        // gmean row exists and matches the single workload.
        assert!((t.value("gmean", "ARF-tid").unwrap() - arf).abs() < 1e-9);
    }

    #[test]
    fn active_routing_beats_the_hmc_baseline_on_random_mac() {
        // The headline claim of the paper: offloading the multiply-accumulate
        // loop over a low-reuse, irregularly accessed working set must
        // outperform running it on the host (rand_mac is the cleanest such
        // case; sequential mac at tiny scale legitimately favours the caches,
        // which is exactly the locality regime of Fig. 5.8).
        let m = Matrix::run(
            &[WorkloadKind::RandMac],
            &[NamedConfig::Hmc, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        let hmc = m.report(WorkloadKind::RandMac, NamedConfig::Hmc).unwrap();
        let arf = m.report(WorkloadKind::RandMac, NamedConfig::ArfTid).unwrap();
        assert!(
            arf.network_cycles < hmc.network_cycles,
            "ARF-tid ({} cycles) must beat HMC ({} cycles) on rand_mac",
            arf.network_cycles,
            hmc.network_cycles
        );
        let gain = mean_speedup_over(&m, NamedConfig::ArfTid, NamedConfig::Hmc);
        assert!(gain > 1.0);
    }
}
