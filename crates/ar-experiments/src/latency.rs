//! Figure 5.2: update offloading roundtrip latency, broken into request,
//! stall and response components.

use crate::matrix::Matrix;
use crate::table::Table;
use ar_types::config::NamedConfig;

/// The three Active-Routing configurations plotted by Fig. 5.2.
pub const LATENCY_CONFIGS: [NamedConfig; 3] =
    [NamedConfig::Art, NamedConfig::ArfTid, NamedConfig::ArfAddr];

/// Builds the Fig. 5.2 latency table: one row per `(workload, config)` pair
/// with request / stall / response columns in network cycles.
pub fn figure_5_2(matrix: &Matrix, title: &str) -> Table {
    let columns = vec!["req_lat".to_string(), "stall_lat".to_string(), "resp_lat".to_string()];
    let mut table = Table::new(title, "workload/config", columns);
    for &workload in &matrix.workloads {
        for &config in &matrix.configs {
            if !LATENCY_CONFIGS.contains(&config) {
                continue;
            }
            if let Some(report) = matrix.report(workload, config) {
                let l = report.update_latency;
                table.push_row(
                    format!("{}/{}", workload.name(), config),
                    vec![l.request, l.stall, l.response],
                );
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use ar_workloads::WorkloadKind;

    #[test]
    fn latency_breakdown_is_reported_for_offloading_configs_only() {
        let m = Matrix::run(
            &[WorkloadKind::Mac],
            &[NamedConfig::Hmc, NamedConfig::Art, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        let t = figure_5_2(&m, "Figure 5.2 (test)");
        assert_eq!(t.rows.len(), 2, "HMC has no update latency to report");
        let req = t.value("mac/ARF-tid", "req_lat").unwrap();
        let resp = t.value("mac/ARF-tid", "resp_lat").unwrap();
        assert!(req > 0.0, "updates travel at least one hop");
        assert!(resp > 0.0, "operand fetch and ALU take time");
    }

    #[test]
    fn art_single_port_suffers_more_than_the_forest() {
        // The many-to-one hotspot of the static ART scheme (Section 5.2.2):
        // its total update latency must exceed ARF-tid's, which spreads the
        // trees over all ports.
        let m = Matrix::run(
            &[WorkloadKind::RandMac],
            &[NamedConfig::Art, NamedConfig::ArfTid],
            ExperimentScale::Quick,
        );
        let art = m.report(WorkloadKind::RandMac, NamedConfig::Art).unwrap().update_latency;
        let arf = m.report(WorkloadKind::RandMac, NamedConfig::ArfTid).unwrap().update_latency;
        assert!(
            art.total() >= arf.total(),
            "ART ({:.1}) should not beat ARF-tid ({:.1}) on roundtrip latency",
            art.total(),
            arf.total()
        );
    }
}
