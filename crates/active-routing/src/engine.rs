//! The per-cube Active-Routing Engine (Section 3.2, Fig. 3.3a and Fig. 3.4).
//!
//! One [`ActiveRoutingEngine`] sits on each cube's intra-cube crossbar. It
//! decodes the active packets delivered to its cube and implements the three
//! phases of Active-Routing processing:
//!
//! * **tree construction** — an Update packet that is not destined for this
//!   cube registers (or extends) the flow's ARTree state and is forwarded one
//!   hop towards its compute cube;
//! * **near-data processing** — an Update destined for this cube reserves an
//!   operand buffer (two-operand operations) or takes the single-operand
//!   bypass, requests its operands from the local vaults or a remote cube,
//!   and commits the operation into the flow's partial result through the ALU;
//! * **network aggregation** — Gather requests mark the flow and are
//!   replicated down the tree; once every update counted at a node has
//!   committed in its subtree, the node replies to its parent with its partial
//!   result and releases the flow entry.
//!
//! The engine is a pure state machine over packets: it does not own the
//! network or the vaults. Every call returns an [`AreOutput`] listing the
//! packets to inject into the memory network and the vault accesses to
//! perform; the full-system model in `ar-system` (or a unit test) plumbs
//! them. Operand *values* come from a functional memory owned by the caller
//! and are handed back through [`ActiveRoutingEngine::complete_vault_read`].

use crate::flow::FlowTable;
use crate::operand::OperandPool;
use ar_network::DragonflyTopology;
use ar_sim::{Component, LatencyQueue, NextWake, SchedCtx};
use ar_types::addr::AddressMap;
use ar_types::config::AreConfig;
use ar_types::hash::FastHashMap;
use ar_types::ids::NetNode;
use ar_types::json::{Json, JsonError};
use ar_types::packet::{ActiveKind, OperandSlot, Packet, PacketKind};
use ar_types::{Addr, CubeId, Cycle, FlowId, ReduceOp};
use std::collections::VecDeque;

/// A read or write the engine wants performed against the local cube's
/// vaults. Reads are answered through
/// [`ActiveRoutingEngine::complete_vault_read`]; writes are fire-and-forget
/// (the caller applies the value to its functional memory and charges the
/// vault timing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VaultAccess {
    /// Engine-local identifier of the access (unique per engine).
    pub id: u64,
    /// Byte address of the access.
    pub addr: Addr,
    /// `Some(value)` for writes (the value to store), `None` for reads.
    pub write_value: Option<f64>,
}

impl VaultAccess {
    /// Returns true if this access is a write.
    pub fn is_write(&self) -> bool {
        self.write_value.is_some()
    }
}

/// Everything the engine produced while handling one event.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct AreOutput {
    /// Packets to inject into the memory network (source is this cube).
    pub packets: Vec<Packet>,
    /// Accesses to perform against the local cube's vaults.
    pub vault_accesses: Vec<VaultAccess>,
}

impl AreOutput {
    /// Merges another output into this one, draining `other` in place.
    ///
    /// Both lists are appended, so within each list the emission order of
    /// `other` is preserved after `self`'s; `other` is left empty with its
    /// capacity intact, ready to be recycled as an accumulator. Callers that
    /// combine outputs of several engines (the sharded kernel's per-cube
    /// outbox merge) must merge in ascending cube-index order: packets
    /// injected into the memory network in the same cycle are queued per
    /// link in merge order, so any other order would change link-level FIFO
    /// order and with it the report.
    pub fn merge_from(&mut self, other: &mut AreOutput) {
        self.packets.append(&mut other.packets);
        self.vault_accesses.append(&mut other.vault_accesses);
    }

    /// Clears both lists, keeping their capacity for reuse.
    pub fn clear(&mut self) {
        self.packets.clear();
        self.vault_accesses.clear();
    }

    /// Returns true if nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty() && self.vault_accesses.is_empty()
    }
}

/// One completed update's latency breakdown (Fig. 5.2): request (host port to
/// compute cube), stall (waiting for an operand buffer at the compute cube)
/// and response (operand fetch plus ALU) components, in network cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateLatencySample {
    /// Unique id of the update.
    pub update_id: u64,
    /// Cycles from MI injection to arrival at the compute cube.
    pub request: u64,
    /// Cycles spent waiting at the compute cube before operands were requested.
    pub stall: u64,
    /// Cycles from operand request to commit.
    pub response: u64,
}

impl UpdateLatencySample {
    /// Total roundtrip latency of the update.
    pub fn total(&self) -> u64 {
        self.request + self.stall + self.response
    }
}

/// Aggregate statistics of one Active-Routing Engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreStats {
    /// Updates that arrived at this cube (as a tree node, destined or not).
    pub updates_received: u64,
    /// Updates computed at this cube (the "update distribution" of Fig. 5.3).
    pub updates_computed: u64,
    /// Updates forwarded towards their compute cube.
    pub updates_forwarded: u64,
    /// Update commits performed by the ALU.
    pub updates_committed: u64,
    /// Operand requests issued to the local vaults.
    pub operand_reads_local: u64,
    /// Operand requests sent to remote cubes.
    pub operand_reads_remote: u64,
    /// Operand requests served on behalf of remote cubes (the "operand
    /// distribution" of Fig. 5.3).
    pub operands_served: u64,
    /// Cycles updates spent stalled waiting for a free operand buffer
    /// (the "operand buffer stalls" heatmap of Fig. 5.3).
    pub operand_buffer_stall_cycles: u64,
    /// ALU operations performed.
    pub alu_ops: u64,
    /// In-memory writes performed for non-reduction updates (mov /
    /// const_assign).
    pub memory_writes: u64,
    /// Gather requests handled.
    pub gather_requests: u64,
    /// Gather responses sent to a parent.
    pub gather_responses_sent: u64,
    /// Flows registered in the flow table over the engine's lifetime.
    pub flows_registered: u64,
    /// Number of latency samples accumulated.
    pub latency_samples: u64,
    /// Sum of request latencies over all samples.
    pub request_latency_sum: u64,
    /// Sum of stall latencies over all samples.
    pub stall_latency_sum: u64,
    /// Sum of response latencies over all samples.
    pub response_latency_sum: u64,
}

impl AreStats {
    /// Serializes the statistics for checkpointed state.
    pub fn state_to_json(&self) -> Json {
        Json::obj([
            ("updates_received", Json::from(self.updates_received)),
            ("updates_computed", Json::from(self.updates_computed)),
            ("updates_forwarded", Json::from(self.updates_forwarded)),
            ("updates_committed", Json::from(self.updates_committed)),
            ("operand_reads_local", Json::from(self.operand_reads_local)),
            ("operand_reads_remote", Json::from(self.operand_reads_remote)),
            ("operands_served", Json::from(self.operands_served)),
            ("operand_buffer_stall_cycles", Json::from(self.operand_buffer_stall_cycles)),
            ("alu_ops", Json::from(self.alu_ops)),
            ("memory_writes", Json::from(self.memory_writes)),
            ("gather_requests", Json::from(self.gather_requests)),
            ("gather_responses_sent", Json::from(self.gather_responses_sent)),
            ("flows_registered", Json::from(self.flows_registered)),
            ("latency_samples", Json::from(self.latency_samples)),
            ("request_latency_sum", Json::from(self.request_latency_sum)),
            ("stall_latency_sum", Json::from(self.stall_latency_sum)),
            ("response_latency_sum", Json::from(self.response_latency_sum)),
        ])
    }

    /// Decodes statistics produced by [`AreStats::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn state_from_json(doc: &Json) -> Result<AreStats, JsonError> {
        Ok(AreStats {
            updates_received: doc.req_u64("updates_received")?,
            updates_computed: doc.req_u64("updates_computed")?,
            updates_forwarded: doc.req_u64("updates_forwarded")?,
            updates_committed: doc.req_u64("updates_committed")?,
            operand_reads_local: doc.req_u64("operand_reads_local")?,
            operand_reads_remote: doc.req_u64("operand_reads_remote")?,
            operands_served: doc.req_u64("operands_served")?,
            operand_buffer_stall_cycles: doc.req_u64("operand_buffer_stall_cycles")?,
            alu_ops: doc.req_u64("alu_ops")?,
            memory_writes: doc.req_u64("memory_writes")?,
            gather_requests: doc.req_u64("gather_requests")?,
            gather_responses_sent: doc.req_u64("gather_responses_sent")?,
            flows_registered: doc.req_u64("flows_registered")?,
            latency_samples: doc.req_u64("latency_samples")?,
            request_latency_sum: doc.req_u64("request_latency_sum")?,
            stall_latency_sum: doc.req_u64("stall_latency_sum")?,
            response_latency_sum: doc.req_u64("response_latency_sum")?,
        })
    }

    /// Mean request latency in cycles.
    pub fn mean_request_latency(&self) -> f64 {
        mean(self.request_latency_sum, self.latency_samples)
    }

    /// Mean operand-buffer stall latency in cycles.
    pub fn mean_stall_latency(&self) -> f64 {
        mean(self.stall_latency_sum, self.latency_samples)
    }

    /// Mean response latency in cycles.
    pub fn mean_response_latency(&self) -> f64 {
        mean(self.response_latency_sum, self.latency_samples)
    }
}

fn mean(sum: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

/// Context of an update being processed at this cube.
#[derive(Debug, Clone, Copy, PartialEq)]
struct UpdateContext {
    flow: FlowId,
    op: ReduceOp,
    update_id: u64,
    /// Cycle the MI injected the update (from the packet).
    issued_at: Cycle,
    /// Cycle the update arrived at this (compute) cube.
    arrived_at: Cycle,
    /// Cycle its operand requests were issued.
    requested_at: Cycle,
    /// Target address (needed by non-reduction updates that write memory).
    target: Addr,
    /// Immediate operand (const_assign).
    imm: Option<f64>,
    /// True if the flow table tracks this update (reduction ops only).
    tracked: bool,
}

/// Why a local vault read was issued.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ReadPurpose {
    /// Operand `which` of an update computed at this cube.
    LocalOperand { ctx: UpdateContext, slot: Option<usize>, which: u8 },
    /// Operand fetch on behalf of a remote cube's update; the value is sent
    /// back in an OperandResp packet.
    RemoteOperand {
        requester: NetNode,
        flow: FlowId,
        slot: Option<OperandSlot>,
        which: u8,
        update_id: u64,
        op: ReduceOp,
    },
}

/// A two-operand update waiting for a free operand buffer entry.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StalledUpdate {
    ctx: UpdateContext,
    src1: Addr,
    src2: Addr,
    stalled_since: Cycle,
}

/// An operation whose operands are ready, waiting in the ALU pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AluOp {
    ctx: UpdateContext,
    src1: f64,
    src2: f64,
    slot: Option<usize>,
}

/// The Active-Routing Engine of one memory cube.
#[derive(Debug)]
pub struct ActiveRoutingEngine {
    cube: CubeId,
    topology: DragonflyTopology,
    map: AddressMap,
    flows: FlowTable,
    operands: OperandPool,
    decode_latency: Cycle,
    alu_issue_per_cycle: u32,
    /// Updates waiting for an operand buffer entry.
    stalled: VecDeque<StalledUpdate>,
    /// Outstanding local vault reads issued by this engine. Keyed by small
    /// integers and probed on every operand fetch/completion, so it uses the
    /// deterministic [`FastHashMap`]; it is never iterated.
    pending_reads: FastHashMap<u64, ReadPurpose>,
    /// Operations waiting for (or inside) the ALU pipeline.
    alu_queue: LatencyQueue<AluOp>,
    /// Output produced by [`Component::wake`], drained by the system through
    /// [`ActiveRoutingEngine::take_output`].
    pending_output: AreOutput,
    next_access_id: u64,
    next_packet_seq: u64,
    stats: AreStats,
}

impl ActiveRoutingEngine {
    /// Creates the engine for `cube` in a memory network described by
    /// `topology` with address interleaving `map`.
    pub fn new(
        cube: CubeId,
        cfg: &AreConfig,
        topology: DragonflyTopology,
        map: AddressMap,
    ) -> Self {
        ActiveRoutingEngine {
            cube,
            topology,
            map,
            flows: FlowTable::new(cfg.flow_table_entries),
            operands: OperandPool::new(cfg.operand_buffers),
            decode_latency: cfg.decode_latency,
            alu_issue_per_cycle: cfg.alu_issue_per_cycle.max(1),
            stalled: VecDeque::new(),
            pending_reads: FastHashMap::default(),
            alu_queue: LatencyQueue::new(),
            pending_output: AreOutput::default(),
            next_access_id: 0,
            next_packet_seq: 0,
            stats: AreStats::default(),
        }
    }

    /// The cube this engine belongs to.
    pub fn cube(&self) -> CubeId {
        self.cube
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &AreStats {
        &self.stats
    }

    /// Read-only access to the flow table (for tests and reporting).
    pub fn flows(&self) -> &FlowTable {
        &self.flows
    }

    /// Read-only access to the operand buffer pool.
    pub fn operand_pool(&self) -> &OperandPool {
        &self.operands
    }

    /// Returns true when the engine holds no in-flight work: no live flows,
    /// no stalled updates, no outstanding vault reads and an empty ALU
    /// pipeline.
    pub fn is_idle(&self) -> bool {
        self.flows.is_empty()
            && self.stalled.is_empty()
            && self.pending_reads.is_empty()
            && self.alu_queue.is_empty()
    }

    /// Returns true when the engine holds no in-flight *data processing* work
    /// but may still track flows waiting for their gather.
    pub fn is_quiescent(&self) -> bool {
        self.stalled.is_empty() && self.pending_reads.is_empty() && self.alu_queue.is_empty()
    }

    fn next_packet_id(&mut self) -> u64 {
        let id = ((self.cube.index() as u64) << 40) | self.next_packet_seq;
        self.next_packet_seq += 1;
        id
    }

    fn next_access(&mut self) -> u64 {
        let id = self.next_access_id;
        self.next_access_id += 1;
        id
    }

    fn cube_of(&self, addr: Addr) -> CubeId {
        CubeId::new(self.map.cube_of(addr))
    }

    fn make_packet(&mut self, dst: NetNode, kind: ActiveKind, now: Cycle) -> Packet {
        let id = self.next_packet_id();
        Packet::new(id, NetNode::Cube(self.cube), dst, PacketKind::Active(kind), now)
    }

    /// Handles one packet delivered to this cube by the memory network.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not an active packet; normal memory packets
    /// are handled by the vault controllers, not the ARE.
    pub fn handle_packet(&mut self, now: Cycle, packet: Packet) -> AreOutput {
        let mut out = AreOutput::default();
        self.handle_packet_into(now, packet, &mut out);
        out
    }

    /// Like [`ActiveRoutingEngine::handle_packet`], but appends into a
    /// caller-owned output so a driver handling many packets per cycle can
    /// reuse one accumulator instead of allocating per packet.
    pub fn handle_packet_into(&mut self, now: Cycle, packet: Packet, out: &mut AreOutput) {
        let PacketKind::Active(kind) = packet.kind else {
            panic!("ARE only decodes active packets, got {:?}", packet.kind)
        };
        let now = now + self.decode_latency;
        match kind {
            ActiveKind::Update { .. } => self.handle_update(now, packet.src, kind, out),
            ActiveKind::OperandReq { .. } => self.handle_operand_req(now, packet.src, kind, out),
            ActiveKind::OperandResp { .. } => self.handle_operand_resp(now, kind, out),
            ActiveKind::GatherReq { .. } => self.handle_gather_req(now, packet.src, kind, out),
            ActiveKind::GatherResp { .. } => self.handle_gather_resp(now, packet.src, kind, out),
        }
    }

    fn handle_update(&mut self, now: Cycle, from: NetNode, kind: ActiveKind, out: &mut AreOutput) {
        let ActiveKind::Update {
            flow,
            op,
            src1,
            src2,
            imm,
            compute_cube,
            thread,
            update_id,
            issued_at,
        } = kind
        else {
            unreachable!("handle_update called with a non-update packet")
        };
        self.stats.updates_received += 1;
        let tracked = op.is_reduction();
        if tracked {
            let was_known = self.flows.get(&flow).is_some();
            let entry = self.flows.entry_or_register(flow, op, from);
            if !was_known {
                self.stats.flows_registered += 1;
            }
            entry.req_counter += 1;
        }

        if compute_cube != self.cube {
            // Tree construction: extend the ARTree one hop towards the compute
            // cube and forward the update.
            self.stats.updates_forwarded += 1;
            let next =
                self.topology.next_hop(NetNode::Cube(self.cube), NetNode::Cube(compute_cube));
            if tracked {
                if let Some(entry) = self.flows.get_mut(&flow) {
                    entry.children.insert(next);
                }
            }
            let fwd = ActiveKind::Update {
                flow,
                op,
                src1,
                src2,
                imm,
                compute_cube,
                thread,
                update_id,
                issued_at,
            };
            let packet = self.make_packet(next, fwd, now);
            out.packets.push(packet);
            return;
        }

        // Near-data processing at the compute cube.
        self.stats.updates_computed += 1;
        let ctx = UpdateContext {
            flow,
            op,
            update_id,
            issued_at,
            arrived_at: now,
            requested_at: now,
            target: Addr::new(flow.target),
            imm,
            tracked,
        };
        match op.operand_count() {
            0 => self.start_zero_operand(now, ctx, out),
            1 => self.start_single_operand(now, ctx, src1, out),
            _ => {
                let src2 = src2.expect("two-operand update must carry src2");
                self.start_two_operand(now, ctx, src1, src2, out)
            }
        }
    }

    fn start_zero_operand(&mut self, now: Cycle, ctx: UpdateContext, out: &mut AreOutput) {
        // const_assign / nop: write the immediate (if any) to the target and
        // commit straight away — there is nothing to fetch.
        if let (ReduceOp::ConstAssign, Some(value)) = (ctx.op, ctx.imm) {
            let id = self.next_access();
            out.vault_accesses.push(VaultAccess { id, addr: ctx.target, write_value: Some(value) });
            self.stats.memory_writes += 1;
        }
        self.alu_queue.push_after(
            now,
            ctx.op.alu_latency(),
            AluOp { ctx, src1: ctx.imm.unwrap_or(0.0), src2: 0.0, slot: None },
        );
    }

    fn start_single_operand(
        &mut self,
        now: Cycle,
        mut ctx: UpdateContext,
        src1: Addr,
        out: &mut AreOutput,
    ) {
        // Single-operand bypass: no operand buffer entry is reserved.
        ctx.requested_at = now;
        self.issue_operand_fetch(now, ctx, src1, None, 0, out);
    }

    fn start_two_operand(
        &mut self,
        now: Cycle,
        ctx: UpdateContext,
        src1: Addr,
        src2: Addr,
        out: &mut AreOutput,
    ) {
        match self.operands.try_reserve(ctx.flow, ctx.op, ctx.update_id) {
            Some(slot) => self.issue_two_operand(now, ctx, src1, src2, slot, out),
            None => {
                self.stalled.push_back(StalledUpdate { ctx, src1, src2, stalled_since: now });
            }
        }
    }

    fn issue_two_operand(
        &mut self,
        now: Cycle,
        mut ctx: UpdateContext,
        src1: Addr,
        src2: Addr,
        slot: usize,
        out: &mut AreOutput,
    ) {
        ctx.requested_at = now;
        self.issue_operand_fetch(now, ctx, src1, Some(slot), 0, out);
        self.issue_operand_fetch(now, ctx, src2, Some(slot), 1, out);
    }

    /// Issues the fetch of one operand: a local vault read when the operand
    /// lives in this cube, otherwise an OperandReq packet to the owning cube.
    fn issue_operand_fetch(
        &mut self,
        now: Cycle,
        ctx: UpdateContext,
        addr: Addr,
        slot: Option<usize>,
        which: u8,
        out: &mut AreOutput,
    ) {
        let owner = self.cube_of(addr);
        if owner == self.cube {
            self.stats.operand_reads_local += 1;
            let id = self.next_access();
            self.pending_reads.insert(id, ReadPurpose::LocalOperand { ctx, slot, which });
            out.vault_accesses.push(VaultAccess { id, addr, write_value: None });
        } else {
            self.stats.operand_reads_remote += 1;
            let kind = ActiveKind::OperandReq {
                flow: ctx.flow,
                slot: slot.map(|index| OperandSlot { cube: self.cube, index }),
                addr,
                which,
                update_id: ctx.update_id,
                op: ctx.op,
            };
            // Remember the in-flight remote fetch so the OperandResp can be
            // matched back to its update context.
            let key = remote_key(ctx.update_id, which);
            self.pending_reads.insert(key, ReadPurpose::LocalOperand { ctx, slot, which });
            let packet = self.make_packet(NetNode::Cube(owner), kind, now);
            out.packets.push(packet);
        }
    }

    fn handle_operand_req(
        &mut self,
        _now: Cycle,
        from: NetNode,
        kind: ActiveKind,
        out: &mut AreOutput,
    ) {
        let ActiveKind::OperandReq { flow, slot, addr, which, update_id, op } = kind else {
            unreachable!("handle_operand_req called with a different packet")
        };
        self.stats.operands_served += 1;
        let id = self.next_access();
        self.pending_reads.insert(
            id,
            ReadPurpose::RemoteOperand { requester: from, flow, slot, which, update_id, op },
        );
        out.vault_accesses.push(VaultAccess { id, addr, write_value: None });
    }

    fn handle_operand_resp(&mut self, now: Cycle, kind: ActiveKind, _out: &mut AreOutput) {
        let ActiveKind::OperandResp { which, value, update_id, .. } = kind else {
            unreachable!("handle_operand_resp called with a different packet")
        };
        let key = remote_key(update_id, which);
        let Some(ReadPurpose::LocalOperand { ctx, slot, which }) = self.pending_reads.remove(&key)
        else {
            // The response does not match any outstanding fetch; drop it.
            return;
        };
        self.operand_arrived(now, ctx, slot, which, value);
    }

    /// Delivers the value of a local vault read previously requested through
    /// [`AreOutput::vault_accesses`].
    pub fn complete_vault_read(&mut self, now: Cycle, access_id: u64, value: f64) -> AreOutput {
        let mut out = AreOutput::default();
        self.complete_vault_read_into(now, access_id, value, &mut out);
        out
    }

    /// Like [`ActiveRoutingEngine::complete_vault_read`], but appends into a
    /// caller-owned output.
    pub fn complete_vault_read_into(
        &mut self,
        now: Cycle,
        access_id: u64,
        value: f64,
        out: &mut AreOutput,
    ) {
        let Some(purpose) = self.pending_reads.remove(&access_id) else {
            return;
        };
        match purpose {
            ReadPurpose::LocalOperand { ctx, slot, which } => {
                self.operand_arrived(now, ctx, slot, which, value);
            }
            ReadPurpose::RemoteOperand { requester, flow, slot, which, update_id, op } => {
                let kind = ActiveKind::OperandResp { flow, slot, which, value, update_id, op };
                let packet = self.make_packet(requester, kind, now);
                out.packets.push(packet);
            }
        }
    }

    fn operand_arrived(
        &mut self,
        now: Cycle,
        ctx: UpdateContext,
        slot: Option<usize>,
        which: u8,
        value: f64,
    ) {
        match slot {
            None => {
                // Single-operand bypass: straight to the ALU.
                self.alu_queue.push_after(
                    now,
                    ctx.op.alu_latency(),
                    AluOp { ctx, src1: value, src2: 0.0, slot: None },
                );
            }
            Some(index) => {
                let ready = {
                    let entry = self
                        .operands
                        .get_mut(index)
                        .expect("operand buffer entry must exist while its update is in flight");
                    entry.record(which, value);
                    entry.ready()
                };
                if let Some((a, b)) = ready {
                    self.alu_queue.push_after(
                        now,
                        ctx.op.alu_latency(),
                        AluOp { ctx, src1: a, src2: b, slot: Some(index) },
                    );
                }
            }
        }
    }

    fn handle_gather_req(
        &mut self,
        now: Cycle,
        from: NetNode,
        kind: ActiveKind,
        out: &mut AreOutput,
    ) {
        let ActiveKind::GatherReq { flow, op, expected_at_root, thread } = kind else {
            unreachable!("handle_gather_req called with a different packet")
        };
        self.stats.gather_requests += 1;
        let was_known = self.flows.get(&flow).is_some();
        let entry = self.flows.entry_or_register(flow, op, from);
        if !was_known {
            self.stats.flows_registered += 1;
        }
        entry.gather_arrivals += 1;
        entry.gather_expected = entry.gather_expected.max(expected_at_root);
        if entry.gather_arrivals < entry.gather_expected {
            // Implicit barrier at the root: wait for the remaining gathers.
            return;
        }
        entry.gflag = true;
        let children: Vec<NetNode> = entry.children.iter().copied().collect();
        for child in children {
            let kind = ActiveKind::GatherReq { flow, op, expected_at_root: 1, thread };
            let packet = self.make_packet(child, kind, now);
            out.packets.push(packet);
        }
        self.try_complete(now, flow, out);
    }

    fn handle_gather_resp(
        &mut self,
        now: Cycle,
        from: NetNode,
        kind: ActiveKind,
        out: &mut AreOutput,
    ) {
        let ActiveKind::GatherResp { flow, value, updates } = kind else {
            unreachable!("handle_gather_resp called with a different packet")
        };
        if let Some(entry) = self.flows.get_mut(&flow) {
            entry.absorb_child(from, value);
            entry.resp_counter += updates;
        }
        self.try_complete(now, flow, out);
    }

    /// If the subtree rooted at this cube has finished (gather requested and
    /// every counted update committed), reply to the parent and release the
    /// flow entry.
    fn try_complete(&mut self, now: Cycle, flow: FlowId, out: &mut AreOutput) {
        let done = match self.flows.get(&flow) {
            Some(entry) => entry.gflag && entry.req_counter == entry.resp_counter,
            None => false,
        };
        if !done {
            return;
        }
        let entry = self.flows.release(&flow).expect("checked above");
        self.stats.gather_responses_sent += 1;
        let kind = ActiveKind::GatherResp { flow, value: entry.result, updates: entry.req_counter };
        let packet = self.make_packet(entry.parent, kind, now);
        out.packets.push(packet);
    }

    /// Drains the output accumulated by [`Component::wake`] calls since the
    /// last drain.
    pub fn take_output(&mut self) -> AreOutput {
        std::mem::take(&mut self.pending_output)
    }

    /// Advances the engine by one network cycle: retries updates stalled on
    /// the operand buffer pool and commits operations leaving the ALU.
    pub fn tick(&mut self, now: Cycle) -> AreOutput {
        let mut out = AreOutput::default();
        self.tick_into(now, &mut out);
        out
    }

    /// Like [`ActiveRoutingEngine::tick`], but appends into a caller-owned
    /// output.
    pub fn tick_into(&mut self, now: Cycle, out: &mut AreOutput) {
        // Retry stalled two-operand updates while buffer entries are free.
        while let Some(stalled) = self.stalled.front().copied() {
            match self.operands.try_reserve(stalled.ctx.flow, stalled.ctx.op, stalled.ctx.update_id)
            {
                Some(slot) => {
                    self.stalled.pop_front();
                    self.stats.operand_buffer_stall_cycles +=
                        now.saturating_sub(stalled.stalled_since);
                    self.issue_two_operand(now, stalled.ctx, stalled.src1, stalled.src2, slot, out);
                }
                None => {
                    // Account one stall cycle for every update still waiting.
                    self.stats.operand_buffer_stall_cycles += self.stalled.len() as u64;
                    break;
                }
            }
        }

        // Commit up to `alu_issue_per_cycle` operations whose ALU latency has
        // elapsed.
        for _ in 0..self.alu_issue_per_cycle {
            let Some(op) = self.alu_queue.pop_ready(now) else { break };
            self.commit(now, op, out);
        }
    }

    fn commit(&mut self, now: Cycle, alu: AluOp, out: &mut AreOutput) {
        self.stats.alu_ops += 1;
        self.stats.updates_committed += 1;
        let ctx = alu.ctx;

        if let Some(index) = alu.slot {
            self.operands.release(index);
        }

        if ctx.tracked {
            let contribution = ctx.op.apply(ctx.op.identity(), alu.src1, alu.src2);
            if let Some(entry) = self.flows.get_mut(&ctx.flow) {
                entry.commit_value(contribution);
            }
            self.record_latency(now, &ctx);
            self.try_complete(now, ctx.flow, out);
        } else {
            // Non-reduction update (mov): write the fetched value to the
            // target address in this cube's memory.
            if ctx.op == ReduceOp::Mov {
                let id = self.next_access();
                out.vault_accesses.push(VaultAccess {
                    id,
                    addr: ctx.target,
                    write_value: Some(alu.src1),
                });
                self.stats.memory_writes += 1;
            }
            self.record_latency(now, &ctx);
        }
    }

    /// Serializes the engine's dynamic state: flow table, operand pool,
    /// stalled updates, outstanding reads (sorted by key for a stable
    /// rendering), the ALU pipeline, any undrained wake output, the id
    /// counters and the statistics.
    pub fn state_to_json(&self) -> Json {
        let mut reads: Vec<(&u64, &ReadPurpose)> = self.pending_reads.iter().collect();
        reads.sort_by_key(|(&key, _)| key);
        Json::obj([
            ("flows", self.flows.state_to_json()),
            ("operands", self.operands.state_to_json()),
            (
                "stalled",
                Json::Arr(
                    self.stalled
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("ctx", s.ctx.state_to_json()),
                                ("src1", Json::hex_u64(s.src1.as_u64())),
                                ("src2", Json::hex_u64(s.src2.as_u64())),
                                ("stalled_since", Json::from(s.stalled_since)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pending_reads",
                Json::Arr(
                    reads
                        .into_iter()
                        .map(|(&key, purpose)| {
                            Json::obj([
                                ("key", Json::hex_u64(key)),
                                ("purpose", purpose.state_to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "alu_queue",
                Json::Arr(
                    self.alu_queue
                        .state_entries()
                        .into_iter()
                        .map(|(at, op)| {
                            Json::obj([
                                ("at", Json::from(at)),
                                ("ctx", op.ctx.state_to_json()),
                                ("src1", Json::hex_f64(op.src1)),
                                ("src2", Json::hex_f64(op.src2)),
                                ("slot", opt_index_to_json(op.slot)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("pending_output", self.pending_output.state_to_json()),
            ("next_access_id", Json::from(self.next_access_id)),
            ("next_packet_seq", Json::from(self.next_packet_seq)),
            ("stats", self.stats.state_to_json()),
        ])
    }

    /// Restores dynamic state onto a freshly constructed engine.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the document is malformed or inconsistent
    /// with this engine's configuration (the flow table and operand pool
    /// perform their own validation).
    pub fn load_state(&mut self, doc: &Json) -> Result<(), JsonError> {
        self.flows.load_state(doc.req("flows")?)?;
        self.operands.load_state(doc.req("operands")?)?;
        self.stalled.clear();
        for entry in doc.req_array("stalled")? {
            self.stalled.push_back(StalledUpdate {
                ctx: UpdateContext::state_from_json(entry.req("ctx")?)?,
                src1: Addr::new(entry.req_hex_u64("src1")?),
                src2: Addr::new(entry.req_hex_u64("src2")?),
                stalled_since: entry.req_u64("stalled_since")?,
            });
        }
        self.pending_reads.clear();
        for entry in doc.req_array("pending_reads")? {
            let key = entry.req_hex_u64("key")?;
            let purpose = ReadPurpose::state_from_json(entry.req("purpose")?)?;
            if self.pending_reads.insert(key, purpose).is_some() {
                return Err(JsonError::state("duplicate pending-read key in engine state"));
            }
        }
        self.alu_queue = LatencyQueue::new();
        for entry in doc.req_array("alu_queue")? {
            self.alu_queue.push_at(
                entry.req_u64("at")?,
                AluOp {
                    ctx: UpdateContext::state_from_json(entry.req("ctx")?)?,
                    src1: entry.req_hex_f64("src1")?,
                    src2: entry.req_hex_f64("src2")?,
                    slot: opt_index_from_json(entry, "slot")?,
                },
            );
        }
        self.pending_output = AreOutput::state_from_json(doc.req("pending_output")?)?;
        self.next_access_id = doc.req_u64("next_access_id")?;
        self.next_packet_seq = doc.req_u64("next_packet_seq")?;
        self.stats = AreStats::state_from_json(doc.req("stats")?)?;
        Ok(())
    }

    fn record_latency(&mut self, now: Cycle, ctx: &UpdateContext) {
        let request = ctx.arrived_at.saturating_sub(ctx.issued_at);
        let stall = ctx.requested_at.saturating_sub(ctx.arrived_at);
        let response = now.saturating_sub(ctx.requested_at);
        self.stats.latency_samples += 1;
        self.stats.request_latency_sum += request;
        self.stats.stall_latency_sum += stall;
        self.stats.response_latency_sum += response;
    }
}

impl Component for ActiveRoutingEngine {
    fn next_wake(&self, now: Cycle) -> NextWake {
        // Stalled updates retry (and accrue stall statistics) every cycle;
        // otherwise the next ALU completion is the next internal event.
        // Packet handling and vault-read completions are external stimuli:
        // the caller re-arms the engine after delivering them.
        if !self.stalled.is_empty() {
            NextWake::At(now + 1)
        } else {
            NextWake::from_next(self.alu_queue.next_ready_at())
        }
    }

    fn wake(&mut self, now: Cycle, _ctx: &mut SchedCtx) -> NextWake {
        // Append straight into the pending output — no per-wake allocation.
        let mut out = std::mem::take(&mut self.pending_output);
        self.tick_into(now, &mut out);
        self.pending_output = out;
        self.next_wake(now)
    }
}

/// Key used to match an OperandResp back to the update that requested it.
/// Remote fetches are keyed in the same map as local vault reads; the top bit
/// separates the two namespaces.
fn remote_key(update_id: u64, which: u8) -> u64 {
    (1 << 63) | (update_id << 1) | u64::from(which & 1)
}

fn op_to_json(op: ReduceOp) -> Json {
    Json::from(op.to_string())
}

fn op_from_json(doc: &Json, key: &str) -> Result<ReduceOp, JsonError> {
    let name = doc.req_str(key)?;
    ReduceOp::from_name(name).ok_or_else(|| JsonError::state(format!("unknown reduce op {name:?}")))
}

fn opt_f64_to_json(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::hex_f64)
}

fn opt_f64_from_json(doc: &Json, key: &str) -> Result<Option<f64>, JsonError> {
    match doc.req(key)? {
        Json::Null => Ok(None),
        v => v.as_hex_f64().map(Some).ok_or_else(|| {
            JsonError::state(format!("field {key:?} is not an f64 bit pattern or null"))
        }),
    }
}

fn opt_index_to_json(v: Option<usize>) -> Json {
    v.map_or(Json::Null, Json::from)
}

fn opt_index_from_json(doc: &Json, key: &str) -> Result<Option<usize>, JsonError> {
    match doc.req(key)? {
        Json::Null => Ok(None),
        v => v
            .as_u64()
            .map(|i| Some(i as usize))
            .ok_or_else(|| JsonError::state(format!("field {key:?} is not an index or null"))),
    }
}

impl UpdateContext {
    fn state_to_json(&self) -> Json {
        Json::obj([
            ("flow", self.flow.state_to_json()),
            ("op", op_to_json(self.op)),
            ("update_id", Json::hex_u64(self.update_id)),
            ("issued_at", Json::from(self.issued_at)),
            ("arrived_at", Json::from(self.arrived_at)),
            ("requested_at", Json::from(self.requested_at)),
            ("target", Json::hex_u64(self.target.as_u64())),
            ("imm", opt_f64_to_json(self.imm)),
            ("tracked", Json::from(self.tracked)),
        ])
    }

    fn state_from_json(doc: &Json) -> Result<UpdateContext, JsonError> {
        Ok(UpdateContext {
            flow: FlowId::state_from_json(doc.req("flow")?)?,
            op: op_from_json(doc, "op")?,
            update_id: doc.req_hex_u64("update_id")?,
            issued_at: doc.req_u64("issued_at")?,
            arrived_at: doc.req_u64("arrived_at")?,
            requested_at: doc.req_u64("requested_at")?,
            target: Addr::new(doc.req_hex_u64("target")?),
            imm: opt_f64_from_json(doc, "imm")?,
            tracked: doc.req_bool("tracked")?,
        })
    }
}

impl ReadPurpose {
    fn state_to_json(&self) -> Json {
        match self {
            ReadPurpose::LocalOperand { ctx, slot, which } => Json::obj([
                ("t", Json::from("local")),
                ("ctx", ctx.state_to_json()),
                ("slot", opt_index_to_json(*slot)),
                ("which", Json::from(u64::from(*which))),
            ]),
            ReadPurpose::RemoteOperand { requester, flow, slot, which, update_id, op } => {
                let slot = slot.map_or(Json::Null, |s| {
                    Json::obj([
                        ("cube", Json::from(s.cube.index())),
                        ("index", Json::from(s.index)),
                    ])
                });
                Json::obj([
                    ("t", Json::from("remote")),
                    ("requester", requester.state_to_json()),
                    ("flow", flow.state_to_json()),
                    ("slot", slot),
                    ("which", Json::from(u64::from(*which))),
                    ("update_id", Json::hex_u64(*update_id)),
                    ("op", op_to_json(*op)),
                ])
            }
        }
    }

    fn state_from_json(doc: &Json) -> Result<ReadPurpose, JsonError> {
        match doc.req_str("t")? {
            "local" => Ok(ReadPurpose::LocalOperand {
                ctx: UpdateContext::state_from_json(doc.req("ctx")?)?,
                slot: opt_index_from_json(doc, "slot")?,
                which: doc.req_u32("which")? as u8,
            }),
            "remote" => {
                let slot = match doc.req("slot")? {
                    Json::Null => None,
                    s => Some(OperandSlot {
                        cube: CubeId::new(s.req_usize("cube")?),
                        index: s.req_usize("index")?,
                    }),
                };
                Ok(ReadPurpose::RemoteOperand {
                    requester: NetNode::state_from_json(doc.req("requester")?)?,
                    flow: FlowId::state_from_json(doc.req("flow")?)?,
                    slot,
                    which: doc.req_u32("which")? as u8,
                    update_id: doc.req_hex_u64("update_id")?,
                    op: op_from_json(doc, "op")?,
                })
            }
            other => Err(JsonError::state(format!("unknown read purpose tag {other:?}"))),
        }
    }
}

impl VaultAccess {
    /// Serializes the access for checkpointed state.
    pub fn state_to_json(&self) -> Json {
        Json::obj([
            ("id", Json::hex_u64(self.id)),
            ("addr", Json::hex_u64(self.addr.as_u64())),
            ("write_value", opt_f64_to_json(self.write_value)),
        ])
    }

    /// Decodes an access produced by [`VaultAccess::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn state_from_json(doc: &Json) -> Result<VaultAccess, JsonError> {
        Ok(VaultAccess {
            id: doc.req_hex_u64("id")?,
            addr: Addr::new(doc.req_hex_u64("addr")?),
            write_value: opt_f64_from_json(doc, "write_value")?,
        })
    }
}

impl AreOutput {
    /// Serializes the output lists for checkpointed state.
    pub fn state_to_json(&self) -> Json {
        Json::obj([
            ("packets", Json::Arr(self.packets.iter().map(Packet::state_to_json).collect())),
            (
                "vault_accesses",
                Json::Arr(self.vault_accesses.iter().map(VaultAccess::state_to_json).collect()),
            ),
        ])
    }

    /// Decodes an output produced by [`AreOutput::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn state_from_json(doc: &Json) -> Result<AreOutput, JsonError> {
        let mut out = AreOutput::default();
        for packet in doc.req_array("packets")? {
            out.packets.push(Packet::state_from_json(packet)?);
        }
        for access in doc.req_array("vault_accesses")? {
            out.vault_accesses.push(VaultAccess::state_from_json(access)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::ids::{PortId, ThreadId};

    const PAGE: u64 = 4096;

    fn topo() -> DragonflyTopology {
        DragonflyTopology::paper()
    }

    fn map() -> AddressMap {
        AddressMap::default()
    }

    fn engine(cube: usize) -> ActiveRoutingEngine {
        ActiveRoutingEngine::new(CubeId::new(cube), &AreConfig::default(), topo(), map())
    }

    fn flow(target: u64) -> FlowId {
        FlowId::new(target, PortId::new(0))
    }

    fn update_packet(
        to_cube: usize,
        flow_id: FlowId,
        op: ReduceOp,
        src1: u64,
        src2: Option<u64>,
        compute: usize,
        update_id: u64,
    ) -> Packet {
        Packet::new(
            update_id,
            NetNode::Host(PortId::new(0)),
            NetNode::Cube(CubeId::new(to_cube)),
            PacketKind::Active(ActiveKind::Update {
                flow: flow_id,
                op,
                src1: Addr::new(src1),
                src2: src2.map(Addr::new),
                imm: None,
                compute_cube: CubeId::new(compute),
                thread: ThreadId::new(0),
                update_id,
                issued_at: 0,
            }),
            0,
        )
    }

    fn gather_packet(to_cube: usize, flow_id: FlowId, op: ReduceOp, expected: u32) -> Packet {
        Packet::new(
            9999,
            NetNode::Host(PortId::new(0)),
            NetNode::Cube(CubeId::new(to_cube)),
            PacketKind::Active(ActiveKind::GatherReq {
                flow: flow_id,
                op,
                expected_at_root: expected,
                thread: ThreadId::new(0),
            }),
            0,
        )
    }

    /// Runs the engine until its ALU/stall queues drain, feeding vault reads
    /// back with values from `mem`, and returns all packets it emitted.
    fn run_engine(
        eng: &mut ActiveRoutingEngine,
        mut pending: Vec<AreOutput>,
        mem: &dyn Fn(Addr) -> f64,
        cycles: u64,
    ) -> Vec<Packet> {
        let mut packets = Vec::new();
        for now in 1..cycles {
            let mut outs = std::mem::take(&mut pending);
            outs.push(eng.tick(now));
            let mut next = Vec::new();
            for out in outs {
                packets.extend(out.packets);
                for access in out.vault_accesses {
                    if access.write_value.is_none() {
                        next.push(eng.complete_vault_read(now, access.id, mem(access.addr)));
                    }
                }
            }
            pending = next;
        }
        packets
    }

    #[test]
    fn single_operand_local_update_commits_into_flow_result() {
        // Cube 0 owns page 0; a Sum update on an address in page 0 computes
        // locally and accumulates into the flow entry.
        let mut eng = engine(0);
        let f = flow(0x40);
        let out = eng.handle_packet(0, update_packet(0, f, ReduceOp::Sum, 0x80, None, 0, 1));
        assert_eq!(out.packets.len(), 0);
        assert_eq!(out.vault_accesses.len(), 1);
        assert!(!out.vault_accesses[0].is_write());
        let packets = run_engine(&mut eng, vec![out], &|_| 2.5, 20);
        assert!(packets.is_empty(), "no gather yet, nothing should leave the cube");
        let entry = eng.flows().get(&f).expect("flow registered");
        assert_eq!(entry.req_counter, 1);
        assert_eq!(entry.resp_counter, 1);
        assert!((entry.result - 2.5).abs() < 1e-12);
        assert_eq!(eng.stats().updates_computed, 1);
        assert_eq!(eng.stats().operand_reads_local, 1);
    }

    #[test]
    fn update_not_for_this_cube_is_forwarded_towards_compute_cube() {
        // Cube 0 receives an update whose compute cube is 9 (different group):
        // it must register the flow, record a child and forward one hop.
        let mut eng = engine(0);
        let f = flow(0x40);
        let out = eng.handle_packet(0, update_packet(0, f, ReduceOp::Sum, 9 * PAGE, None, 9, 7));
        assert_eq!(out.packets.len(), 1);
        let fwd = &out.packets[0];
        assert_eq!(fwd.src, NetNode::Cube(CubeId::new(0)));
        let next = topo().next_hop(NetNode::Cube(CubeId::new(0)), NetNode::Cube(CubeId::new(9)));
        assert_eq!(fwd.dst, next);
        let entry = eng.flows().get(&f).unwrap();
        assert_eq!(entry.req_counter, 1);
        assert!(entry.children.contains(&next));
        assert_eq!(eng.stats().updates_forwarded, 1);
        assert_eq!(eng.stats().updates_computed, 0);
    }

    #[test]
    fn two_operand_update_with_remote_operand_sends_operand_request() {
        // Compute at cube 0; src1 in cube 0, src2 in cube 1: one local read
        // plus one OperandReq packet to cube 1.
        let mut eng = engine(0);
        let f = flow(0x40);
        let out = eng
            .handle_packet(0, update_packet(0, f, ReduceOp::Mac, 0x100, Some(PAGE + 0x100), 0, 3));
        assert_eq!(out.vault_accesses.len(), 1);
        assert_eq!(out.packets.len(), 1);
        match &out.packets[0].kind {
            PacketKind::Active(ActiveKind::OperandReq { addr, which, .. }) => {
                assert_eq!(*addr, Addr::new(PAGE + 0x100));
                assert_eq!(*which, 1);
            }
            other => panic!("expected OperandReq, got {other:?}"),
        }
        assert_eq!(out.packets[0].dst, NetNode::Cube(CubeId::new(1)));
        assert_eq!(eng.stats().operand_reads_remote, 1);
    }

    #[test]
    fn remote_operand_request_is_served_and_answered() {
        // Cube 1 receives an OperandReq from cube 0: it reads its vault and
        // replies with an OperandResp carrying the value.
        let mut eng = engine(1);
        let req = Packet::new(
            11,
            NetNode::Cube(CubeId::new(0)),
            NetNode::Cube(CubeId::new(1)),
            PacketKind::Active(ActiveKind::OperandReq {
                flow: flow(0x40),
                slot: Some(OperandSlot { cube: CubeId::new(0), index: 0 }),
                addr: Addr::new(PAGE + 0x200),
                which: 1,
                update_id: 3,
                op: ReduceOp::Mac,
            }),
            0,
        );
        let out = eng.handle_packet(0, req);
        assert_eq!(out.vault_accesses.len(), 1);
        let resp = eng.complete_vault_read(5, out.vault_accesses[0].id, 4.0);
        assert_eq!(resp.packets.len(), 1);
        assert_eq!(resp.packets[0].dst, NetNode::Cube(CubeId::new(0)));
        match &resp.packets[0].kind {
            PacketKind::Active(ActiveKind::OperandResp { value, which, update_id, .. }) => {
                assert_eq!(*value, 4.0);
                assert_eq!(*which, 1);
                assert_eq!(*update_id, 3);
            }
            other => panic!("expected OperandResp, got {other:?}"),
        }
        assert_eq!(eng.stats().operands_served, 1);
        assert!(eng.is_idle());
    }

    #[test]
    fn mac_update_completes_when_both_operands_arrive() {
        let mut eng = engine(0);
        let f = flow(0x40);
        let out = eng
            .handle_packet(0, update_packet(0, f, ReduceOp::Mac, 0x100, Some(PAGE + 0x100), 0, 3));
        // Complete the local read (operand 0 = 3.0).
        let local_id = out.vault_accesses[0].id;
        let _ = eng.complete_vault_read(1, local_id, 3.0);
        // Deliver the remote operand response (operand 1 = 4.0).
        let resp = Packet::new(
            12,
            NetNode::Cube(CubeId::new(1)),
            NetNode::Cube(CubeId::new(0)),
            PacketKind::Active(ActiveKind::OperandResp {
                flow: f,
                slot: Some(OperandSlot { cube: CubeId::new(0), index: 0 }),
                which: 1,
                value: 4.0,
                update_id: 3,
                op: ReduceOp::Mac,
            }),
            2,
        );
        let _ = eng.handle_packet(2, resp);
        let _ = run_engine(&mut eng, Vec::new(), &|_| 0.0, 20);
        let entry = eng.flows().get(&f).unwrap();
        assert!((entry.result - 12.0).abs() < 1e-12);
        assert_eq!(entry.resp_counter, 1);
        assert_eq!(eng.operand_pool().in_use(), 0, "buffer entry must be released");
        assert!(eng.stats().latency_samples == 1);
    }

    #[test]
    fn operand_buffer_exhaustion_stalls_and_recovers() {
        let cfg = AreConfig { operand_buffers: 1, ..AreConfig::default() };
        let mut eng = ActiveRoutingEngine::new(CubeId::new(0), &cfg, topo(), map());
        let f = flow(0x40);
        let mut outs = Vec::new();
        for i in 0..4u64 {
            outs.push(eng.handle_packet(
                0,
                update_packet(0, f, ReduceOp::Mac, 0x100 + i * 64, Some(0x800 + i * 64), 0, i),
            ));
        }
        assert!(eng.stats().operand_buffer_stall_cycles == 0);
        let _ = run_engine(&mut eng, outs, &|_| 1.0, 100);
        let entry = eng.flows().get(&f).unwrap();
        assert_eq!(entry.req_counter, 4);
        assert_eq!(entry.resp_counter, 4);
        assert!((entry.result - 4.0).abs() < 1e-12, "4 × (1.0 * 1.0)");
        assert!(eng.stats().operand_buffer_stall_cycles > 0, "stalls must be recorded");
        assert!(eng.is_quiescent());
    }

    #[test]
    fn gather_after_local_completion_replies_to_parent_and_releases_flow() {
        let mut eng = engine(0);
        let f = flow(0x40);
        let out = eng.handle_packet(0, update_packet(0, f, ReduceOp::Sum, 0x80, None, 0, 1));
        let _ = run_engine(&mut eng, vec![out], &|_| 5.0, 20);
        let out = eng.handle_packet(30, gather_packet(0, f, ReduceOp::Sum, 1));
        assert_eq!(out.packets.len(), 1);
        match &out.packets[0].kind {
            PacketKind::Active(ActiveKind::GatherResp { value, updates, .. }) => {
                assert!((value - 5.0).abs() < 1e-12);
                assert_eq!(*updates, 1);
            }
            other => panic!("expected GatherResp, got {other:?}"),
        }
        assert_eq!(out.packets[0].dst, NetNode::Host(PortId::new(0)));
        assert!(eng.flows().is_empty(), "flow entry must be released");
        assert!(eng.is_idle());
    }

    #[test]
    fn gather_before_commit_waits_for_processing_to_finish() {
        let mut eng = engine(0);
        let f = flow(0x40);
        let out = eng.handle_packet(0, update_packet(0, f, ReduceOp::Sum, 0x80, None, 0, 1));
        // Gather arrives while the operand read is still outstanding.
        let g = eng.handle_packet(1, gather_packet(0, f, ReduceOp::Sum, 1));
        assert!(g.packets.is_empty(), "must not respond before the update commits");
        // Now the operand arrives and the commit triggers the response.
        let _ = eng.complete_vault_read(2, out.vault_accesses[0].id, 7.0);
        let packets = run_engine(&mut eng, Vec::new(), &|_| 0.0, 20);
        assert_eq!(packets.len(), 1);
        match &packets[0].kind {
            PacketKind::Active(ActiveKind::GatherResp { value, .. }) => {
                assert!((value - 7.0).abs() < 1e-12)
            }
            other => panic!("expected GatherResp, got {other:?}"),
        }
    }

    #[test]
    fn gather_request_is_replicated_to_children() {
        // Cube 0 forwarded updates towards cube 9: it has a child. The gather
        // must be replicated to that child and only answered after the child's
        // response arrives.
        let mut eng = engine(0);
        let f = flow(0x40);
        let fwd = eng.handle_packet(0, update_packet(0, f, ReduceOp::Sum, 9 * PAGE, None, 9, 7));
        let child = fwd.packets[0].dst;
        let out = eng.handle_packet(10, gather_packet(0, f, ReduceOp::Sum, 1));
        assert_eq!(out.packets.len(), 1, "gather replicated to the child only");
        assert_eq!(out.packets[0].dst, child);
        // Child's subtree finishes with value 20 over 1 update.
        let resp = Packet::new(
            99,
            child,
            NetNode::Cube(CubeId::new(0)),
            PacketKind::Active(ActiveKind::GatherResp { flow: f, value: 20.0, updates: 1 }),
            20,
        );
        let done = eng.handle_packet(20, resp);
        assert_eq!(done.packets.len(), 1);
        match &done.packets[0].kind {
            PacketKind::Active(ActiveKind::GatherResp { value, updates, .. }) => {
                assert!((value - 20.0).abs() < 1e-12);
                assert_eq!(*updates, 1);
            }
            other => panic!("expected GatherResp, got {other:?}"),
        }
        assert!(eng.flows().is_empty());
    }

    #[test]
    fn gather_barrier_waits_for_expected_arrivals() {
        let mut eng = engine(0);
        let f = flow(0x40);
        let out = eng.handle_packet(0, update_packet(0, f, ReduceOp::Sum, 0x80, None, 0, 1));
        let _ = run_engine(&mut eng, vec![out], &|_| 1.0, 20);
        // Two threads participate: the first gather must not trigger the
        // reduction.
        let g1 = eng.handle_packet(30, gather_packet(0, f, ReduceOp::Sum, 2));
        assert!(g1.packets.is_empty());
        let g2 = eng.handle_packet(31, gather_packet(0, f, ReduceOp::Sum, 2));
        assert_eq!(g2.packets.len(), 1);
    }

    #[test]
    fn gather_for_unknown_flow_returns_identity() {
        // A tree port that never saw updates of the flow must still answer the
        // gather with the identity element so the host-side merge is neutral.
        let mut eng = engine(0);
        let f = flow(0x77);
        let out = eng.handle_packet(0, gather_packet(0, f, ReduceOp::Sum, 1));
        assert_eq!(out.packets.len(), 1);
        match &out.packets[0].kind {
            PacketKind::Active(ActiveKind::GatherResp { value, updates, .. }) => {
                assert_eq!(*value, 0.0);
                assert_eq!(*updates, 0);
            }
            other => panic!("expected GatherResp, got {other:?}"),
        }
    }

    #[test]
    fn const_assign_writes_immediate_without_flow_state() {
        let mut eng = engine(0);
        let target = 0x40u64;
        let pkt = Packet::new(
            1,
            NetNode::Host(PortId::new(0)),
            NetNode::Cube(CubeId::new(0)),
            PacketKind::Active(ActiveKind::Update {
                flow: flow(target),
                op: ReduceOp::ConstAssign,
                src1: Addr::new(target),
                src2: None,
                imm: Some(0.15),
                compute_cube: CubeId::new(0),
                thread: ThreadId::new(0),
                update_id: 1,
                issued_at: 0,
            }),
            0,
        );
        let out = eng.handle_packet(0, pkt);
        assert_eq!(out.vault_accesses.len(), 1);
        assert_eq!(out.vault_accesses[0].write_value, Some(0.15));
        assert!(eng.flows().is_empty(), "const_assign must not register a flow");
        let _ = run_engine(&mut eng, Vec::new(), &|_| 0.0, 10);
        assert!(eng.is_idle());
        assert_eq!(eng.stats().memory_writes, 1);
    }

    #[test]
    fn mov_update_reads_source_and_writes_target() {
        let mut eng = engine(0);
        let target = 0x40u64;
        let pkt = Packet::new(
            1,
            NetNode::Host(PortId::new(0)),
            NetNode::Cube(CubeId::new(0)),
            PacketKind::Active(ActiveKind::Update {
                flow: flow(target),
                op: ReduceOp::Mov,
                src1: Addr::new(0x200),
                src2: None,
                imm: None,
                compute_cube: CubeId::new(0),
                thread: ThreadId::new(0),
                update_id: 1,
                issued_at: 0,
            }),
            0,
        );
        let out = eng.handle_packet(0, pkt);
        assert_eq!(out.vault_accesses.len(), 1);
        assert!(!out.vault_accesses[0].is_write());
        let after = eng.complete_vault_read(1, out.vault_accesses[0].id, 3.25);
        assert!(after.vault_accesses.is_empty(), "write happens at commit, not arrival");
        // Run the ALU to commit the mov and emit the write.
        let mut write = None;
        for now in 2..20 {
            let out = eng.tick(now);
            for a in out.vault_accesses {
                write = Some(a);
            }
        }
        let write = write.expect("mov must write its target");
        assert_eq!(write.addr, Addr::new(target));
        assert_eq!(write.write_value, Some(3.25));
    }

    #[test]
    fn latency_breakdown_components_are_recorded() {
        let mut eng = engine(0);
        let f = flow(0x40);
        let pkt = update_packet(0, f, ReduceOp::Sum, 0x80, None, 0, 1);
        // Pretend the MI injected the update at cycle 0 but it only reached
        // the cube at cycle 50: request latency must be ~50.
        let out = eng.handle_packet(50, pkt);
        let _ = eng.complete_vault_read(80, out.vault_accesses[0].id, 1.0);
        let _ = run_engine(&mut eng, Vec::new(), &|_| 0.0, 100);
        let stats = eng.stats();
        assert_eq!(stats.latency_samples, 1);
        assert!(stats.mean_request_latency() >= 50.0);
        assert!(stats.mean_response_latency() >= 29.0);
        assert_eq!(stats.mean_stall_latency(), 0.0);
    }

    #[test]
    fn state_json_round_trip_resumes_identically() {
        // Capture an engine mid-flight: a stalled two-operand update (pool of
        // one), outstanding local and remote operand fetches, ALU work in the
        // pipe and live flow state. The restored engine must emit the same
        // packet trace and finish with identical stats.
        let cfg = AreConfig { operand_buffers: 1, ..AreConfig::default() };
        let mut eng = ActiveRoutingEngine::new(CubeId::new(0), &cfg, topo(), map());
        let f = flow(0x40);
        let mut outs = Vec::new();
        // Two MAC updates on a one-entry pool: the second stalls.
        for i in 0..2u64 {
            outs.push(eng.handle_packet(
                0,
                update_packet(0, f, ReduceOp::Mac, 0x100 + i * 64, Some(0x800 + i * 64), 0, i),
            ));
        }
        // A MAC with a remote src2: leaves a remote pending read.
        outs.push(
            eng.handle_packet(0, update_packet(0, f, ReduceOp::Mac, 0x300, Some(PAGE), 0, 7)),
        );
        // An operand served for another cube: leaves a remote-purpose read.
        let req = Packet::new(
            11,
            NetNode::Cube(CubeId::new(1)),
            NetNode::Cube(CubeId::new(0)),
            PacketKind::Active(ActiveKind::OperandReq {
                flow: f,
                slot: Some(OperandSlot { cube: CubeId::new(1), index: 0 }),
                addr: Addr::new(0x700),
                which: 0,
                update_id: 40,
                op: ReduceOp::Mac,
            }),
            0,
        );
        outs.push(eng.handle_packet(0, req));
        assert!(!eng.is_quiescent(), "snapshot must capture in-flight work");
        let doc = Json::parse(&eng.state_to_json().render()).unwrap();
        let mut restored = ActiveRoutingEngine::new(CubeId::new(0), &cfg, topo(), map());
        restored.load_state(&doc).unwrap();
        assert_eq!(eng.next_wake(0), restored.next_wake(0));
        // Drive both forward with identical stimuli and compare everything
        // they emit. Collect the outstanding reads once (same ids in both).
        let reads: Vec<VaultAccess> = outs
            .iter()
            .flat_map(|o| o.vault_accesses.iter().copied())
            .filter(|a| !a.is_write())
            .collect();
        for access in &reads {
            let a = eng.complete_vault_read(1, access.id, 2.0);
            let b = restored.complete_vault_read(1, access.id, 2.0);
            assert_eq!(a, b, "divergent read completion for access {}", access.id);
        }
        for now in 2..200 {
            let a = eng.tick(now);
            let b = restored.tick(now);
            assert_eq!(a, b, "divergent tick at cycle {now}");
            // Answer newly issued reads and remote operand requests
            // identically in both engines.
            for acc in a.vault_accesses.iter().filter(|acc| !acc.is_write()) {
                let ra = eng.complete_vault_read(now, acc.id, 3.0);
                let rb = restored.complete_vault_read(now, acc.id, 3.0);
                assert_eq!(ra, rb);
            }
            for packet in &a.packets {
                let PacketKind::Active(ActiveKind::OperandReq {
                    flow,
                    slot,
                    which,
                    update_id,
                    op,
                    ..
                }) = packet.kind
                else {
                    continue;
                };
                let resp = Packet::new(
                    500 + update_id,
                    packet.dst,
                    packet.src,
                    PacketKind::Active(ActiveKind::OperandResp {
                        flow,
                        slot,
                        which,
                        value: 5.0,
                        update_id,
                        op,
                    }),
                    now,
                );
                let ra = eng.handle_packet(now, resp.clone());
                let rb = restored.handle_packet(now, resp);
                assert_eq!(ra, rb);
            }
        }
        assert_eq!(eng.stats(), restored.stats());
        assert_eq!(eng.flows().len(), restored.flows().len());
        assert_eq!(eng.operand_pool().in_use(), restored.operand_pool().in_use());
        assert!(eng.is_quiescent() && restored.is_quiescent());
        // A forged tag must be rejected, never silently mis-restored.
        let hostile = Json::parse(&doc.render().replace("\"local\"", "\"teleport\"")).unwrap();
        let mut fresh = ActiveRoutingEngine::new(CubeId::new(0), &cfg, topo(), map());
        assert!(fresh.load_state(&hostile).is_err());
    }

    /// `AreOutput::merge_from` is the sharded kernel's outbox-combining
    /// primitive: merging per-cube outputs in ascending cube-index order
    /// must reproduce exactly the concatenation the serial per-cube loop
    /// emits — per list, in emission order, with nothing reordered across
    /// cube boundaries. (Same-cycle packets queue per link in merge order,
    /// so any permutation would change link-level FIFO order and the
    /// report; `System::step_hmc` debug-asserts the ascending order.) The
    /// merge borrows and drains its source in place — no clone, and the
    /// drained source keeps its buffers for recycling.
    #[test]
    fn merge_preserves_cube_index_emission_order() {
        // Three per-cube outputs with overlapping, interleavable content.
        let f = flow(0x40);
        let per_cube: Vec<AreOutput> = (0..3u64)
            .map(|c| AreOutput {
                packets: (0..2)
                    .map(|i| update_packet(5, f, ReduceOp::Sum, 0x80, None, 5, c * 10 + i))
                    .collect(),
                vault_accesses: (0..2)
                    .map(|i| VaultAccess {
                        id: c * 10 + i,
                        addr: Addr::new(0x1000 + (c * 10 + i) * 8),
                        write_value: None,
                    })
                    .collect(),
            })
            .collect();
        let mut merged = AreOutput::default();
        let mut sources = per_cube.clone();
        for out in &mut sources {
            let cap = out.packets.capacity();
            merged.merge_from(out);
            assert!(out.is_empty(), "merge_from drains its source in place");
            assert_eq!(out.packets.capacity(), cap, "a drained source keeps its buffers");
        }
        let serial: Vec<u64> =
            per_cube.iter().flat_map(|o| o.packets.iter().map(|p| p.id)).collect();
        assert_eq!(merged.packets.iter().map(|p| p.id).collect::<Vec<_>>(), serial);
        let serial_accesses: Vec<u64> =
            per_cube.iter().flat_map(|o| o.vault_accesses.iter().map(|a| a.id)).collect();
        assert_eq!(merged.vault_accesses.iter().map(|a| a.id).collect::<Vec<_>>(), serial_accesses);
        // Merging is deterministic: the same inputs merge to the same output.
        let mut again = AreOutput::default();
        let mut sources = per_cube.clone();
        for out in &mut sources {
            again.merge_from(out);
        }
        assert_eq!(again, merged);
        // And `clear` resets content but keeps the buffers.
        let cap = (merged.packets.capacity(), merged.vault_accesses.capacity());
        merged.clear();
        assert!(merged.is_empty());
        assert_eq!((merged.packets.capacity(), merged.vault_accesses.capacity()), cap);
    }
}
