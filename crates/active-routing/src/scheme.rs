//! Offloading schemes (Section 5.1) and the dynamic-offloading policy
//! (Section 5.4).
//!
//! The scheme decides which host access port — and therefore which ARTree —
//! an Update flows into:
//!
//! * **ART** sends every update through one static port, building a single
//!   tree per flow. Under heavy offload this creates a many-to-one hotspot.
//! * **ARF-tid** interleaves trees over all ports by the issuing thread id,
//!   balancing load evenly.
//! * **ARF-addr** picks the port closest to the first source operand's cube,
//!   minimising hops but potentially unbalancing the ports when the address
//!   space is not spread evenly.
//! * **ARF-tid-adaptive** is ARF-tid plus a runtime knob that keeps
//!   low-reuse phases on the host (see [`AdaptivePolicy`]).

use ar_network::DragonflyTopology;
use ar_types::addr::AddressMap;
use ar_types::config::OffloadScheme;
use ar_types::{Addr, CubeId, PortId, ThreadId};

/// Selects the host access port an Update is offloaded through.
#[derive(Debug, Clone)]
pub struct PortSelector {
    scheme: OffloadScheme,
    ports: usize,
    topology: DragonflyTopology,
    map: AddressMap,
}

impl PortSelector {
    /// Creates a selector for the given scheme over the given topology and
    /// address interleaving.
    pub fn new(scheme: OffloadScheme, topology: DragonflyTopology, map: AddressMap) -> Self {
        let ports = topology.host_ports();
        PortSelector { scheme, ports, topology, map }
    }

    /// The scheme this selector implements.
    pub fn scheme(&self) -> OffloadScheme {
        self.scheme
    }

    /// Number of host ports available.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The cube that owns an operand address.
    pub fn cube_of(&self, addr: Addr) -> CubeId {
        CubeId::new(self.map.cube_of(addr))
    }

    /// Picks the port for an update issued by `thread` whose first source
    /// operand is `src1`.
    ///
    /// # Panics
    ///
    /// Panics if called for [`OffloadScheme::None`], which never offloads.
    pub fn port_for_update(&self, thread: ThreadId, src1: Addr) -> PortId {
        match self.scheme {
            OffloadScheme::None => panic!("scheme None never offloads"),
            OffloadScheme::Art => PortId::new(0),
            OffloadScheme::ArfTid | OffloadScheme::ArfTidAdaptive => {
                PortId::new(thread.index() % self.ports)
            }
            OffloadScheme::ArfAddr => self.topology.nearest_port(self.cube_of(src1)),
        }
    }

    /// All ports that may carry trees of a flow under this scheme (gathers are
    /// replicated to each of them).
    pub fn gather_ports(&self) -> Vec<PortId> {
        let mut ports = Vec::new();
        self.gather_ports_into(&mut ports);
        ports
    }

    /// Appends the gather ports to `out` — the allocation-free form of
    /// [`PortSelector::gather_ports`] for callers that recycle the buffer.
    pub fn gather_ports_into(&self, out: &mut Vec<PortId>) {
        match self.scheme {
            OffloadScheme::None => {}
            OffloadScheme::Art => out.push(PortId::new(0)),
            _ => out.extend((0..self.ports).map(PortId::new)),
        }
    }

    /// The cube where an update with the given operands will be computed: the
    /// owning cube of a single operand, or the split point (last common cube
    /// of the two operand routes from the entry cube) for two operands.
    pub fn compute_cube(
        &self,
        port: PortId,
        src1: Addr,
        src2: Option<Addr>,
        target: Addr,
    ) -> CubeId {
        let entry = self.topology.host_cube(port);
        match src2 {
            None => {
                // Zero-operand updates (const_assign) compute at the target's
                // cube; single-operand updates at the operand's cube.
                if src1 == target {
                    self.cube_of(target)
                } else {
                    self.cube_of(src1)
                }
            }
            Some(b) => self.topology.last_common_cube(entry, self.cube_of(src1), self.cube_of(b)),
        }
    }
}

/// The runtime knob of Section 5.4: decide per phase whether to offload
/// updates or execute on the host, based on how many updates the phase will
/// issue per flow relative to how much locality the host caches could
/// exploit.
///
/// The paper enables offloading when `updates per flow` exceeds
/// `CACHE_BLK_SIZE/stride1 + CACHE_BLK_SIZE/stride2`; this type exposes the
/// same decision with the strides as explicit inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Cache block size in bytes.
    pub cache_block_bytes: u64,
    /// Fallback threshold when strides are unknown.
    pub default_threshold: u64,
}

impl AdaptivePolicy {
    /// Creates a policy for the given cache block size.
    pub fn new(cache_block_bytes: u64, default_threshold: u64) -> Self {
        AdaptivePolicy { cache_block_bytes, default_threshold }
    }

    /// The offload threshold for a phase whose two operand streams have the
    /// given byte strides (elements farther apart than a block get no reuse).
    pub fn threshold(&self, stride1_bytes: u64, stride2_bytes: u64) -> u64 {
        let t1 = if stride1_bytes == 0 {
            0
        } else {
            self.cache_block_bytes / stride1_bytes.min(self.cache_block_bytes)
        };
        let t2 = if stride2_bytes == 0 {
            0
        } else {
            self.cache_block_bytes / stride2_bytes.min(self.cache_block_bytes)
        };
        (t1 + t2).max(1)
    }

    /// Decides whether a phase with `updates_per_flow` updates and the given
    /// strides should be offloaded (true) or executed on the host (false).
    pub fn should_offload(
        &self,
        updates_per_flow: u64,
        stride1_bytes: u64,
        stride2_bytes: u64,
    ) -> bool {
        updates_per_flow > self.threshold(stride1_bytes, stride2_bytes)
    }

    /// Decision using the fallback threshold (strides unknown).
    pub fn should_offload_default(&self, updates_per_flow: u64) -> bool {
        updates_per_flow > self.default_threshold
    }
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy::new(64, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector(scheme: OffloadScheme) -> PortSelector {
        PortSelector::new(scheme, DragonflyTopology::paper(), AddressMap::default())
    }

    #[test]
    fn art_always_uses_port_zero() {
        let s = selector(OffloadScheme::Art);
        for t in 0..16 {
            assert_eq!(
                s.port_for_update(ThreadId::new(t), Addr::new(t as u64 * 4096)),
                PortId::new(0)
            );
        }
        assert_eq!(s.gather_ports(), vec![PortId::new(0)]);
    }

    #[test]
    fn arf_tid_interleaves_by_thread() {
        let s = selector(OffloadScheme::ArfTid);
        assert_eq!(s.port_for_update(ThreadId::new(0), Addr::new(0)), PortId::new(0));
        assert_eq!(s.port_for_update(ThreadId::new(5), Addr::new(0)), PortId::new(1));
        assert_eq!(s.port_for_update(ThreadId::new(7), Addr::new(0)), PortId::new(3));
        assert_eq!(s.gather_ports().len(), 4);
        assert_eq!(s.scheme(), OffloadScheme::ArfTid);
    }

    #[test]
    fn arf_addr_uses_nearest_port() {
        let s = selector(OffloadScheme::ArfAddr);
        // A page owned by cube 0 (group 0) should use port 0; one owned by
        // cube 12 (group 3) should use port 3.
        assert_eq!(s.port_for_update(ThreadId::new(9), Addr::new(0)), PortId::new(0));
        assert_eq!(s.port_for_update(ThreadId::new(9), Addr::new(12 * 4096)), PortId::new(3));
    }

    #[test]
    fn two_operand_compute_cube_is_split_point_on_both_paths() {
        let s = selector(OffloadScheme::ArfTid);
        let src1 = Addr::new(15 * 4096);
        let src2 = Addr::new(12 * 4096);
        let cube = s.compute_cube(PortId::new(0), src1, Some(src2), Addr::new(0));
        assert!(cube.index() < 16);
        // Single operand computes at the operand's cube.
        assert_eq!(s.compute_cube(PortId::new(0), src1, None, Addr::new(0)), CubeId::new(15));
        // const_assign-style (src1 == target) computes at the target cube.
        assert_eq!(
            s.compute_cube(PortId::new(1), Addr::new(5 * 4096), None, Addr::new(5 * 4096)),
            CubeId::new(5)
        );
    }

    #[test]
    #[should_panic(expected = "never offloads")]
    fn none_scheme_panics_on_port_selection() {
        let s = selector(OffloadScheme::None);
        let _ = s.port_for_update(ThreadId::new(0), Addr::new(0));
    }

    #[test]
    fn adaptive_policy_threshold_matches_paper_formula() {
        let p = AdaptivePolicy::new(64, 16);
        // Unit-stride (8-byte elements): 64/8 + 64/8 = 16.
        assert_eq!(p.threshold(8, 8), 16);
        assert!(!p.should_offload(16, 8, 8));
        assert!(p.should_offload(17, 8, 8));
        // Block-sized strides get no reuse: threshold collapses to 2.
        assert_eq!(p.threshold(64, 64), 2);
        assert!(p.should_offload(3, 64, 64));
        assert!(p.should_offload_default(17));
        assert!(!p.should_offload_default(16));
    }

    #[test]
    fn default_policy_is_sane() {
        let p = AdaptivePolicy::default();
        assert_eq!(p.cache_block_bytes, 64);
        assert!(p.threshold(0, 0) >= 1);
    }
}
