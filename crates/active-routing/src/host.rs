//! The host-side offload controller.
//!
//! The controller sits between the per-core Message Interfaces and the HMC
//! controllers (host access ports) of the memory network. It performs the
//! host-side half of the Active-Routing protocol:
//!
//! * it turns [`OffloadCommand`]s drained from the MIs into `Update` packets,
//!   choosing the access port (and therefore the ARTree) with the configured
//!   [`PortSelector`] and the compute cube with the topology's split-point
//!   rule;
//! * it implements the `Gather(target, num_threads)` barrier: gather commands
//!   from the participating threads are collected, and once all of them have
//!   arrived one `GatherReq` is issued to the root of every tree the flow may
//!   have used;
//! * it merges the per-tree `GatherResp` values into the final reduction
//!   result and reports a [`GatherCompletion`] so the system can wake the
//!   blocked threads and write the result to memory.
//!
//! The implicit barrier of the paper is performed at the host controller
//! rather than at the tree root: with the forest schemes a flow spans up to
//! four disjoint trees, so a single in-network synchronisation point does not
//! exist; synchronising at the controller preserves the semantics (no gather
//! is released before every thread issued its updates) while keeping the
//! in-network reduction along each tree.

use crate::scheme::PortSelector;
use ar_cpu::{OffloadCommand, OffloadKind};
use ar_network::DragonflyTopology;
use ar_types::addr::AddressMap;
use ar_types::config::OffloadScheme;
use ar_types::hash::FastHashMap;
use ar_types::ids::NetNode;
use ar_types::json::{Json, JsonError};
use ar_types::packet::{ActiveKind, Packet, PacketKind};
use ar_types::{Addr, Cycle, FlowId, PortId, ReduceOp, ThreadId};

/// A finished gather: the flow's final value and the threads to wake.
#[derive(Debug, Clone, PartialEq)]
pub struct GatherCompletion {
    /// Target (accumulator) address of the reduction.
    pub target: Addr,
    /// The reduction operation.
    pub op: ReduceOp,
    /// The final reduced value across all trees of the flow.
    pub value: f64,
    /// Number of updates aggregated across all trees.
    pub updates: u64,
    /// Threads blocked on this gather that must be woken.
    pub threads: Vec<ThreadId>,
    /// Cycle at which the last tree response arrived.
    pub completed_at: Cycle,
}

/// Everything the controller produced while handling one event.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct HostOutput {
    /// Packets to inject, each at the given host access port.
    pub packets: Vec<(PortId, Packet)>,
    /// Addresses that must be back-invalidated from the on-chip caches before
    /// their offloaded update may proceed (Section 3.4.2).
    pub back_invalidate: Vec<Addr>,
    /// Gathers that finished with this event.
    pub completions: Vec<GatherCompletion>,
}

impl HostOutput {
    /// Returns true if nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty() && self.back_invalidate.is_empty() && self.completions.is_empty()
    }

    /// Empties all three lists, keeping their capacity. The appending entry
    /// points ([`HostOffloadController::submit_into`],
    /// [`HostOffloadController::handle_port_packet_into`]) let a caller reuse
    /// one cleared buffer across an entire run instead of allocating fresh
    /// vectors per command on the drain hot path.
    pub fn clear(&mut self) {
        self.packets.clear();
        self.back_invalidate.clear();
        self.completions.clear();
    }
}

/// State of one pending gather barrier.
#[derive(Debug, Clone)]
struct PendingGather {
    op: ReduceOp,
    num_threads: u32,
    arrived_threads: Vec<ThreadId>,
    /// Ports still expected to answer (empty until the barrier releases).
    outstanding_ports: Vec<PortId>,
    value: f64,
    updates: u64,
    issued: bool,
}

impl PendingGather {
    fn state_to_json(&self) -> Json {
        Json::obj([
            ("op", Json::from(self.op.to_string())),
            ("num_threads", Json::from(u64::from(self.num_threads))),
            (
                "arrived_threads",
                Json::Arr(self.arrived_threads.iter().map(|t| Json::from(t.index())).collect()),
            ),
            (
                "outstanding_ports",
                Json::Arr(self.outstanding_ports.iter().map(|p| Json::from(p.index())).collect()),
            ),
            ("value", Json::hex_f64(self.value)),
            ("updates", Json::from(self.updates)),
            ("issued", Json::from(self.issued)),
        ])
    }

    fn state_from_json(doc: &Json) -> Result<PendingGather, JsonError> {
        let op = doc.req_str("op")?;
        let op = ReduceOp::from_name(op)
            .ok_or_else(|| JsonError::state(format!("unknown reduce op {op:?}")))?;
        let indices = |key: &str| -> Result<Vec<usize>, JsonError> {
            doc.req_array(key)?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|i| i as usize)
                        .ok_or_else(|| JsonError::state(format!("{key} entry is not an index")))
                })
                .collect()
        };
        Ok(PendingGather {
            op,
            num_threads: doc.req_u32("num_threads")?,
            arrived_threads: indices("arrived_threads")?.into_iter().map(ThreadId::new).collect(),
            outstanding_ports: indices("outstanding_ports")?.into_iter().map(PortId::new).collect(),
            value: doc.req_hex_f64("value")?,
            updates: doc.req_u64("updates")?,
            issued: doc.req_bool("issued")?,
        })
    }
}

/// Aggregate statistics of the host offload controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Update commands offloaded.
    pub updates_offloaded: u64,
    /// Gather commands received from threads.
    pub gathers_received: u64,
    /// GatherReq packets issued into the network.
    pub gather_requests_sent: u64,
    /// Gather completions reported.
    pub gathers_completed: u64,
    /// Per-port update counts (up to 8 ports tracked).
    pub updates_per_port: [u64; 8],
}

/// The host-side Active-Routing offload controller.
#[derive(Debug)]
pub struct HostOffloadController {
    selector: PortSelector,
    topology: DragonflyTopology,
    pending: FastHashMap<u64, PendingGather>,
    /// Finished gather records recycled into the next barrier, so the
    /// steady-state gather path reuses its buffers instead of allocating
    /// per flow.
    spare_gathers: Vec<PendingGather>,
    /// Thread lists handed out in [`GatherCompletion`]s and given back by
    /// the consumer through
    /// [`HostOffloadController::recycle_thread_list`].
    spare_threads: Vec<Vec<ThreadId>>,
    /// Reusable gather-port scratch of [`HostOffloadController::submit_gather`].
    port_scratch: Vec<PortId>,
    next_update_id: u64,
    next_packet_id: u64,
    stats: HostStats,
}

impl HostOffloadController {
    /// Creates a controller for the given offload scheme over the given
    /// memory-network topology and address interleaving.
    pub fn new(scheme: OffloadScheme, topology: DragonflyTopology, map: AddressMap) -> Self {
        HostOffloadController {
            selector: PortSelector::new(scheme, topology.clone(), map),
            topology,
            pending: FastHashMap::default(),
            spare_gathers: Vec::new(),
            spare_threads: Vec::new(),
            port_scratch: Vec::new(),
            next_update_id: 0,
            next_packet_id: 1 << 60,
            stats: HostStats::default(),
        }
    }

    /// The offload scheme in use.
    pub fn scheme(&self) -> OffloadScheme {
        self.selector.scheme()
    }

    /// The port selector (exposed for tests and the experiments crate).
    pub fn selector(&self) -> &PortSelector {
        &self.selector
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &HostStats {
        &self.stats
    }

    /// Returns true when no gather barrier is pending.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of gather barriers currently pending.
    pub fn pending_gathers(&self) -> usize {
        self.pending.len()
    }

    fn next_packet_id(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    /// Handles one offload command drained from a core's Message Interface at
    /// network cycle `now`. Allocates a fresh [`HostOutput`]; hot paths use
    /// the appending [`HostOffloadController::submit_into`] instead.
    pub fn submit(&mut self, now: Cycle, cmd: OffloadCommand) -> HostOutput {
        let mut out = HostOutput::default();
        self.submit_into(now, cmd, &mut out);
        out
    }

    /// Handles one offload command, *appending* everything produced to `out`
    /// (nothing is cleared). The system's drain phase batches a cycle's
    /// submissions into one reused buffer this way — append order is
    /// submission order, so injecting the batched packets afterwards is
    /// indistinguishable from injecting after every submit.
    pub fn submit_into(&mut self, now: Cycle, cmd: OffloadCommand, out: &mut HostOutput) {
        match cmd.kind {
            OffloadKind::Update { op, src1, src2, imm, target } => {
                self.submit_update(now, cmd.thread, op, src1, src2, imm, target, out);
            }
            OffloadKind::Gather { target, op, num_threads } => {
                self.submit_gather(now, cmd.thread, target, op, num_threads, out);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_update(
        &mut self,
        now: Cycle,
        thread: ThreadId,
        op: ReduceOp,
        src1: Addr,
        src2: Option<Addr>,
        imm: Option<f64>,
        target: Addr,
        out: &mut HostOutput,
    ) {
        let port = self.selector.port_for_update(thread, src1);
        let flow = FlowId::new(target.as_u64(), port);
        let compute_cube = if op.is_reduction() {
            self.selector.compute_cube(port, src1, src2, target)
        } else {
            // Non-reduction updates (mov / const_assign) write their target in
            // place, so they compute at the target's cube.
            self.selector.compute_cube(port, target, None, target)
        };
        let update_id = self.next_update_id;
        self.next_update_id += 1;
        self.stats.updates_offloaded += 1;
        if port.index() < self.stats.updates_per_port.len() {
            self.stats.updates_per_port[port.index()] += 1;
        }

        let entry_cube = self.topology.host_cube(port);
        let kind = ActiveKind::Update {
            flow,
            op,
            src1,
            src2,
            imm,
            compute_cube,
            thread,
            update_id,
            issued_at: now,
        };
        let packet = Packet::new(
            self.next_packet_id(),
            NetNode::Host(port),
            NetNode::Cube(entry_cube),
            PacketKind::Active(kind),
            now,
        );

        out.packets.push((port, packet));
        out.back_invalidate.push(src1);
        out.back_invalidate.push(target);
        if let Some(b) = src2 {
            out.back_invalidate.push(b);
        }
    }

    fn submit_gather(
        &mut self,
        now: Cycle,
        thread: ThreadId,
        target: Addr,
        op: ReduceOp,
        num_threads: u32,
        out: &mut HostOutput,
    ) {
        self.stats.gathers_received += 1;
        let key = target.as_u64();
        let pending = match self.pending.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                // Recycle a finished barrier's record (buffers and all)
                // rather than allocating a fresh one per flow.
                let mut fresh = self.spare_gathers.pop().unwrap_or_else(|| PendingGather {
                    op,
                    num_threads: 0,
                    arrived_threads: Vec::new(),
                    outstanding_ports: Vec::new(),
                    value: 0.0,
                    updates: 0,
                    issued: false,
                });
                fresh.op = op;
                fresh.num_threads = num_threads;
                if fresh.arrived_threads.capacity() == 0 {
                    // The previous completion moved the thread list out; a
                    // recycled one takes its place if the consumer gave any
                    // back.
                    if let Some(list) = self.spare_threads.pop() {
                        fresh.arrived_threads = list;
                    }
                }
                fresh.arrived_threads.clear();
                fresh.outstanding_ports.clear();
                fresh.value = op.identity();
                fresh.updates = 0;
                fresh.issued = false;
                slot.insert(fresh)
            }
        };
        pending.num_threads = pending.num_threads.max(num_threads);
        pending.arrived_threads.push(thread);
        if pending.issued || (pending.arrived_threads.len() as u32) < pending.num_threads {
            return;
        }
        pending.issued = true;
        // Fill the barrier's outstanding-port list through the reusable
        // scratch: no per-gather allocation, no clone.
        let mut ports = std::mem::take(&mut self.port_scratch);
        debug_assert!(ports.is_empty());
        self.selector.gather_ports_into(&mut ports);
        pending.outstanding_ports.extend_from_slice(&ports);

        for &port in &ports {
            let flow = FlowId::new(key, port);
            let entry_cube = self.topology.host_cube(port);
            let kind = ActiveKind::GatherReq { flow, op, expected_at_root: 1, thread };
            let packet = Packet::new(
                self.next_packet_id(),
                NetNode::Host(port),
                NetNode::Cube(entry_cube),
                PacketKind::Active(kind),
                now,
            );
            self.stats.gather_requests_sent += 1;
            out.packets.push((port, packet));
        }
        ports.clear();
        self.port_scratch = ports;
    }

    /// Handles a packet delivered back to one of the host access ports.
    /// Non-active packets (normal read responses) are ignored — they belong
    /// to the memory controllers, not the offload engine. Allocates a fresh
    /// [`HostOutput`]; the system's port phase uses the appending
    /// [`HostOffloadController::handle_port_packet_into`].
    pub fn handle_port_packet(&mut self, now: Cycle, port: PortId, packet: &Packet) -> HostOutput {
        let mut out = HostOutput::default();
        self.handle_port_packet_into(now, port, packet, &mut out);
        out
    }

    /// Handles a packet delivered back to a host access port, *appending*
    /// everything produced to `out`.
    pub fn handle_port_packet_into(
        &mut self,
        now: Cycle,
        port: PortId,
        packet: &Packet,
        out: &mut HostOutput,
    ) {
        let PacketKind::Active(ActiveKind::GatherResp { flow, value, updates }) = packet.kind
        else {
            return;
        };
        let key = flow.target;
        let Some(pending) = self.pending.get_mut(&key) else {
            return;
        };
        pending.value = pending.op.merge(pending.value, value);
        pending.updates += updates;
        pending.outstanding_ports.retain(|p| *p != port);
        if !pending.outstanding_ports.is_empty() {
            return;
        }
        let mut finished = self.pending.remove(&key).expect("entry present");
        self.stats.gathers_completed += 1;
        out.completions.push(GatherCompletion {
            target: Addr::new(key),
            op: finished.op,
            value: finished.value,
            updates: finished.updates,
            threads: std::mem::take(&mut finished.arrived_threads),
            completed_at: now,
        });
        // The record (and its outstanding-ports buffer) goes back to the
        // spare pool for the next barrier on this flow or another.
        self.spare_gathers.push(finished);
    }

    /// Serializes the controller's dynamic state: pending gather barriers
    /// (sorted by target for a stable rendering), the id counters and the
    /// statistics. The spare-buffer pools and scratch space are allocation
    /// caches with no behavioural content and are not stored.
    pub fn state_to_json(&self) -> Json {
        let mut pending: Vec<(&u64, &PendingGather)> = self.pending.iter().collect();
        pending.sort_by_key(|(&key, _)| key);
        Json::obj([
            (
                "pending",
                Json::Arr(
                    pending
                        .into_iter()
                        .map(|(&key, gather)| {
                            Json::obj([
                                ("target", Json::hex_u64(key)),
                                ("gather", gather.state_to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("next_update_id", Json::from(self.next_update_id)),
            ("next_packet_id", Json::hex_u64(self.next_packet_id)),
            (
                "stats",
                Json::obj([
                    ("updates_offloaded", Json::from(self.stats.updates_offloaded)),
                    ("gathers_received", Json::from(self.stats.gathers_received)),
                    ("gather_requests_sent", Json::from(self.stats.gather_requests_sent)),
                    ("gathers_completed", Json::from(self.stats.gathers_completed)),
                    (
                        "updates_per_port",
                        Json::Arr(
                            self.stats.updates_per_port.iter().map(|&n| Json::from(n)).collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Restores dynamic state onto a freshly constructed controller.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the document is malformed or holds
    /// duplicate gather targets.
    pub fn load_state(&mut self, doc: &Json) -> Result<(), JsonError> {
        self.pending.clear();
        for entry in doc.req_array("pending")? {
            let key = entry.req_hex_u64("target")?;
            let gather = PendingGather::state_from_json(entry.req("gather")?)?;
            if self.pending.insert(key, gather).is_some() {
                return Err(JsonError::state("duplicate gather target in controller state"));
            }
        }
        self.next_update_id = doc.req_u64("next_update_id")?;
        self.next_packet_id = doc.req_hex_u64("next_packet_id")?;
        let stats = doc.req("stats")?;
        let ports = stats.req_array("updates_per_port")?;
        if ports.len() != self.stats.updates_per_port.len() {
            return Err(JsonError::state("updates_per_port has the wrong number of entries"));
        }
        let mut updates_per_port = [0u64; 8];
        for (slot, entry) in updates_per_port.iter_mut().zip(ports) {
            *slot = entry
                .as_u64()
                .ok_or_else(|| JsonError::state("updates_per_port entry is not a count"))?;
        }
        self.stats = HostStats {
            updates_offloaded: stats.req_u64("updates_offloaded")?,
            gathers_received: stats.req_u64("gathers_received")?,
            gather_requests_sent: stats.req_u64("gather_requests_sent")?,
            gathers_completed: stats.req_u64("gathers_completed")?,
            updates_per_port,
        };
        Ok(())
    }

    /// Gives a [`GatherCompletion`]'s thread list back for reuse, closing
    /// the recycling loop: barrier records, their port lists and their
    /// thread lists all cycle through the controller, so the steady-state
    /// gather path allocates nothing.
    pub fn recycle_thread_list(&mut self, mut threads: Vec<ThreadId>) {
        threads.clear();
        // Bound the stash: one list per conceivable concurrent barrier is
        // plenty, and an unbounded stash would look like a leak.
        if self.spare_threads.len() < 64 {
            self.spare_threads.push(threads);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(scheme: OffloadScheme) -> HostOffloadController {
        HostOffloadController::new(scheme, DragonflyTopology::paper(), AddressMap::default())
    }

    fn update_cmd(thread: usize, src1: u64, src2: Option<u64>, target: u64) -> OffloadCommand {
        OffloadCommand {
            thread: ThreadId::new(thread),
            kind: OffloadKind::Update {
                op: if src2.is_some() { ReduceOp::Mac } else { ReduceOp::Sum },
                src1: Addr::new(src1),
                src2: src2.map(Addr::new),
                imm: None,
                target: Addr::new(target),
            },
        }
    }

    fn gather_cmd(thread: usize, target: u64, threads: u32) -> OffloadCommand {
        OffloadCommand {
            thread: ThreadId::new(thread),
            kind: OffloadKind::Gather {
                target: Addr::new(target),
                op: ReduceOp::Sum,
                num_threads: threads,
            },
        }
    }

    fn gather_resp(port: usize, target: u64, value: f64, updates: u64) -> Packet {
        Packet::new(
            0,
            NetNode::Cube(ar_types::CubeId::new(0)),
            NetNode::Host(PortId::new(port)),
            PacketKind::Active(ActiveKind::GatherResp {
                flow: FlowId::new(target, PortId::new(port)),
                value,
                updates,
            }),
            0,
        )
    }

    #[test]
    fn update_is_packetised_to_the_selected_port() {
        let mut c = controller(OffloadScheme::ArfTid);
        let out = c.submit(5, update_cmd(6, 0x100, None, 0x8000));
        assert_eq!(out.packets.len(), 1);
        let (port, packet) = &out.packets[0];
        assert_eq!(*port, PortId::new(2), "thread 6 of 4 ports maps to port 2");
        assert_eq!(packet.src, NetNode::Host(PortId::new(2)));
        match &packet.kind {
            PacketKind::Active(ActiveKind::Update { flow, issued_at, .. }) => {
                assert_eq!(flow.port, PortId::new(2));
                assert_eq!(*issued_at, 5);
            }
            other => panic!("expected Update, got {other:?}"),
        }
        assert!(out.back_invalidate.contains(&Addr::new(0x100)));
        assert_eq!(c.stats().updates_offloaded, 1);
        assert_eq!(c.stats().updates_per_port[2], 1);
    }

    #[test]
    fn art_scheme_routes_every_update_through_port_zero() {
        let mut c = controller(OffloadScheme::Art);
        for t in 0..16 {
            let out = c.submit(0, update_cmd(t, (t as u64) * 4096, None, 0x8000));
            assert_eq!(out.packets[0].0, PortId::new(0));
        }
        assert_eq!(c.stats().updates_per_port[0], 16);
    }

    #[test]
    fn gather_barrier_waits_for_all_threads() {
        let mut c = controller(OffloadScheme::ArfTid);
        let out = c.submit(0, gather_cmd(0, 0x8000, 3));
        assert!(out.is_empty(), "first gather must not release the barrier");
        let out = c.submit(1, gather_cmd(1, 0x8000, 3));
        assert!(out.is_empty());
        let out = c.submit(2, gather_cmd(2, 0x8000, 3));
        assert_eq!(out.packets.len(), 4, "one GatherReq per tree port");
        assert_eq!(c.stats().gather_requests_sent, 4);
        assert_eq!(c.pending_gathers(), 1);
    }

    #[test]
    fn gather_completion_merges_all_tree_results() {
        let mut c = controller(OffloadScheme::ArfTid);
        for t in 0..2 {
            let _ = c.submit(0, gather_cmd(t, 0x8000, 2));
        }
        // Three trees answer with partial sums, the fourth finishes last.
        for (port, value) in [(0, 1.0), (1, 2.0), (2, 3.0)] {
            let out =
                c.handle_port_packet(10, PortId::new(port), &gather_resp(port, 0x8000, value, 1));
            assert!(out.completions.is_empty());
        }
        let out = c.handle_port_packet(20, PortId::new(3), &gather_resp(3, 0x8000, 4.0, 1));
        assert_eq!(out.completions.len(), 1);
        let done = &out.completions[0];
        assert!((done.value - 10.0).abs() < 1e-12);
        assert_eq!(done.updates, 4);
        assert_eq!(done.threads.len(), 2);
        assert_eq!(done.completed_at, 20);
        assert!(c.is_idle());
        assert_eq!(c.stats().gathers_completed, 1);
    }

    #[test]
    fn art_gather_uses_a_single_tree() {
        let mut c = controller(OffloadScheme::Art);
        let out = c.submit(0, gather_cmd(0, 0x8000, 1));
        assert_eq!(out.packets.len(), 1);
        let out = c.handle_port_packet(5, PortId::new(0), &gather_resp(0, 0x8000, 7.5, 3));
        assert_eq!(out.completions.len(), 1);
        assert!((out.completions[0].value - 7.5).abs() < 1e-12);
    }

    #[test]
    fn unrelated_packets_are_ignored() {
        let mut c = controller(OffloadScheme::ArfTid);
        let read = Packet::new(
            1,
            NetNode::Cube(ar_types::CubeId::new(2)),
            NetNode::Host(PortId::new(0)),
            PacketKind::ReadResp { req_id: 9, addr: Addr::new(0) },
            0,
        );
        assert!(c.handle_port_packet(0, PortId::new(0), &read).is_empty());
        // A gather response for a flow with no pending barrier is dropped.
        assert!(c
            .handle_port_packet(0, PortId::new(0), &gather_resp(0, 0x00de_adc0, 1.0, 1))
            .is_empty());
    }

    #[test]
    fn state_json_round_trip_resumes_identically() {
        // Snapshot mid-barrier: a released gather with outstanding ports and
        // an unreleased one still collecting threads, plus moved id counters.
        let mut c = controller(OffloadScheme::ArfTid);
        let _ = c.submit(0, update_cmd(0, 0x100, Some(0x200), 0x8000));
        for t in 0..2 {
            let _ = c.submit(1, gather_cmd(t, 0x8000, 2));
        }
        let _ = c.handle_port_packet(5, PortId::new(0), &gather_resp(0, 0x8000, 1.5, 1));
        let _ = c.submit(6, gather_cmd(0, 0x9000, 2));
        assert_eq!(c.pending_gathers(), 2);
        let doc = Json::parse(&c.state_to_json().render()).unwrap();
        let mut r = controller(OffloadScheme::ArfTid);
        r.load_state(&doc).unwrap();
        assert_eq!(r.pending_gathers(), 2);
        // Identical stimuli must produce identical outputs from here on.
        for port in 1..4 {
            let a = c.handle_port_packet(10, PortId::new(port), &gather_resp(port, 0x8000, 2.0, 1));
            let b = r.handle_port_packet(10, PortId::new(port), &gather_resp(port, 0x8000, 2.0, 1));
            assert_eq!(a, b, "divergence on port {port}");
        }
        let a = c.submit(11, update_cmd(3, 0x300, None, 0xa000));
        let b = r.submit(11, update_cmd(3, 0x300, None, 0xa000));
        assert_eq!(a, b, "update ids / packet ids must continue identically");
        assert_eq!(c.stats(), r.stats());
        assert_eq!(c.pending_gathers(), r.pending_gathers());
    }

    #[test]
    fn mov_updates_compute_at_the_target_cube() {
        let mut c = controller(OffloadScheme::ArfTid);
        let cmd = OffloadCommand {
            thread: ThreadId::new(0),
            kind: OffloadKind::Update {
                op: ReduceOp::Mov,
                src1: Addr::new(5 * 4096),
                src2: None,
                imm: None,
                target: Addr::new(9 * 4096),
            },
        };
        let out = c.submit(0, cmd);
        match &out.packets[0].1.kind {
            PacketKind::Active(ActiveKind::Update { compute_cube, .. }) => {
                assert_eq!(compute_cube.index(), 9, "mov computes where its target lives");
            }
            other => panic!("expected Update, got {other:?}"),
        }
    }
}
