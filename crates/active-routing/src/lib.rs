//! **Active-Routing**: compute on the way for near-data processing.
//!
//! This crate implements the paper's primary contribution — an in-network
//! compute architecture layered on a memory network of HMCs:
//!
//! * the per-cube **Active-Routing Engine** ([`engine::ActiveRoutingEngine`])
//!   with its packet decoder, [`flow::FlowTable`] (Table 3.1),
//!   [`operand::OperandPool`] and ALU timing;
//! * the **three-phase protocol** (Fig. 3.4): ARTree construction on the fly
//!   while Update packets travel towards their compute cube, near-data
//!   processing of the offloaded operations, and network aggregation along
//!   the tree during the Gather phase;
//! * the **offload schemes** of Section 5.1 ([`scheme::PortSelector`]):
//!   ART (single static port), ARF-tid, ARF-addr and the adaptive
//!   dynamic-offloading knob of Section 5.4 ([`scheme::AdaptivePolicy`]);
//! * the host-side **offload controller** ([`host::HostOffloadController`])
//!   that turns Message-Interface commands into active packets, replicates
//!   gathers across the forest and merges the per-tree results;
//! * the **programming interface** ([`api::ActiveKernel`]) mirroring the
//!   paper's `Update(src1, src2, target, op)` / `Gather(target, num_threads)`
//!   calls.
//!
//! The crate is independent of the full-system model: it consumes and
//! produces [`ar_types::Packet`]s, so it can be unit-tested against a
//! zero-latency network (see the tests in [`engine`]) and plugged into the
//! cycle-level system model in `ar-system`.

pub mod api;
pub mod engine;
pub mod flow;
pub mod host;
pub mod operand;
pub mod scheme;

pub use api::ActiveKernel;
pub use engine::{ActiveRoutingEngine, AreOutput, AreStats, UpdateLatencySample, VaultAccess};
pub use flow::{FlowEntry, FlowTable};
pub use host::{GatherCompletion, HostOffloadController, HostOutput, HostStats};
pub use operand::{OperandEntry, OperandPool};
pub use scheme::{AdaptivePolicy, PortSelector};

// The engine tick path (packet handling + pipeline wake) runs on worker
// threads when the system's scheduler is sharded (`ar_sim::WorkerPool`): pin
// its Send-cleanliness at compile time. Stat deltas stay engine-local
// (`AreStats` per engine) or travel through `AreOutput` outboxes, never
// through shared counters.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ActiveRoutingEngine>();
    assert_send::<AreOutput>();
};
