//! The Active Flow Table (Section 3.2.2, Table 3.1).
//!
//! Each cube's ARE tracks the flows passing through it in a flow table. A
//! flow entry records the reduction opcode, the partial result computed in
//! this cube, the number of updates received for / committed by this cube,
//! the parent link of the ARTree, the set of child links, and the gather
//! flag.

use ar_types::hash::FastHashMap;
use ar_types::ids::NetNode;
use ar_types::json::{Json, JsonError};
use ar_types::{FlowId, ReduceOp};
use std::collections::BTreeSet;

/// One entry of the Active Flow Table — the fields of Table 3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// Unique id of the Active-Routing flow.
    pub flow: FlowId,
    /// The operation type of this flow.
    pub opcode: ReduceOp,
    /// The reduction result processed in this cube (merged with children's
    /// results as gather responses arrive).
    pub result: f64,
    /// Count of Update requests destined to (computed at) this node.
    pub req_counter: u64,
    /// Count of processed (committed) requests at this node.
    pub resp_counter: u64,
    /// The link towards the parent of the ARTree (the node this cube first
    /// heard about the flow from).
    pub parent: NetNode,
    /// Children of this node in the ARTree (cube links the flow was forwarded
    /// over). Cleared as gather responses arrive.
    pub children: BTreeSet<NetNode>,
    /// Gather-ready flag: set when the gather request has reached this node.
    pub gflag: bool,
    /// Number of gather requests received (only meaningful at the root, which
    /// waits for one per participating thread — the implicit barrier).
    pub gather_arrivals: u32,
    /// Number of gather requests the root must see before starting the
    /// reduction.
    pub gather_expected: u32,
}

impl FlowEntry {
    /// Creates a fresh entry for `flow` first observed from `parent`.
    pub fn new(flow: FlowId, opcode: ReduceOp, parent: NetNode) -> Self {
        FlowEntry {
            flow,
            opcode,
            result: opcode.identity(),
            req_counter: 0,
            resp_counter: 0,
            parent,
            children: BTreeSet::new(),
            gflag: false,
            gather_arrivals: 0,
            gather_expected: 0,
        }
    }

    /// Returns true when local processing has finished: every update counted
    /// at this node has committed.
    pub fn local_done(&self) -> bool {
        self.req_counter == self.resp_counter
    }

    /// Returns true when the subtree rooted at this node is complete and the
    /// gather has been requested: local processing done, all children have
    /// replied, and the gather flag is set.
    pub fn subtree_done(&self) -> bool {
        self.gflag && self.local_done() && self.children.is_empty()
    }

    /// Merges a child's gather response value into the local result.
    pub fn absorb_child(&mut self, child: NetNode, value: f64) {
        self.result = self.opcode.merge(self.result, value);
        self.children.remove(&child);
    }

    /// Applies a committed single-operand reduction to the local result.
    pub fn commit_value(&mut self, value: f64) {
        self.result = self.opcode.merge(self.result, value);
        self.resp_counter += 1;
    }

    /// Serializes the entry for checkpointed state. The partial result
    /// travels as IEEE-754 bits so restored reductions stay bit-exact.
    pub fn state_to_json(&self) -> Json {
        Json::obj([
            ("flow", self.flow.state_to_json()),
            ("opcode", Json::from(self.opcode.to_string())),
            ("result", Json::hex_f64(self.result)),
            ("req_counter", Json::from(self.req_counter)),
            ("resp_counter", Json::from(self.resp_counter)),
            ("parent", self.parent.state_to_json()),
            ("children", Json::Arr(self.children.iter().map(NetNode::state_to_json).collect())),
            ("gflag", Json::from(self.gflag)),
            ("gather_arrivals", Json::from(u64::from(self.gather_arrivals))),
            ("gather_expected", Json::from(u64::from(self.gather_expected))),
        ])
    }

    /// Decodes an entry produced by [`FlowEntry::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing fields or an unknown opcode name.
    pub fn state_from_json(doc: &Json) -> Result<FlowEntry, JsonError> {
        let opcode = doc.req_str("opcode")?;
        let opcode = ReduceOp::from_name(opcode)
            .ok_or_else(|| JsonError::state(format!("unknown reduce op {opcode:?}")))?;
        let mut children = BTreeSet::new();
        for child in doc.req_array("children")? {
            children.insert(NetNode::state_from_json(child)?);
        }
        Ok(FlowEntry {
            flow: FlowId::state_from_json(doc.req("flow")?)?,
            opcode,
            result: doc.req_hex_f64("result")?,
            req_counter: doc.req_u64("req_counter")?,
            resp_counter: doc.req_u64("resp_counter")?,
            parent: NetNode::state_from_json(doc.req("parent")?)?,
            children,
            gflag: doc.req_bool("gflag")?,
            gather_arrivals: doc.req_u32("gather_arrivals")?,
            gather_expected: doc.req_u32("gather_expected")?,
        })
    }
}

/// The per-cube Active Flow Table: a bounded map from flow id to entry.
#[derive(Debug)]
pub struct FlowTable {
    /// Live flows, keyed by flow id. Probed on every update/gather that
    /// touches the cube, so it uses the deterministic [`FastHashMap`]; the
    /// only iteration ([`FlowTable::iter`]) feeds order-insensitive
    /// consumers (tests, reporting aggregates).
    entries: FastHashMap<FlowId, FlowEntry>,
    capacity: usize,
    /// Maximum number of simultaneously live flows observed (for reporting).
    high_watermark: usize,
    /// Number of times a flow had to be registered above capacity.
    overflows: u64,
}

impl FlowTable {
    /// Creates a flow table with room for `capacity` concurrent flows.
    pub fn new(capacity: usize) -> Self {
        FlowTable { entries: FastHashMap::default(), capacity, high_watermark: 0, overflows: 0 }
    }

    /// Returns the entry for `flow`, registering a new one (with the given
    /// opcode and parent) if it does not exist yet.
    pub fn entry_or_register(
        &mut self,
        flow: FlowId,
        opcode: ReduceOp,
        parent: NetNode,
    ) -> &mut FlowEntry {
        if !self.entries.contains_key(&flow) {
            if self.entries.len() >= self.capacity {
                self.overflows += 1;
            }
            self.entries.insert(flow, FlowEntry::new(flow, opcode, parent));
            self.high_watermark = self.high_watermark.max(self.entries.len());
        }
        self.entries.get_mut(&flow).expect("just inserted")
    }

    /// Looks up an existing entry.
    pub fn get(&self, flow: &FlowId) -> Option<&FlowEntry> {
        self.entries.get(flow)
    }

    /// Looks up an existing entry mutably.
    pub fn get_mut(&mut self, flow: &FlowId) -> Option<&mut FlowEntry> {
        self.entries.get_mut(flow)
    }

    /// Removes (deallocates) an entry, returning it.
    pub fn release(&mut self, flow: &FlowId) -> Option<FlowEntry> {
        self.entries.remove(flow)
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest number of concurrently tracked flows seen so far.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Number of registrations that exceeded the configured capacity.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over all live entries.
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.values()
    }

    /// Serializes the table's dynamic state, entries sorted by flow id for a
    /// stable rendering. Capacity is configuration and travels as code.
    pub fn state_to_json(&self) -> Json {
        let mut entries: Vec<&FlowEntry> = self.entries.values().collect();
        entries.sort_by_key(|e| e.flow);
        Json::obj([
            ("entries", Json::Arr(entries.into_iter().map(FlowEntry::state_to_json).collect())),
            ("high_watermark", Json::from(self.high_watermark)),
            ("overflows", Json::from(self.overflows)),
        ])
    }

    /// Restores dynamic state onto a freshly constructed table.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the document is malformed or holds
    /// duplicate flow ids.
    pub fn load_state(&mut self, doc: &Json) -> Result<(), JsonError> {
        self.entries.clear();
        for entry in doc.req_array("entries")? {
            let entry = FlowEntry::state_from_json(entry)?;
            if self.entries.insert(entry.flow, entry).is_some() {
                return Err(JsonError::state("duplicate flow id in flow table state"));
            }
        }
        self.high_watermark = doc.req_usize("high_watermark")?;
        self.overflows = doc.req_u64("overflows")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::ids::{CubeId, PortId};

    fn fid(t: u64) -> FlowId {
        FlowId::new(t, PortId::new(0))
    }

    fn parent() -> NetNode {
        NetNode::Host(PortId::new(0))
    }

    #[test]
    fn register_and_lookup() {
        let mut t = FlowTable::new(4);
        let e = t.entry_or_register(fid(0x100), ReduceOp::Mac, parent());
        assert_eq!(e.result, 0.0);
        assert_eq!(e.parent, parent());
        assert_eq!(t.len(), 1);
        assert!(t.get(&fid(0x100)).is_some());
        assert!(t.get(&fid(0x200)).is_none());
    }

    #[test]
    fn reregistering_keeps_state() {
        let mut t = FlowTable::new(4);
        t.entry_or_register(fid(1), ReduceOp::Sum, parent()).req_counter = 5;
        let e = t.entry_or_register(fid(1), ReduceOp::Sum, parent());
        assert_eq!(e.req_counter, 5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn subtree_completion_logic() {
        let mut e = FlowEntry::new(fid(1), ReduceOp::Sum, parent());
        assert!(e.local_done());
        assert!(!e.subtree_done(), "gather flag not set yet");
        e.req_counter = 2;
        e.commit_value(1.5);
        assert!(!e.local_done());
        e.commit_value(2.5);
        assert!(e.local_done());
        assert_eq!(e.result, 4.0);
        e.children.insert(NetNode::Cube(CubeId::new(3)));
        e.gflag = true;
        assert!(!e.subtree_done());
        e.absorb_child(NetNode::Cube(CubeId::new(3)), 6.0);
        assert!(e.subtree_done());
        assert_eq!(e.result, 10.0);
    }

    #[test]
    fn min_flow_merges_with_min() {
        let mut e = FlowEntry::new(fid(2), ReduceOp::Min, parent());
        e.req_counter = 2;
        e.commit_value(5.0);
        e.commit_value(3.0);
        assert_eq!(e.result, 3.0);
        e.absorb_child(NetNode::Cube(CubeId::new(1)), 1.0);
        assert_eq!(e.result, 1.0);
    }

    #[test]
    fn capacity_overflow_is_counted_not_fatal() {
        let mut t = FlowTable::new(2);
        for i in 0..5u64 {
            t.entry_or_register(fid(i), ReduceOp::Sum, parent());
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.overflows(), 3);
        assert_eq!(t.high_watermark(), 5);
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn release_removes_entry() {
        let mut t = FlowTable::new(4);
        t.entry_or_register(fid(9), ReduceOp::Sum, parent());
        assert!(t.release(&fid(9)).is_some());
        assert!(t.release(&fid(9)).is_none());
        assert!(t.is_empty());
    }
}
