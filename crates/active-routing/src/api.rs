//! The Active-Routing programming interface (Section 3.1.1).
//!
//! The paper exposes two calls to application code:
//!
//! ```c
//! Update(void *src1, void *src2, void *target, int op);
//! Gather(void *target, int num_threads);
//! ```
//!
//! [`ActiveKernel`] is the Rust equivalent for this reproduction: a builder
//! that records the per-thread sequence of offloaded `Update`/`Gather` calls
//! (plus ordinary loads, stores and compute for the phases that are not
//! offloaded) as [`WorkStream`]s consumed by the core timing model, together
//! with the initial contents of the simulated memory and a functionally
//! computed *reference* result for every reduction target. The reference is
//! what the simulated in-network reduction must reproduce bit-for-bit up to
//! floating-point associativity.

use ar_types::{Addr, ReduceOp, ThreadId, WorkItem, WorkStream};
use std::collections::HashMap;

/// Builder for an Active-Routing kernel: per-thread work streams, the initial
/// memory image, and reference reduction results.
///
/// # Example
///
/// ```
/// use active_routing::ActiveKernel;
/// use ar_types::{Addr, ReduceOp};
///
/// let mut k = ActiveKernel::new(2);
/// let a = Addr::new(0x1000);
/// let b = Addr::new(0x2000);
/// let sum = Addr::new(0x8000);
/// k.write_memory(a, 3.0);
/// k.write_memory(b, 4.0);
/// k.update(0, ReduceOp::Mac, a, Some(b), None, sum);
/// k.gather_all(sum, ReduceOp::Mac);
/// assert_eq!(k.reference(sum), Some(12.0));
/// assert_eq!(k.streams().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActiveKernel {
    threads: usize,
    streams: Vec<WorkStream>,
    /// The initial memory image handed to the simulator.
    initial_memory: HashMap<u64, f64>,
    /// The working memory used to evaluate the functional reference: starts
    /// as a copy of the initial image and is mutated by `mov`/`const_assign`
    /// updates in program order.
    memory: HashMap<u64, f64>,
    references: HashMap<u64, (ReduceOp, f64)>,
    update_count: u64,
}

impl ActiveKernel {
    /// Creates a kernel executed by `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a kernel needs at least one thread");
        ActiveKernel {
            threads,
            streams: (0..threads).map(|t| WorkStream::new(ThreadId::new(t))).collect(),
            initial_memory: HashMap::new(),
            memory: HashMap::new(),
            references: HashMap::new(),
            update_count: 0,
        }
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total `Update` calls recorded so far.
    pub fn update_count(&self) -> u64 {
        self.update_count
    }

    /// Writes a value into the initial memory image.
    pub fn write_memory(&mut self, addr: Addr, value: f64) {
        self.initial_memory.insert(addr.as_u64(), value);
        self.memory.insert(addr.as_u64(), value);
    }

    /// Writes a contiguous array of f64 values starting at `base` (8-byte
    /// elements) and returns the address of each element.
    pub fn write_array(&mut self, base: Addr, values: &[f64]) -> Vec<Addr> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let a = base.offset(i as u64 * 8);
                self.write_memory(a, v);
                a
            })
            .collect()
    }

    /// Reads a value from the kernel's working memory (0.0 when never
    /// written), honouring updates already applied by `mov`/`const_assign`
    /// calls — i.e. what the simulated kernel would observe at this point of
    /// the program.
    pub fn read_memory(&self, addr: Addr) -> f64 {
        self.memory.get(&addr.as_u64()).copied().unwrap_or(0.0)
    }

    /// The *initial* memory image as `(address, value)` pairs — the state the
    /// simulated memory starts from, before any recorded update executes.
    pub fn memory_image(&self) -> Vec<(Addr, f64)> {
        let mut v: Vec<(Addr, f64)> =
            self.initial_memory.iter().map(|(&a, &x)| (Addr::new(a), x)).collect();
        v.sort_by_key(|(a, _)| a.as_u64());
        v
    }

    /// Appends an ordinary block of `n` ALU instructions to a thread.
    pub fn compute(&mut self, thread: usize, n: u32) {
        self.stream_mut(thread).push(WorkItem::Compute(n));
    }

    /// Appends an ordinary load to a thread.
    pub fn load(&mut self, thread: usize, addr: Addr) {
        self.stream_mut(thread).push(WorkItem::Load(addr));
    }

    /// Appends an ordinary store to a thread.
    pub fn store(&mut self, thread: usize, addr: Addr) {
        self.stream_mut(thread).push(WorkItem::Store(addr));
    }

    /// Appends an atomic read-modify-write (the baseline `atomic +=` pattern).
    pub fn atomic_rmw(&mut self, thread: usize, addr: Addr) {
        self.stream_mut(thread).push(WorkItem::AtomicRmw { addr });
    }

    /// Appends a barrier with the given id to every thread.
    pub fn barrier_all(&mut self, id: u32) {
        for stream in &mut self.streams {
            stream.push(WorkItem::Barrier { id });
        }
    }

    /// The paper's `Update(src1, src2, target, op)` call, issued by `thread`.
    ///
    /// The call is recorded in the thread's work stream *and* applied to the
    /// functional reference so [`ActiveKernel::reference`] returns the value
    /// the in-network reduction must produce.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range or if a two-operand operation is
    /// missing `src2`.
    pub fn update(
        &mut self,
        thread: usize,
        op: ReduceOp,
        src1: Addr,
        src2: Option<Addr>,
        imm: Option<f64>,
        target: Addr,
    ) {
        assert!(op.operand_count() < 2 || src2.is_some(), "{op} needs two source operands");
        self.apply_reference(op, src1, src2, imm, target);
        self.update_count += 1;
        self.stream_mut(thread).push(WorkItem::Update { op, src1, src2, imm, target });
    }

    /// The paper's `Gather(target, num_threads)` call issued by one thread,
    /// with `num_threads` equal to the kernel's thread count (the common case
    /// of a reduction shared by every thread).
    pub fn gather(&mut self, thread: usize, target: Addr, op: ReduceOp) {
        let num_threads = self.threads as u32;
        self.gather_from(thread, target, op, num_threads);
    }

    /// `Gather(target, num_threads)` with an explicit participant count — used
    /// when a flow is private to fewer threads than the whole kernel (e.g. one
    /// output element of a matrix multiplication owned by a single thread).
    /// The issuing thread waits for the result.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn gather_from(&mut self, thread: usize, target: Addr, op: ReduceOp, num_threads: u32) {
        assert!(num_threads > 0, "a gather needs at least one participating thread");
        self.stream_mut(thread).push(WorkItem::Gather { target, op, num_threads, wait: true });
    }

    /// A fire-and-forget `Gather`: the reduction is triggered but the issuing
    /// thread does not wait for the result and continues with independent
    /// work (e.g. the next output element of a matrix multiplication). Use
    /// the waiting variants when later code reads the result or overwrites
    /// the flow's source operands.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn gather_async(&mut self, thread: usize, target: Addr, op: ReduceOp, num_threads: u32) {
        assert!(num_threads > 0, "a gather needs at least one participating thread");
        self.stream_mut(thread).push(WorkItem::Gather { target, op, num_threads, wait: false });
    }

    /// Issues the `Gather` from every thread (the common pattern at the end of
    /// a parallel reduction loop).
    pub fn gather_all(&mut self, target: Addr, op: ReduceOp) {
        for t in 0..self.threads {
            self.gather(t, target, op);
        }
    }

    /// The functionally computed reference value of the reduction targeting
    /// `target`, or `None` when no reduction update ever targeted it.
    pub fn reference(&self, target: Addr) -> Option<f64> {
        self.references.get(&target.block_key()).map(|(_, v)| *v)
    }

    /// All reference reduction results as `(target, value)` pairs.
    pub fn references(&self) -> Vec<(Addr, f64)> {
        let mut v: Vec<(Addr, f64)> =
            self.references.iter().map(|(&a, &(_, x))| (Addr::new(a), x)).collect();
        v.sort_by_key(|(a, _)| a.as_u64());
        v
    }

    /// The per-thread work streams. Threads with no recorded work have empty
    /// streams.
    pub fn streams(&self) -> &[WorkStream] {
        &self.streams
    }

    /// Consumes the kernel and returns its work streams.
    pub fn into_streams(self) -> Vec<WorkStream> {
        self.streams
    }

    fn stream_mut(&mut self, thread: usize) -> &mut WorkStream {
        assert!(thread < self.threads, "thread {thread} out of range (threads = {})", self.threads);
        &mut self.streams[thread]
    }

    fn apply_reference(
        &mut self,
        op: ReduceOp,
        src1: Addr,
        src2: Option<Addr>,
        imm: Option<f64>,
        target: Addr,
    ) {
        let a = match op {
            ReduceOp::ConstAssign => imm.unwrap_or(0.0),
            _ => self.read_memory(src1),
        };
        let b = src2.map(|s| self.read_memory(s)).unwrap_or(0.0);
        if op.is_reduction() {
            let entry = self.references.entry(target.block_key()).or_insert((op, op.identity()));
            entry.1 = op.apply(entry.1, a, b);
        } else {
            // mov / const_assign update the functional memory image so later
            // updates reading the target observe the new value.
            self.memory.insert(target.as_u64(), op.apply(0.0, a, b));
        }
    }
}

/// Internal helper: the key under which a reduction target is tracked — the
/// exact target address, matching the flow identification used by the host
/// offload controller.
trait BlockKey {
    fn block_key(&self) -> u64;
}

impl BlockKey for Addr {
    fn block_key(&self) -> u64 {
        self.as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_reference_matches_hand_computation() {
        let mut k = ActiveKernel::new(4);
        let sum = Addr::new(0x8000);
        let a = k.write_array(Addr::new(0x1000), &[1.0, 2.0, 3.0, 4.0]);
        let b = k.write_array(Addr::new(0x2000), &[10.0, 20.0, 30.0, 40.0]);
        for (t, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            k.update(t % 4, ReduceOp::Mac, *x, Some(*y), None, sum);
        }
        k.gather_all(sum, ReduceOp::Mac);
        assert_eq!(k.reference(sum), Some(10.0 + 40.0 + 90.0 + 160.0));
        assert_eq!(k.update_count(), 4);
        // Every thread got one update and one gather.
        for s in k.streams() {
            assert_eq!(s.update_count(), 1);
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn mov_and_const_assign_update_the_memory_image() {
        let mut k = ActiveKernel::new(1);
        let src = Addr::new(0x100);
        let dst = Addr::new(0x200);
        k.write_memory(src, 9.0);
        k.update(0, ReduceOp::Mov, src, None, None, dst);
        assert_eq!(k.read_memory(dst), 9.0);
        k.update(0, ReduceOp::ConstAssign, dst, None, Some(0.5), dst);
        assert_eq!(k.read_memory(dst), 0.5);
        assert_eq!(k.reference(dst), None, "non-reductions have no gatherable reference");
    }

    #[test]
    fn pagerank_style_absdiff_reference() {
        // diff += |next_pr - pr| over three vertices, as in Fig. 3.2.
        let mut k = ActiveKernel::new(2);
        let diff = Addr::new(0x9000);
        let pr = k.write_array(Addr::new(0x1000), &[0.2, 0.3, 0.5]);
        let next = k.write_array(Addr::new(0x3000), &[0.25, 0.25, 0.5]);
        for i in 0..3 {
            k.update(i % 2, ReduceOp::AbsDiff, next[i], Some(pr[i]), None, diff);
        }
        k.gather_all(diff, ReduceOp::AbsDiff);
        let expected = (0.25f64 - 0.2).abs() + (0.25f64 - 0.3).abs();
        assert!((k.reference(diff).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn min_reduction_reference() {
        let mut k = ActiveKernel::new(1);
        let m = Addr::new(0x7000);
        let xs = k.write_array(Addr::new(0x1000), &[5.0, -2.0, 7.0]);
        for x in xs {
            k.update(0, ReduceOp::Min, x, None, None, m);
        }
        assert_eq!(k.reference(m), Some(-2.0));
    }

    #[test]
    fn memory_image_is_sorted_and_complete() {
        let mut k = ActiveKernel::new(1);
        k.write_memory(Addr::new(0x200), 2.0);
        k.write_memory(Addr::new(0x100), 1.0);
        let img = k.memory_image();
        assert_eq!(img.len(), 2);
        assert!(img[0].0 < img[1].0);
        assert_eq!(k.read_memory(Addr::new(0x999)), 0.0);
    }

    #[test]
    fn baseline_items_are_recorded_per_thread() {
        let mut k = ActiveKernel::new(2);
        k.compute(0, 10);
        k.load(0, Addr::new(0x40));
        k.store(1, Addr::new(0x80));
        k.atomic_rmw(1, Addr::new(0xc0));
        k.barrier_all(3);
        assert_eq!(k.streams()[0].len(), 3);
        assert_eq!(k.streams()[1].len(), 3);
        let streams = k.into_streams();
        assert_eq!(streams.len(), 2);
    }

    #[test]
    #[should_panic(expected = "needs two source operands")]
    fn two_operand_update_without_src2_panics() {
        let mut k = ActiveKernel::new(1);
        k.update(0, ReduceOp::Mac, Addr::new(0), None, None, Addr::new(0x100));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_thread_panics() {
        let mut k = ActiveKernel::new(1);
        k.compute(3, 1);
    }
}
