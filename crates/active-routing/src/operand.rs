//! Operand buffer management (Section 3.2.3, Fig. 3.3c).
//!
//! Two-operand updates (`sum += A[i] * B[i]`) reserve an operand buffer entry
//! at their compute cube, because the two operand responses can arrive at
//! different times. Single-operand reductions bypass the buffer entirely —
//! the optimisation called out in the paper to free buffer resources for the
//! two-operand flows.

use ar_types::json::{Json, JsonError};
use ar_types::{FlowId, ReduceOp};

/// One operand buffer entry (Fig. 3.3c): the owning flow plus two value/ready
/// slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperandEntry {
    /// Flow the pending update belongs to.
    pub flow: FlowId,
    /// The operation the update will perform once both operands are ready.
    pub op: ReduceOp,
    /// Identifier of the pending update (for latency tracking).
    pub update_id: u64,
    /// First operand value, if it has arrived.
    pub op_value1: Option<f64>,
    /// Second operand value, if it has arrived.
    pub op_value2: Option<f64>,
}

impl OperandEntry {
    /// Creates an empty entry for an update of `flow`.
    pub fn new(flow: FlowId, op: ReduceOp, update_id: u64) -> Self {
        OperandEntry { flow, op, update_id, op_value1: None, op_value2: None }
    }

    /// Records the arrival of operand `which` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `which` is not 0 or 1.
    pub fn record(&mut self, which: u8, value: f64) {
        match which {
            0 => self.op_value1 = Some(value),
            1 => self.op_value2 = Some(value),
            _ => panic!("operand index must be 0 or 1"),
        }
    }

    /// Returns both operand values once both have arrived.
    pub fn ready(&self) -> Option<(f64, f64)> {
        match (self.op_value1, self.op_value2) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Serializes the entry for checkpointed state (values as IEEE-754 bits).
    pub fn state_to_json(&self) -> Json {
        let value = |v: Option<f64>| v.map_or(Json::Null, Json::hex_f64);
        Json::obj([
            ("flow", self.flow.state_to_json()),
            ("op", Json::from(self.op.to_string())),
            ("update_id", Json::hex_u64(self.update_id)),
            ("v1", value(self.op_value1)),
            ("v2", value(self.op_value2)),
        ])
    }

    /// Decodes an entry produced by [`OperandEntry::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing fields or an unknown op name.
    pub fn state_from_json(doc: &Json) -> Result<OperandEntry, JsonError> {
        let op = doc.req_str("op")?;
        let op = ReduceOp::from_name(op)
            .ok_or_else(|| JsonError::state(format!("unknown reduce op {op:?}")))?;
        let value = |key: &str| -> Result<Option<f64>, JsonError> {
            match doc.req(key)? {
                Json::Null => Ok(None),
                v => Ok(Some(v.as_hex_f64().ok_or_else(|| {
                    JsonError::state(format!("operand {key} is not an f64 bit pattern"))
                })?)),
            }
        };
        Ok(OperandEntry {
            flow: FlowId::state_from_json(doc.req("flow")?)?,
            op,
            update_id: doc.req_hex_u64("update_id")?,
            op_value1: value("v1")?,
            op_value2: value("v2")?,
        })
    }
}

/// The pool of operand buffer entries of one ARE.
#[derive(Debug)]
pub struct OperandPool {
    slots: Vec<Option<OperandEntry>>,
    free: Vec<usize>,
    high_watermark: usize,
    allocations: u64,
    failed_allocations: u64,
}

impl OperandPool {
    /// Creates a pool with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "operand pool capacity must be non-zero");
        OperandPool {
            slots: vec![None; capacity],
            free: (0..capacity).rev().collect(),
            high_watermark: 0,
            allocations: 0,
            failed_allocations: 0,
        }
    }

    /// Attempts to reserve an entry; returns its index or `None` when the
    /// pool is exhausted (the update must stall, Fig. 5.3).
    pub fn try_reserve(&mut self, flow: FlowId, op: ReduceOp, update_id: u64) -> Option<usize> {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(OperandEntry::new(flow, op, update_id));
                self.allocations += 1;
                self.high_watermark = self.high_watermark.max(self.in_use());
                Some(idx)
            }
            None => {
                self.failed_allocations += 1;
                None
            }
        }
    }

    /// Accesses a reserved entry.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut OperandEntry> {
        self.slots.get_mut(index).and_then(Option::as_mut)
    }

    /// Releases an entry, returning it.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn release(&mut self, index: usize) -> Option<OperandEntry> {
        let entry = self.slots[index].take();
        if entry.is_some() {
            self.free.push(index);
        }
        entry
    }

    /// Number of entries currently reserved.
    pub fn in_use(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Returns true if no entry is free.
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Maximum simultaneous occupancy seen.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Number of successful reservations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of reservation attempts that failed because the pool was full.
    pub fn failed_allocations(&self) -> u64 {
        self.failed_allocations
    }

    /// Serializes the pool's dynamic state. The free stack is stored in
    /// order — reservation order after a restore must match the original
    /// pool's, since slot indices flow into packet-visible operand slots.
    pub fn state_to_json(&self) -> Json {
        Json::obj([
            (
                "slots",
                Json::Arr(
                    self.slots
                        .iter()
                        .map(|s| s.as_ref().map_or(Json::Null, OperandEntry::state_to_json))
                        .collect(),
                ),
            ),
            ("free", Json::Arr(self.free.iter().map(|&i| Json::from(i)).collect())),
            ("high_watermark", Json::from(self.high_watermark)),
            ("allocations", Json::from(self.allocations)),
            ("failed_allocations", Json::from(self.failed_allocations)),
        ])
    }

    /// Restores dynamic state onto a freshly constructed pool.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the document is malformed or inconsistent
    /// with this pool's capacity (wrong slot count, free index out of range
    /// or pointing at an occupied slot).
    pub fn load_state(&mut self, doc: &Json) -> Result<(), JsonError> {
        let slots = doc.req_array("slots")?;
        if slots.len() != self.slots.len() {
            return Err(JsonError::state(format!(
                "checkpoint has {} operand slots but the pool is configured with {}",
                slots.len(),
                self.slots.len()
            )));
        }
        for (slot, entry) in self.slots.iter_mut().zip(slots) {
            *slot = match entry {
                Json::Null => None,
                doc => Some(OperandEntry::state_from_json(doc)?),
            };
        }
        self.free.clear();
        for index in doc.req_array("free")? {
            let index = index
                .as_u64()
                .ok_or_else(|| JsonError::state("free-stack entry is not an index"))?
                as usize;
            if self.slots.get(index).is_none_or(|slot| slot.is_some()) {
                return Err(JsonError::state(format!(
                    "free-stack index {index} is out of range or occupied"
                )));
            }
            self.free.push(index);
        }
        let occupied = self.slots.iter().filter(|s| s.is_some()).count();
        if occupied + self.free.len() != self.slots.len() {
            return Err(JsonError::state(
                "operand pool state is inconsistent: free stack does not cover the empty slots",
            ));
        }
        self.high_watermark = doc.req_usize("high_watermark")?;
        self.allocations = doc.req_u64("allocations")?;
        self.failed_allocations = doc.req_u64("failed_allocations")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::PortId;

    fn fid() -> FlowId {
        FlowId::new(0x40, PortId::new(1))
    }

    #[test]
    fn reserve_fill_release_cycle() {
        let mut pool = OperandPool::new(2);
        let idx = pool.try_reserve(fid(), ReduceOp::Mac, 7).expect("space available");
        assert_eq!(pool.in_use(), 1);
        let e = pool.get_mut(idx).unwrap();
        assert!(e.ready().is_none());
        e.record(0, 2.0);
        assert!(e.ready().is_none());
        e.record(1, 3.0);
        assert_eq!(e.ready(), Some((2.0, 3.0)));
        let released = pool.release(idx).unwrap();
        assert_eq!(released.update_id, 7);
        assert_eq!(pool.in_use(), 0);
        assert!(pool.release(idx).is_none(), "double release returns None");
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut pool = OperandPool::new(1);
        assert!(pool.try_reserve(fid(), ReduceOp::Mac, 0).is_some());
        assert!(pool.is_full());
        assert!(pool.try_reserve(fid(), ReduceOp::Mac, 1).is_none());
        assert_eq!(pool.failed_allocations(), 1);
        assert_eq!(pool.allocations(), 1);
        assert_eq!(pool.high_watermark(), 1);
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn freed_slot_is_reusable() {
        let mut pool = OperandPool::new(1);
        let a = pool.try_reserve(fid(), ReduceOp::Mac, 0).unwrap();
        pool.release(a);
        let b = pool.try_reserve(fid(), ReduceOp::AbsDiff, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "0 or 1")]
    fn bad_operand_index_panics() {
        let mut e = OperandEntry::new(fid(), ReduceOp::Mac, 0);
        e.record(2, 1.0);
    }
}
