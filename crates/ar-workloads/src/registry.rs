//! The pluggable [`Workload`] trait and a name-keyed registry.
//!
//! [`crate::WorkloadKind`] covers the nine scenarios of the paper's
//! evaluation; the trait opens the same driver surface
//! (`ar_system::SimulationBuilder`, `ar_system::Sweep`) to custom scenarios
//! defined by examples, tests or downstream users. A registry maps display
//! names to workload implementations so command-line tools can resolve
//! user-supplied names against both the built-ins and any registered
//! extensions.
//!
//! # Example
//!
//! ```
//! use ar_workloads::{
//!     GeneratedWorkload, SizeClass, Variant, Workload, WorkloadKind, WorkloadRegistry,
//! };
//!
//! /// A trivial custom scenario: every thread issues one compute block.
//! struct Spin;
//!
//! impl Workload for Spin {
//!     fn name(&self) -> &str {
//!         "spin"
//!     }
//!
//!     fn generate(&self, threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
//!         let mut kernel = active_routing::ActiveKernel::new(threads);
//!         for t in 0..threads {
//!             kernel.compute(t, 100 * size.factor() as u32);
//!         }
//!         GeneratedWorkload {
//!             name: self.name().to_string(),
//!             variant,
//!             streams: kernel.into_streams(),
//!             memory: Vec::new(),
//!             references: Vec::new(),
//!             updates: 0,
//!         }
//!     }
//! }
//!
//! let mut registry = WorkloadRegistry::builtin();
//! registry.register(Spin);
//! assert!(registry.get("spin").is_some());
//! assert!(registry.get("pagerank").is_some()); // built-in
//! let w = registry.get("spin").unwrap();
//! assert_eq!(w.generate(2, SizeClass::Tiny, Variant::Baseline).streams.len(), 2);
//! assert_eq!(WorkloadKind::Pagerank.name(), "pagerank");
//! ```

use crate::{GeneratedWorkload, SizeClass, Variant, WorkloadKind};
use std::sync::Arc;

/// A simulatable scenario: anything that can produce per-thread work streams,
/// an initial memory image and functional reference results.
///
/// Implementations must be `Send + Sync`: the `ar_system::Sweep` driver
/// shares one workload instance across its worker threads and calls
/// [`Workload::generate`] concurrently for different sweep points.
pub trait Workload: Send + Sync {
    /// The display name, used for report labels and registry lookup.
    fn name(&self) -> &str;

    /// Generates the workload's streams, memory image and references for
    /// `threads` cores at the given size and variant.
    ///
    /// Implementations that have no distinct offloaded form may return the
    /// same streams for every [`Variant`]; the variant still records which
    /// flavour was requested.
    fn generate(&self, threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload;
}

impl Workload for WorkloadKind {
    fn name(&self) -> &str {
        WorkloadKind::name(*self)
    }

    fn generate(&self, threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
        WorkloadKind::generate(*self, threads, size, variant)
    }
}

/// A name-keyed collection of [`Workload`]s.
///
/// Registration is last-wins: registering a workload whose name collides
/// with an existing entry (including a built-in) replaces it, so tests can
/// shadow a built-in scenario with an instrumented variant.
#[derive(Clone, Default)]
pub struct WorkloadRegistry {
    entries: Vec<Arc<dyn Workload>>,
}

impl WorkloadRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry pre-populated with the nine built-in workloads of
    /// the evaluation ([`WorkloadKind::ALL`]).
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        for kind in WorkloadKind::ALL {
            registry.register(kind);
        }
        registry
    }

    /// Registers a workload, replacing any existing entry of the same name.
    /// Returns the shared handle under which it was stored.
    pub fn register(&mut self, workload: impl Workload + 'static) -> Arc<dyn Workload> {
        self.register_arc(Arc::new(workload))
    }

    /// Registers an already-shared workload, replacing any same-named entry.
    pub fn register_arc(&mut self, workload: Arc<dyn Workload>) -> Arc<dyn Workload> {
        self.entries.retain(|w| w.name() != workload.name());
        self.entries.push(workload.clone());
        workload
    }

    /// Looks up a workload by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Workload>> {
        self.entries.iter().find(|w| w.name() == name).cloned()
    }

    /// The registered workloads, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Workload>> {
        self.entries.iter()
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|w| w.name()).collect()
    }

    /// Number of registered workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadRegistry").field("names", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Custom(&'static str);

    impl Workload for Custom {
        fn name(&self) -> &str {
            self.0
        }

        fn generate(&self, threads: usize, _: SizeClass, variant: Variant) -> GeneratedWorkload {
            let mut kernel = active_routing::ActiveKernel::new(threads);
            for t in 0..threads {
                kernel.compute(t, 1);
            }
            GeneratedWorkload {
                name: self.0.to_string(),
                variant,
                streams: kernel.into_streams(),
                memory: Vec::new(),
                references: Vec::new(),
                updates: 0,
            }
        }
    }

    #[test]
    fn builtin_registry_covers_all_nine_workloads() {
        let registry = WorkloadRegistry::builtin();
        assert_eq!(registry.len(), WorkloadKind::ALL.len());
        for kind in WorkloadKind::ALL {
            let w = registry.get(WorkloadKind::name(kind)).expect("built-in registered");
            assert_eq!(w.name(), WorkloadKind::name(kind));
        }
        assert!(registry.get("nope").is_none());
    }

    #[test]
    fn registration_is_last_wins() {
        let mut registry = WorkloadRegistry::new();
        assert!(registry.is_empty());
        registry.register(Custom("a"));
        registry.register(Custom("b"));
        let replacement = registry.register(Custom("a"));
        assert_eq!(registry.len(), 2);
        assert!(Arc::ptr_eq(&registry.get("a").unwrap(), &replacement));
        assert_eq!(registry.names(), vec!["b", "a"]);
    }

    #[test]
    fn trait_and_inherent_generate_agree_for_builtins() {
        let registry = WorkloadRegistry::builtin();
        let via_registry =
            registry.get("mac").unwrap().generate(2, SizeClass::Tiny, Variant::Active);
        let direct = WorkloadKind::Mac.generate(2, SizeClass::Tiny, Variant::Active);
        assert_eq!(via_registry.streams, direct.streams);
        assert_eq!(via_registry.references, direct.references);
        assert_eq!(via_registry.name, direct.name);
    }

    #[test]
    fn custom_workloads_generate_through_the_trait() {
        let w: Arc<dyn Workload> = Arc::new(Custom("spin"));
        let generated = w.generate(3, SizeClass::Tiny, Variant::Baseline);
        assert_eq!(generated.streams.len(), 3);
        assert_eq!(generated.name, "spin");
    }
}
