//! Workloads of the Active-Routing evaluation (Section 4.2).
//!
//! Five benchmarks re-implemented from Rodinia / Parboil / CRONO plus four
//! data-intensive microbenchmarks, each in two (for `lud`, three) variants:
//!
//! | kind | domain | core pattern |
//! |------|--------|--------------|
//! | [`WorkloadKind::Backprop`] | machine learning | `h[j] += in[i] * w[j][i]` |
//! | [`WorkloadKind::Lud`]      | linear algebra   | trailing-submatrix dot products |
//! | [`WorkloadKind::Pagerank`] | graph analytics  | `diff += |next - cur|` + rank swap |
//! | [`WorkloadKind::Sgemm`]    | linear algebra   | `C[i][j] += A[i][k] * B[k][j]` |
//! | [`WorkloadKind::Spmv`]     | linear algebra   | sparse `y[i] += A[i][k] * x[k]` |
//! | [`WorkloadKind::Reduce`] / [`WorkloadKind::RandReduce`] | micro | `sum += A[i]` |
//! | [`WorkloadKind::Mac`] / [`WorkloadKind::RandMac`] | micro | `sum += A[i] * B[i]` |
//!
//! Each generator produces per-thread [`WorkStream`]s (via the
//! [`active_routing::ActiveKernel`] programming interface), the initial
//! memory image, and functionally computed reference results for every
//! reduction target, so the full-system simulation can be checked for
//! numerical correctness as well as timed.
//!
//! The [`Variant::Baseline`] streams express the same kernel with ordinary
//! loads, stores, compute blocks and `atomic +=` merges — what the DRAM and
//! HMC configurations run. [`Variant::Active`] replaces the reduction region
//! with `Update`/`Gather` offloads. [`Variant::Adaptive`] applies the
//! dynamic-offloading knob of Section 5.4 (meaningful for `lud`, identical to
//! `Active` elsewhere).
//!
//! The nine built-ins are the closed [`WorkloadKind`] enum; the open
//! [`registry::Workload`] trait (which `WorkloadKind` implements) and the
//! [`registry::WorkloadRegistry`] let examples and tests plug custom
//! scenarios into the same experiment drivers.

pub mod backprop;
pub mod graph;
pub mod layout;
pub mod lud;
pub mod micro;
pub mod pagerank;
pub mod registry;
pub mod sgemm;
pub mod spmv;

pub use graph::Graph;
pub use layout::MemoryLayout;
pub use registry::{Workload, WorkloadRegistry};

use active_routing::ActiveKernel;
use ar_types::{Addr, WorkItem, WorkStream};
use std::fmt;

/// Which flavour of a workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The unoptimised kernel: loads, stores, compute and atomic merges on
    /// the host (run by the DRAM and HMC configurations).
    Baseline,
    /// The Active-Routing-optimised kernel: the reduction region is offloaded
    /// with `Update`/`Gather` (run by ART / ARF-tid / ARF-addr).
    Active,
    /// Active with the dynamic-offloading knob of Section 5.4: phases whose
    /// updates-per-flow fall below the locality threshold stay on the host.
    Adaptive,
}

impl Variant {
    /// Returns true if the variant offloads at least some work.
    pub fn offloads(self) -> bool {
        !matches!(self, Variant::Baseline)
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::Baseline => "baseline",
            Variant::Active => "active",
            Variant::Adaptive => "adaptive",
        };
        f.write_str(s)
    }
}

/// Problem-size class. The paper's full inputs (4096×4096 matrices, 2M hidden
/// units, the web-Google graph) are impractical for a software model running
/// inside a test suite; each class scales every workload consistently and
/// [`SizeClass::Paper`] is the largest still-tractable setting whose behaviour
/// (working set ≫ LLC for the large classes) matches the paper's regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Minimal size for unit tests (sub-second full-system runs).
    Tiny,
    /// Small size for integration tests and quick experiments.
    Small,
    /// Default size for the figure-regeneration harness.
    Medium,
    /// Largest paper-regime size, used by the `--full` experiment runs.
    Paper,
    /// Weak-scaling size for the 10x machine ([`SystemConfig::scaled`]):
    /// twice `Paper`'s per-thread dimensions, meant to be spread over ten
    /// times the cores.
    ///
    /// [`SystemConfig::scaled`]: https://docs.rs/ar-types
    Scaled,
}

impl SizeClass {
    /// Every size class, smallest first.
    pub const ALL: [SizeClass; 5] =
        [SizeClass::Tiny, SizeClass::Small, SizeClass::Medium, SizeClass::Paper, SizeClass::Scaled];

    /// A scale factor used by the per-workload dimension tables.
    pub fn factor(self) -> usize {
        match self {
            SizeClass::Tiny => 1,
            SizeClass::Small => 2,
            SizeClass::Medium => 4,
            SizeClass::Paper => 8,
            SizeClass::Scaled => 16,
        }
    }

    /// Parses a size-class display name (`tiny`, `small`, `medium`, `paper`,
    /// `scaled`).
    pub fn parse(name: &str) -> Option<Self> {
        SizeClass::ALL.into_iter().find(|s| s.to_string() == name)
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SizeClass::Tiny => "tiny",
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Paper => "paper",
            SizeClass::Scaled => "scaled",
        };
        f.write_str(s)
    }
}

/// Everything a workload generator produces.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// Workload name (e.g. `"pagerank"`).
    pub name: String,
    /// The variant that was generated.
    pub variant: Variant,
    /// Per-thread work streams for the core model.
    pub streams: Vec<WorkStream>,
    /// Initial memory image: `(address, value)` pairs.
    pub memory: Vec<(Addr, f64)>,
    /// Reference reduction results: `(target, expected value)` pairs (empty
    /// for baseline variants, which never offload).
    pub references: Vec<(Addr, f64)>,
    /// Number of `Update` calls in the streams.
    pub updates: u64,
}

impl GeneratedWorkload {
    /// Builds the result from a populated [`ActiveKernel`] — the usual way a
    /// custom [`registry::Workload`] assembles its streams, memory image and
    /// reference results.
    pub fn from_kernel(name: impl Into<String>, variant: Variant, kernel: ActiveKernel) -> Self {
        GeneratedWorkload {
            name: name.into(),
            variant,
            memory: kernel.memory_image(),
            references: kernel.references(),
            updates: kernel.update_count(),
            streams: kernel.into_streams(),
        }
    }

    /// Total work items across all threads.
    pub fn total_items(&self) -> usize {
        self.streams.iter().map(WorkStream::len).sum()
    }

    /// Total dynamic instructions represented by the streams.
    pub fn total_instructions(&self) -> u64 {
        self.streams.iter().map(WorkStream::instruction_count).sum()
    }

    /// Statistics over the compute blocks of every stream (see
    /// [`ComputeBlockStats`]). Drivers use these to decide whether arming
    /// the core model's bulk fast-forward path can pay off for this
    /// workload.
    pub fn compute_block_stats(&self) -> ComputeBlockStats {
        let mut stats = ComputeBlockStats::default();
        for stream in &self.streams {
            let mut current = 0u64;
            for item in stream.iter() {
                match item {
                    WorkItem::Compute(n) => current += u64::from(*n),
                    _ => stats.close_block(&mut current),
                }
            }
            stats.close_block(&mut current);
        }
        stats
    }
}

/// Statistics over a workload's *compute blocks* — maximal runs of
/// consecutive [`WorkItem::Compute`] items in a stream, measured in dynamic
/// instructions. The core model can schedule such a block analytically
/// ("fast-forward", `ar_cpu::fastforward`) instead of ticking through it
/// cycle by cycle, but only blocks longer than a profitability threshold
/// ever produce a skippable interval; these statistics are what the
/// experiment driver consults to pick the fast path per workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeBlockStats {
    /// Number of compute blocks across all streams.
    pub blocks: u64,
    /// Total compute instructions across all blocks.
    pub total_insns: u64,
    /// Length of the longest block, in instructions.
    pub longest_block: u64,
}

impl ComputeBlockStats {
    /// Folds a finished block into the totals and resets the accumulator.
    fn close_block(&mut self, current: &mut u64) {
        if *current > 0 {
            self.blocks += 1;
            self.total_insns += *current;
            self.longest_block = self.longest_block.max(*current);
            *current = 0;
        }
    }

    /// Mean block length in instructions (0.0 without any block).
    pub fn mean_block(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.total_insns as f64 / self.blocks as f64
        }
    }
}

/// The nine workloads of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Neural-network training feed-forward pass (Rodinia `backprop`).
    Backprop,
    /// LU decomposition (Rodinia `lud`).
    Lud,
    /// PageRank score update (CRONO `pagerank`).
    Pagerank,
    /// Dense matrix multiplication (Parboil `sgemm`).
    Sgemm,
    /// Sparse matrix-vector multiplication (Parboil `spmv`).
    Spmv,
    /// Sequential sum reduction microbenchmark.
    Reduce,
    /// Random-access sum reduction microbenchmark.
    RandReduce,
    /// Sequential multiply-accumulate microbenchmark.
    Mac,
    /// Random-access multiply-accumulate microbenchmark.
    RandMac,
}

impl WorkloadKind {
    /// The five application benchmarks (Fig. 5.1a etc.).
    pub const BENCHMARKS: [WorkloadKind; 5] = [
        WorkloadKind::Backprop,
        WorkloadKind::Lud,
        WorkloadKind::Pagerank,
        WorkloadKind::Sgemm,
        WorkloadKind::Spmv,
    ];

    /// The four microbenchmarks (Fig. 5.1b etc.).
    pub const MICROBENCHMARKS: [WorkloadKind; 4] =
        [WorkloadKind::Reduce, WorkloadKind::RandReduce, WorkloadKind::Mac, WorkloadKind::RandMac];

    /// All nine workloads.
    pub const ALL: [WorkloadKind; 9] = [
        WorkloadKind::Backprop,
        WorkloadKind::Lud,
        WorkloadKind::Pagerank,
        WorkloadKind::Sgemm,
        WorkloadKind::Spmv,
        WorkloadKind::Reduce,
        WorkloadKind::RandReduce,
        WorkloadKind::Mac,
        WorkloadKind::RandMac,
    ];

    /// The workload's display name (as used in the figures).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Backprop => "backprop",
            WorkloadKind::Lud => "lud",
            WorkloadKind::Pagerank => "pagerank",
            WorkloadKind::Sgemm => "sgemm",
            WorkloadKind::Spmv => "spmv",
            WorkloadKind::Reduce => "reduce",
            WorkloadKind::RandReduce => "rand_reduce",
            WorkloadKind::Mac => "mac",
            WorkloadKind::RandMac => "rand_mac",
        }
    }

    /// Returns true for the four microbenchmarks.
    pub fn is_microbenchmark(self) -> bool {
        WorkloadKind::MICROBENCHMARKS.contains(&self)
    }

    /// Generates the workload's streams, memory image and references.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn generate(self, threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
        assert!(threads > 0, "workloads need at least one thread");
        match self {
            WorkloadKind::Backprop => backprop::generate(threads, size, variant),
            WorkloadKind::Lud => lud::generate(threads, size, variant),
            WorkloadKind::Pagerank => pagerank::generate(threads, size, variant),
            WorkloadKind::Sgemm => sgemm::generate(threads, size, variant),
            WorkloadKind::Spmv => spmv::generate(threads, size, variant),
            WorkloadKind::Reduce => micro::reduce(threads, size, variant, false),
            WorkloadKind::RandReduce => micro::reduce(threads, size, variant, true),
            WorkloadKind::Mac => micro::mac(threads, size, variant, false),
            WorkloadKind::RandMac => micro::mac(threads, size, variant, true),
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Splits `total` items into per-thread `(start, end)` ranges as evenly as
/// possible (the same static partitioning the Pthread kernels use).
pub(crate) fn partition(total: usize, threads: usize) -> Vec<(usize, usize)> {
    let base = total / threads;
    let extra = total % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Deterministic pseudo-value for element `i` of array `array_id`: keeps the
/// reference results reproducible without a random number generator.
pub(crate) fn element_value(array_id: u64, i: usize) -> f64 {
    let x = (i as u64).wrapping_mul(2654435761).wrapping_add(array_id * 97);
    ((x % 1000) as f64) / 250.0 - 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_item_exactly_once() {
        for total in [0usize, 1, 7, 16, 100, 101] {
            for threads in [1usize, 2, 3, 16] {
                let ranges = partition(total, threads);
                assert_eq!(ranges.len(), threads);
                let mut covered = 0;
                let mut prev_end = 0;
                for (s, e) in ranges {
                    assert_eq!(s, prev_end);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn element_values_are_deterministic_and_bounded() {
        for i in 0..1000 {
            let v = element_value(1, i);
            assert_eq!(v, element_value(1, i));
            assert!((-2.0..=2.0).contains(&v));
        }
        assert_ne!(element_value(1, 3), element_value(2, 3));
    }

    #[test]
    fn every_workload_generates_both_variants() {
        for kind in WorkloadKind::ALL {
            for variant in [Variant::Baseline, Variant::Active] {
                let w = kind.generate(4, SizeClass::Tiny, variant);
                assert_eq!(w.name, kind.name());
                assert_eq!(w.variant, variant);
                assert_eq!(w.streams.len(), 4);
                assert!(w.total_items() > 0, "{kind} {variant} generated no work");
                if variant == Variant::Active {
                    assert!(w.updates > 0, "{kind} active variant must offload updates");
                    assert!(!w.references.is_empty(), "{kind} must have reference results");
                } else {
                    assert_eq!(w.updates, 0, "{kind} baseline must not offload");
                }
            }
        }
    }

    #[test]
    fn active_variants_touch_less_stream_memory_traffic() {
        // The offloaded variant replaces operand loads with update commands,
        // so its streams must contain fewer explicit memory accesses.
        for kind in [WorkloadKind::Mac, WorkloadKind::Reduce, WorkloadKind::Sgemm] {
            let base = kind.generate(2, SizeClass::Tiny, Variant::Baseline);
            let act = kind.generate(2, SizeClass::Tiny, Variant::Active);
            let base_mem: u64 = base.streams.iter().map(WorkStream::memory_access_count).sum();
            let act_mem: u64 = act.streams.iter().map(WorkStream::memory_access_count).sum();
            assert!(
                act_mem < base_mem,
                "{kind}: active ({act_mem}) must issue fewer loads/stores than baseline ({base_mem})"
            );
        }
    }

    #[test]
    fn size_classes_scale_the_work() {
        let small = WorkloadKind::Mac.generate(2, SizeClass::Tiny, Variant::Active);
        let big = WorkloadKind::Mac.generate(2, SizeClass::Medium, Variant::Active);
        assert!(big.updates > small.updates);
        assert!(SizeClass::Paper.factor() > SizeClass::Tiny.factor());
    }

    #[test]
    fn compute_block_stats_count_maximal_runs() {
        let mut w = WorkloadKind::Mac.generate(1, SizeClass::Tiny, Variant::Baseline);
        // mac baseline: [load, load, compute(2)] per pair + the epilogue
        // [compute(4), atomic]: the longest block is the final pair's
        // compute(2) merged with the adjacent epilogue compute(4).
        let stats = w.compute_block_stats();
        assert!(stats.blocks > 0);
        assert_eq!(stats.longest_block, 6);
        assert!(stats.mean_block() >= 2.0);
        // Consecutive Compute items merge into one block.
        let mut stream = WorkStream::new(ar_types::ThreadId::new(0));
        stream.extend([
            WorkItem::Compute(3),
            WorkItem::Compute(5),
            WorkItem::Load(Addr::new(0)),
            WorkItem::Compute(2),
        ]);
        w.streams = vec![stream];
        let stats = w.compute_block_stats();
        assert_eq!(stats, ComputeBlockStats { blocks: 2, total_insns: 10, longest_block: 8 });
        // An empty stream has no blocks.
        w.streams = vec![WorkStream::new(ar_types::ThreadId::new(0))];
        assert_eq!(w.compute_block_stats(), ComputeBlockStats::default());
        assert_eq!(w.compute_block_stats().mean_block(), 0.0);
    }

    #[test]
    fn workload_names_are_unique() {
        let mut names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WorkloadKind::ALL.len());
        assert!(WorkloadKind::Reduce.is_microbenchmark());
        assert!(!WorkloadKind::Lud.is_microbenchmark());
    }
}
