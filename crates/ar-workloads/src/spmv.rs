//! The `spmv` benchmark (Parboil): sparse matrix-vector multiplication
//! `y[i] = sum over nonzeros A[i][k] * x[k]`.
//!
//! The sparse structure makes the accesses to the dense vector `x` irregular,
//! spreading a row's operands across many memory cubes — the effect the paper
//! calls out when explaining why `spmv`'s EDP does not improve (Section
//! 5.3.3). The paper's matrix is 4096×4096 with 0.7 sparsity (70 % zeros);
//! the same density is kept here at scaled dimensions.

use crate::layout::MemoryLayout;
use crate::{element_value, partition, GeneratedWorkload, SizeClass, Variant};
use active_routing::ActiveKernel;
use ar_sim::SimRng;
use ar_types::ReduceOp;

/// Matrix dimension per size class.
fn dim(size: SizeClass) -> usize {
    16 * size.factor()
}

/// Fraction of zero entries (the paper's "0.7 sparsity").
const SPARSITY: f64 = 0.7;

/// Generates the spmv workload.
pub fn generate(threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
    let n = dim(size);
    let mut rng = SimRng::seed_from_u64(0x5eed_5b3f);
    // Build the sparsity pattern: for each row, the columns of its nonzeros.
    let rows: Vec<Vec<usize>> =
        (0..n).map(|_| (0..n).filter(|_| rng.unit() >= SPARSITY).collect()).collect();
    let nnz: usize = rows.iter().map(Vec::len).sum();

    let mut layout = MemoryLayout::default();
    let vals_base = layout.alloc_array(nnz.max(1));
    let x_base = layout.alloc_array(n);
    let y_base = layout.alloc_array(n);

    let mut kernel = ActiveKernel::new(threads);
    kernel.write_array(vals_base, &(0..nnz).map(|i| element_value(1, i)).collect::<Vec<_>>());
    kernel.write_array(x_base, &(0..n).map(|i| element_value(2, i)).collect::<Vec<_>>());

    // Prefix offsets of each row into the packed value array.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for row in &rows {
        offsets.push(offsets.last().unwrap() + row.len());
    }

    for (t, (row_start, row_end)) in partition(n, threads).into_iter().enumerate() {
        for i in row_start..row_end {
            let y_i = MemoryLayout::element(y_base, i);
            if rows[i].is_empty() {
                continue;
            }
            for (slot, &col) in rows[i].iter().enumerate() {
                let a_val = MemoryLayout::element(vals_base, offsets[i] + slot);
                let x_col = MemoryLayout::element(x_base, col);
                match variant {
                    Variant::Baseline => {
                        // Load the column index, the value and the vector
                        // element, multiply-accumulate.
                        kernel.load(t, a_val);
                        kernel.load(t, x_col);
                        kernel.compute(t, 2);
                    }
                    Variant::Active | Variant::Adaptive => {
                        kernel.update(t, ReduceOp::Mac, a_val, Some(x_col), None, y_i);
                    }
                }
            }
            match variant {
                Variant::Baseline => kernel.store(t, y_i),
                Variant::Active | Variant::Adaptive => {
                    kernel.gather_async(t, y_i, ReduceOp::Mac, 1)
                }
            }
        }
    }
    GeneratedWorkload::from_kernel("spmv", variant, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_roughly_thirty_percent() {
        let n = dim(SizeClass::Small);
        let w = generate(1, SizeClass::Small, Variant::Active);
        let density = w.updates as f64 / (n * n) as f64;
        assert!(
            (0.2..0.4).contains(&density),
            "expected ~30% nonzeros, got {:.0}%",
            density * 100.0
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(2, SizeClass::Tiny, Variant::Active);
        let b = generate(2, SizeClass::Tiny, Variant::Active);
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.references, b.references);
    }

    #[test]
    fn rows_with_nonzeros_have_references() {
        let w = generate(2, SizeClass::Tiny, Variant::Active);
        assert!(!w.references.is_empty());
        assert!(w.references.len() <= dim(SizeClass::Tiny));
        for (_, v) in &w.references {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn baseline_and_active_cover_the_same_nonzeros() {
        let base = generate(2, SizeClass::Tiny, Variant::Baseline);
        let act = generate(2, SizeClass::Tiny, Variant::Active);
        let base_loads: u64 = base.streams.iter().map(|s| s.memory_access_count()).sum();
        // Baseline: 2 loads per nonzero + 1 store per non-empty row.
        assert!(base_loads >= 2 * act.updates);
    }
}
