//! The `pagerank` benchmark (CRONO): one iteration of the rank update loop of
//! Fig. 3.2.
//!
//! The kernel has two parts:
//!
//! 1. a **scatter phase** that pushes each vertex's current rank to its
//!    out-neighbours (irregular, graph-driven accesses) — this phase is *not*
//!    an Active-Routing target and is generated identically for every
//!    variant, which is why the benchmark's total data movement does not
//!    collapse the way the microbenchmarks' does (Fig. 5.4a);
//! 2. the **rank update loop** over vertices, which the paper optimises:
//!
//!    ```text
//!    diff += |v.next_pagerank - v.pagerank|;     // Update(.., abs)
//!    v.pagerank = v.next_pagerank;               // Update(.., mov)
//!    v.next_pagerank = 0.15 / num_vertices;      // Update(.., const_assign)
//!    ```
//!
//! In the active variant the `diff` reduction is gathered between the
//! abs-diff pass and the in-memory writes, so the offloaded reads of
//! `pagerank`/`next_pagerank` never race with the `mov`/`const_assign`
//! updates that overwrite them.

use crate::graph::Graph;
use crate::layout::MemoryLayout;
use crate::{element_value, partition, GeneratedWorkload, SizeClass, Variant};
use active_routing::ActiveKernel;
use ar_types::ReduceOp;

/// `(vertices, out_edges_per_vertex)` per size class.
fn dims(size: SizeClass) -> (usize, usize) {
    (128 * size.factor() * size.factor(), 4)
}

/// Generates the pagerank workload.
pub fn generate(threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
    let (vertices, degree) = dims(size);
    let graph = Graph::preferential_attachment(vertices, degree, 0x5eed_9a9e);

    let mut layout = MemoryLayout::default();
    let rank_base = layout.alloc_array(vertices);
    let next_base = layout.alloc_array(vertices);
    let diff = layout.alloc_scalar();

    let mut kernel = ActiveKernel::new(threads);
    let initial_rank = 1.0 / vertices as f64;
    kernel.write_array(rank_base, &vec![initial_rank; vertices]);
    kernel.write_array(
        next_base,
        &(0..vertices)
            .map(|i| initial_rank + element_value(3, i).abs() / 100.0)
            .collect::<Vec<_>>(),
    );

    let ranges = partition(vertices, threads);

    // Phase 1: scatter current ranks along out-edges (identical in every
    // variant; not an offload target).
    for (t, &(start, end)) in ranges.iter().enumerate() {
        for v in start..end {
            kernel.load(t, MemoryLayout::element(rank_base, v));
            kernel.compute(t, 1);
            for &u in graph.out_neighbors(v) {
                kernel.load(t, MemoryLayout::element(next_base, u));
                kernel.compute(t, 2);
                kernel.store(t, MemoryLayout::element(next_base, u));
            }
        }
    }
    kernel.barrier_all(1);

    // Phase 2a: convergence test `diff += |next - cur|`.
    let reset = 0.15 / vertices as f64;
    for (t, &(start, end)) in ranges.iter().enumerate() {
        for v in start..end {
            let rank_v = MemoryLayout::element(rank_base, v);
            let next_v = MemoryLayout::element(next_base, v);
            match variant {
                Variant::Baseline => {
                    kernel.load(t, next_v);
                    kernel.load(t, rank_v);
                    kernel.compute(t, 2);
                }
                Variant::Active | Variant::Adaptive => {
                    kernel.update(t, ReduceOp::AbsDiff, next_v, Some(rank_v), None, diff);
                }
            }
        }
        // Baseline merges the thread-local diff atomically; active gathers.
        match variant {
            Variant::Baseline => {
                kernel.compute(t, 4);
                kernel.atomic_rmw(t, diff);
            }
            Variant::Active | Variant::Adaptive => kernel.gather(t, diff, ReduceOp::AbsDiff),
        }
    }

    // Phase 2b: rank swap and reset (`mov` + `const_assign`); ordered after
    // the diff gather so the offloaded writes cannot race the reads above.
    for (t, &(start, end)) in ranges.iter().enumerate() {
        for v in start..end {
            let rank_v = MemoryLayout::element(rank_base, v);
            let next_v = MemoryLayout::element(next_base, v);
            match variant {
                Variant::Baseline => {
                    kernel.store(t, rank_v);
                    kernel.store(t, next_v);
                    kernel.compute(t, 2);
                }
                Variant::Active | Variant::Adaptive => {
                    kernel.update(t, ReduceOp::Mov, next_v, None, None, rank_v);
                    kernel.update(t, ReduceOp::ConstAssign, next_v, None, Some(reset), next_v);
                }
            }
        }
    }
    kernel.barrier_all(2);

    GeneratedWorkload::from_kernel("pagerank", variant, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::WorkItem;

    #[test]
    fn diff_reference_matches_hand_computation() {
        let (vertices, _) = dims(SizeClass::Tiny);
        let w = generate(4, SizeClass::Tiny, Variant::Active);
        let initial = 1.0 / vertices as f64;
        let expected: f64 = (0..vertices)
            .map(|i| ((initial + element_value(3, i).abs() / 100.0) - initial).abs())
            .sum();
        // Exactly one gatherable reference: the diff accumulator.
        assert_eq!(w.references.len(), 1);
        assert!((w.references[0].1 - expected).abs() < 1e-9);
    }

    #[test]
    fn active_variant_emits_three_update_kinds() {
        let (vertices, _) = dims(SizeClass::Tiny);
        let w = generate(2, SizeClass::Tiny, Variant::Active);
        assert_eq!(w.updates, 3 * vertices as u64, "absdiff + mov + const_assign per vertex");
        let movs: usize = w
            .streams
            .iter()
            .map(|s| {
                s.iter().filter(|i| matches!(i, WorkItem::Update { op: ReduceOp::Mov, .. })).count()
            })
            .sum();
        assert_eq!(movs, vertices);
    }

    #[test]
    fn scatter_phase_is_present_in_both_variants() {
        let base = generate(2, SizeClass::Tiny, Variant::Baseline);
        let act = generate(2, SizeClass::Tiny, Variant::Active);
        let base_loads: u64 = base.streams.iter().map(|s| s.memory_access_count()).sum();
        let act_loads: u64 = act.streams.iter().map(|s| s.memory_access_count()).sum();
        assert!(act_loads > 0, "the scatter phase is never offloaded");
        assert!(base_loads > act_loads, "the rank-update loop is offloaded only in active mode");
    }

    #[test]
    fn gather_precedes_the_in_memory_writes() {
        // The diff gather must appear before the first mov update in every
        // thread's stream, otherwise the offloaded writes could race the
        // offloaded reads.
        let w = generate(2, SizeClass::Tiny, Variant::Active);
        for s in &w.streams {
            let items: Vec<&WorkItem> = s.iter().collect();
            let gather_pos = items
                .iter()
                .position(|i| matches!(i, WorkItem::Gather { .. }))
                .expect("every thread gathers diff");
            let first_mov = items
                .iter()
                .position(|i| matches!(i, WorkItem::Update { op: ReduceOp::Mov, .. }))
                .expect("every thread writes ranks");
            assert!(gather_pos < first_mov);
        }
    }

    #[test]
    fn baseline_uses_atomics_for_the_shared_diff() {
        let w = generate(4, SizeClass::Tiny, Variant::Baseline);
        let atomics: usize = w
            .streams
            .iter()
            .map(|s| s.iter().filter(|i| matches!(i, WorkItem::AtomicRmw { .. })).count())
            .sum();
        assert_eq!(atomics, 4);
        assert_eq!(w.updates, 0);
    }
}
