//! Memory layout helper for the workload generators.
//!
//! Workloads place their arrays in the simulated physical address space with
//! a simple page-aligned bump allocator. Because the memory network
//! interleaves consecutive 4 KiB pages across the 16 cubes, a multi-page
//! array naturally spreads over many cubes — which is what makes the
//! operand placement (and therefore the ARTree shape) interesting.

use ar_types::addr::PAGE_BYTES;
use ar_types::Addr;

/// Size in bytes of one array element (all workloads use f64 data).
pub const ELEMENT_BYTES: u64 = 8;

/// A page-aligned bump allocator over the simulated physical address space.
#[derive(Debug, Clone)]
pub struct MemoryLayout {
    next: u64,
}

impl MemoryLayout {
    /// Creates a layout starting at the given base address (rounded up to a
    /// page boundary).
    pub fn new(base: u64) -> Self {
        MemoryLayout { next: round_up(base, PAGE_BYTES) }
    }

    /// Allocates space for `elements` f64 elements, page-aligned, and returns
    /// the base address.
    pub fn alloc_array(&mut self, elements: usize) -> Addr {
        let base = self.next;
        let bytes = round_up(elements as u64 * ELEMENT_BYTES, PAGE_BYTES).max(PAGE_BYTES);
        self.next += bytes;
        Addr::new(base)
    }

    /// Allocates one cache block (for a scalar accumulator such as `sum` or
    /// `diff`), in its own page so the flow target does not alias array data.
    pub fn alloc_scalar(&mut self) -> Addr {
        self.alloc_array(1)
    }

    /// The address of element `i` of an array starting at `base`.
    pub fn element(base: Addr, i: usize) -> Addr {
        base.offset(i as u64 * ELEMENT_BYTES)
    }

    /// Next free address (useful to confirm footprints in tests).
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        // Leave the bottom of the address space for scalars shared with the
        // host (stack, locks, ...); workload data starts at 256 MiB.
        MemoryLayout::new(256 * 1024 * 1024)
    }
}

fn round_up(value: u64, to: u64) -> u64 {
    value.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::addr::AddressMap;

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut l = MemoryLayout::default();
        let a = l.alloc_array(1000);
        let b = l.alloc_array(1000);
        assert_eq!(a.as_u64() % PAGE_BYTES, 0);
        assert_eq!(b.as_u64() % PAGE_BYTES, 0);
        assert!(b.as_u64() >= a.as_u64() + 1000 * ELEMENT_BYTES);
        assert!(l.high_water() > b.as_u64());
    }

    #[test]
    fn large_array_spreads_over_many_cubes() {
        let mut l = MemoryLayout::default();
        let base = l.alloc_array(16 * 512); // 16 pages
        let map = AddressMap::default();
        let mut cubes = std::collections::BTreeSet::new();
        for i in 0..16 * 512 {
            cubes.insert(map.cube_of(MemoryLayout::element(base, i)));
        }
        assert_eq!(cubes.len(), 16, "16-page array must touch all 16 cubes");
    }

    #[test]
    fn scalar_allocations_land_in_distinct_pages() {
        let mut l = MemoryLayout::default();
        let a = l.alloc_scalar();
        let b = l.alloc_scalar();
        assert_ne!(a.page_index(), b.page_index());
    }

    #[test]
    fn element_addressing_is_contiguous() {
        let base = Addr::new(0x1000);
        assert_eq!(MemoryLayout::element(base, 0), base);
        assert_eq!(MemoryLayout::element(base, 3).as_u64(), 0x1000 + 24);
    }
}
