//! The four data-intensive microbenchmarks of Section 4.2.2.
//!
//! `reduce` / `rand_reduce` sum all elements of one large array (sequential
//! and random access order); `mac` / `rand_mac` accumulate the element-wise
//! product of two large vectors. In the microbenchmarks the whole parallel
//! phase is the optimisation region, which is why the paper sees the largest
//! gains (and the largest data-movement reduction, Fig. 5.4b) here.

use crate::layout::MemoryLayout;
use crate::{element_value, partition, GeneratedWorkload, SizeClass, Variant};
use active_routing::ActiveKernel;
use ar_sim::SimRng;
use ar_types::{Addr, ReduceOp};

/// Number of array elements per size class (per vector for `mac`).
fn elements(size: SizeClass) -> usize {
    512 * size.factor() * size.factor()
}

/// Generates the `reduce` (sequential) or `rand_reduce` (random order)
/// microbenchmark.
pub fn reduce(
    threads: usize,
    size: SizeClass,
    variant: Variant,
    random: bool,
) -> GeneratedWorkload {
    let n = elements(size);
    let mut layout = MemoryLayout::default();
    let a_base = layout.alloc_array(n);
    let sum = layout.alloc_scalar();

    let mut kernel = ActiveKernel::new(threads);
    let values: Vec<f64> = (0..n).map(|i| element_value(1, i)).collect();
    kernel.write_array(a_base, &values);

    let order = access_order(n, random, 0x5eed_0001);
    for (t, (start, end)) in partition(n, threads).into_iter().enumerate() {
        for &i in &order[start..end] {
            let a_i = MemoryLayout::element(a_base, i);
            match variant {
                Variant::Baseline => {
                    kernel.load(t, a_i);
                    kernel.compute(t, 1);
                }
                Variant::Active | Variant::Adaptive => {
                    kernel.update(t, ReduceOp::Sum, a_i, None, None, sum);
                }
            }
        }
        finish_thread(&mut kernel, t, variant, sum, ReduceOp::Sum);
    }
    let name = if random { "rand_reduce" } else { "reduce" };
    GeneratedWorkload::from_kernel(name, variant, kernel)
}

/// Generates the `mac` (sequential) or `rand_mac` (random pairs)
/// microbenchmark: `sum += A[i] * B[i]`.
pub fn mac(threads: usize, size: SizeClass, variant: Variant, random: bool) -> GeneratedWorkload {
    let n = elements(size) / 2;
    let mut layout = MemoryLayout::default();
    let a_base = layout.alloc_array(n);
    let b_base = layout.alloc_array(n);
    let sum = layout.alloc_scalar();

    let mut kernel = ActiveKernel::new(threads);
    kernel.write_array(a_base, &(0..n).map(|i| element_value(1, i)).collect::<Vec<_>>());
    kernel.write_array(b_base, &(0..n).map(|i| element_value(2, i)).collect::<Vec<_>>());

    let order_a = access_order(n, random, 0x5eed_000a);
    let order_b = access_order(n, random, 0x5eed_000b);
    for (t, (start, end)) in partition(n, threads).into_iter().enumerate() {
        for k in start..end {
            let a_i = MemoryLayout::element(a_base, order_a[k]);
            let b_i = MemoryLayout::element(b_base, order_b[k]);
            match variant {
                Variant::Baseline => {
                    kernel.load(t, a_i);
                    kernel.load(t, b_i);
                    kernel.compute(t, 2);
                }
                Variant::Active | Variant::Adaptive => {
                    kernel.update(t, ReduceOp::Mac, a_i, Some(b_i), None, sum);
                }
            }
        }
        finish_thread(&mut kernel, t, variant, sum, ReduceOp::Mac);
    }
    let name = if random { "rand_mac" } else { "mac" };
    GeneratedWorkload::from_kernel(name, variant, kernel)
}

/// Per-thread epilogue: the baseline merges its local partial sum with an
/// `atomic +=` on the shared accumulator; the active variants issue the
/// gather (one per thread, released when every thread arrives).
fn finish_thread(
    kernel: &mut ActiveKernel,
    thread: usize,
    variant: Variant,
    target: Addr,
    op: ReduceOp,
) {
    match variant {
        Variant::Baseline => {
            kernel.compute(thread, 4);
            kernel.atomic_rmw(thread, target);
        }
        Variant::Active | Variant::Adaptive => {
            kernel.gather(thread, target, op);
        }
    }
}

/// Sequential or deterministically shuffled index order.
fn access_order(n: usize, random: bool, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if random {
        let mut rng = SimRng::seed_from_u64(seed);
        rng.shuffle(&mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::WorkItem;

    #[test]
    fn reduce_reference_is_the_array_sum() {
        let w = reduce(4, SizeClass::Tiny, Variant::Active, false);
        let expected: f64 = (0..elements(SizeClass::Tiny)).map(|i| element_value(1, i)).sum();
        assert_eq!(w.references.len(), 1);
        assert!((w.references[0].1 - expected).abs() < 1e-9);
        assert_eq!(w.updates, elements(SizeClass::Tiny) as u64);
    }

    #[test]
    fn rand_reduce_has_same_reference_as_reduce() {
        // Summation is order-independent: shuffling the accesses must not
        // change the reference result.
        let seq = reduce(2, SizeClass::Tiny, Variant::Active, false);
        let rnd = reduce(2, SizeClass::Tiny, Variant::Active, true);
        assert!((seq.references[0].1 - rnd.references[0].1).abs() < 1e-9);
    }

    #[test]
    fn rand_variants_access_memory_in_a_different_order() {
        let seq = reduce(1, SizeClass::Tiny, Variant::Baseline, false);
        let rnd = reduce(1, SizeClass::Tiny, Variant::Baseline, true);
        let seq_addrs: Vec<_> = seq.streams[0]
            .iter()
            .filter_map(|i| match i {
                WorkItem::Load(a) => Some(*a),
                _ => None,
            })
            .collect();
        let rnd_addrs: Vec<_> = rnd.streams[0]
            .iter()
            .filter_map(|i| match i {
                WorkItem::Load(a) => Some(*a),
                _ => None,
            })
            .collect();
        assert_eq!(seq_addrs.len(), rnd_addrs.len());
        assert_ne!(seq_addrs, rnd_addrs);
        let mut sorted = rnd_addrs.clone();
        sorted.sort();
        assert_eq!(sorted, seq_addrs, "random order must be a permutation of sequential order");
    }

    #[test]
    fn mac_reference_is_the_dot_product() {
        let w = mac(2, SizeClass::Tiny, Variant::Active, false);
        let n = elements(SizeClass::Tiny) / 2;
        let expected: f64 = (0..n).map(|i| element_value(1, i) * element_value(2, i)).sum();
        assert!((w.references[0].1 - expected).abs() < 1e-9);
    }

    #[test]
    fn baseline_issues_atomics_not_updates() {
        let w = mac(4, SizeClass::Tiny, Variant::Baseline, false);
        assert_eq!(w.updates, 0);
        let atomics: usize = w
            .streams
            .iter()
            .map(|s| s.iter().filter(|i| matches!(i, WorkItem::AtomicRmw { .. })).count())
            .sum();
        assert_eq!(atomics, 4, "one atomic merge per thread");
    }

    #[test]
    fn every_thread_gathers_exactly_once_in_active_mode() {
        let w = mac(8, SizeClass::Tiny, Variant::Active, true);
        for s in &w.streams {
            let gathers = s.iter().filter(|i| matches!(i, WorkItem::Gather { .. })).count();
            assert_eq!(gathers, 1);
        }
    }
}
