//! The `lud` benchmark (Rodinia): LU decomposition of a dense matrix.
//!
//! The decomposition proceeds in phases `k = 1..n`: phase `k` updates every
//! element of the trailing submatrix with a dot product of length `k`
//! (`a[i][j] -= sum_{m<k} a[i][m] * a[m][j]`). Two properties matter for the
//! evaluation:
//!
//! * the per-flow reduction length **grows with the phase index**, so early
//!   phases have little reuse to amortise the offload cost while later phases
//!   have a lot — this is the behaviour behind the dynamic-offloading case
//!   study of Section 5.4 (Fig. 5.8);
//! * the strided accesses to the column operand defeat the caches at large
//!   sizes.
//!
//! [`Variant::Adaptive`] applies the paper's runtime knob: a phase is
//! offloaded only when its updates-per-flow exceed the locality threshold
//! `CACHE_BLK_SIZE/stride1 + CACHE_BLK_SIZE/stride2`; earlier phases run on
//! the host exactly like the baseline.

use crate::layout::MemoryLayout;
use crate::{element_value, partition, GeneratedWorkload, SizeClass, Variant};
use active_routing::{ActiveKernel, AdaptivePolicy};
use ar_types::addr::CACHE_BLOCK_BYTES;
use ar_types::ReduceOp;

/// Matrix dimension per size class.
fn dim(size: SizeClass) -> usize {
    6 * size.factor()
}

/// Generates the lud workload.
pub fn generate(threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
    let n = dim(size);
    let mut layout = MemoryLayout::default();
    let a_base = layout.alloc_array(n * n);
    // One accumulator per (phase, row) dot product, allocated densely.
    let acc_base = layout.alloc_array(n * n);

    let mut kernel = ActiveKernel::new(threads);
    kernel.write_array(a_base, &(0..n * n).map(|i| element_value(1, i)).collect::<Vec<_>>());

    // Row stride is 8 bytes (contiguous); column stride is n * 8 bytes.
    let policy = AdaptivePolicy::new(CACHE_BLOCK_BYTES, 16);
    let row_stride = 8;
    let col_stride = (n * 8) as u64;

    for k in 1..n {
        // Phase k: for every remaining row i > k, reduce over m in 0..k.
        let rows: Vec<usize> = (k..n).collect();
        let offload = match variant {
            Variant::Baseline => false,
            Variant::Active => true,
            Variant::Adaptive => policy.should_offload(k as u64, row_stride, col_stride),
        };
        for (t, (start, end)) in partition(rows.len(), threads).into_iter().enumerate() {
            for &i in &rows[start..end] {
                let acc = MemoryLayout::element(acc_base, k * n + i);
                for m in 0..k {
                    let a_im = MemoryLayout::element(a_base, i * n + m);
                    let a_mi = MemoryLayout::element(a_base, m * n + i);
                    if offload {
                        kernel.update(t, ReduceOp::Mac, a_im, Some(a_mi), None, acc);
                    } else {
                        kernel.load(t, a_im);
                        kernel.load(t, a_mi);
                        kernel.compute(t, 2);
                    }
                }
                if offload {
                    kernel.gather_async(t, acc, ReduceOp::Mac, 1);
                    kernel.compute(t, 2);
                } else {
                    kernel.compute(t, 2);
                    kernel.store(t, MemoryLayout::element(a_base, i * n + k));
                }
            }
        }
        kernel.barrier_all(k as u32);
    }
    GeneratedWorkload::from_kernel("lud", variant, kernel)
}

/// The number of phases (useful for the Fig. 5.8 analysis).
pub fn phases(size: SizeClass) -> usize {
    dim(size) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::WorkItem;

    #[test]
    fn updates_per_flow_grow_with_the_phase() {
        let n = dim(SizeClass::Tiny);
        let w = generate(1, SizeClass::Tiny, Variant::Active);
        // Total updates = sum over k of (n - k) * k.
        let expected: u64 = (1..n).map(|k| ((n - k) * k) as u64).sum();
        assert_eq!(w.updates, expected);
        assert_eq!(phases(SizeClass::Tiny), n - 1);
    }

    #[test]
    fn adaptive_variant_offloads_only_late_phases() {
        let w_adaptive = generate(2, SizeClass::Small, Variant::Adaptive);
        let w_active = generate(2, SizeClass::Small, Variant::Active);
        let w_base = generate(2, SizeClass::Small, Variant::Baseline);
        assert!(w_adaptive.updates > 0, "late phases must be offloaded");
        assert!(
            w_adaptive.updates < w_active.updates,
            "early phases must stay on the host under the adaptive policy"
        );
        assert_eq!(w_base.updates, 0);
        // Adaptive still performs the host work of the early phases.
        let adaptive_mem: u64 = w_adaptive.streams.iter().map(|s| s.memory_access_count()).sum();
        assert!(adaptive_mem > 0);
    }

    #[test]
    fn phases_are_separated_by_barriers() {
        let n = dim(SizeClass::Tiny);
        let w = generate(2, SizeClass::Tiny, Variant::Baseline);
        for s in &w.streams {
            let barriers = s.iter().filter(|i| matches!(i, WorkItem::Barrier { .. })).count();
            assert_eq!(barriers, n - 1);
        }
    }

    #[test]
    fn references_match_dot_products() {
        let n = dim(SizeClass::Tiny);
        let w = generate(1, SizeClass::Tiny, Variant::Active);
        // Phase 1, row i = n-1: single product a[i][0] * a[0][i].
        let i = n - 1;
        let expected = element_value(1, i * n) * element_value(1, i);
        let found = w.references.iter().any(|(_, v)| (v - expected).abs() < 1e-9);
        assert!(found, "the phase-1 dot product for the last row must appear among the references");
        assert_eq!(w.references.len(), (1..n).map(|k| n - k).sum::<usize>());
    }
}
