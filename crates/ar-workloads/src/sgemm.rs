//! The `sgemm` benchmark (Parboil): dense matrix multiplication
//! `C[i][j] = sum_k A[i][k] * B[k][j]`.
//!
//! Each output element is one multiply-accumulate reduction over `K`
//! operand pairs; threads partition the rows of `C`. The column accesses to
//! `B` stride through memory, which is what defeats the caches at the
//! paper's 4096×4096 size; the [`SizeClass`] dimensions below keep the same
//! access structure at a tractable scale.

use crate::layout::MemoryLayout;
use crate::{element_value, partition, GeneratedWorkload, SizeClass, Variant};
use active_routing::ActiveKernel;
use ar_types::ReduceOp;

/// The (square) matrix dimension per size class.
fn dim(size: SizeClass) -> usize {
    4 * size.factor()
}

/// Generates the sgemm workload.
pub fn generate(threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
    let n = dim(size);
    let mut layout = MemoryLayout::default();
    let a_base = layout.alloc_array(n * n);
    let b_base = layout.alloc_array(n * n);
    let c_base = layout.alloc_array(n * n);

    let mut kernel = ActiveKernel::new(threads);
    kernel.write_array(a_base, &(0..n * n).map(|i| element_value(1, i)).collect::<Vec<_>>());
    kernel.write_array(b_base, &(0..n * n).map(|i| element_value(2, i)).collect::<Vec<_>>());

    for (t, (row_start, row_end)) in partition(n, threads).into_iter().enumerate() {
        for i in row_start..row_end {
            for j in 0..n {
                let c_ij = MemoryLayout::element(c_base, i * n + j);
                for k in 0..n {
                    let a_ik = MemoryLayout::element(a_base, i * n + k);
                    let b_kj = MemoryLayout::element(b_base, k * n + j);
                    match variant {
                        Variant::Baseline => {
                            kernel.load(t, a_ik);
                            kernel.load(t, b_kj);
                            kernel.compute(t, 2);
                        }
                        Variant::Active | Variant::Adaptive => {
                            kernel.update(t, ReduceOp::Mac, a_ik, Some(b_kj), None, c_ij);
                        }
                    }
                }
                match variant {
                    Variant::Baseline => kernel.store(t, c_ij),
                    Variant::Active | Variant::Adaptive => {
                        kernel.gather_async(t, c_ij, ReduceOp::Mac, 1)
                    }
                }
            }
        }
    }
    GeneratedWorkload::from_kernel("sgemm", variant, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_types::Addr;

    fn reference_c(n: usize, i: usize, j: usize) -> f64 {
        (0..n).map(|k| element_value(1, i * n + k) * element_value(2, k * n + j)).sum()
    }

    #[test]
    fn every_output_element_has_the_right_reference() {
        let n = dim(SizeClass::Tiny);
        let w = generate(2, SizeClass::Tiny, Variant::Active);
        assert_eq!(w.references.len(), n * n);
        // The references are sorted by address; rebuild the (i, j) mapping.
        let refs: std::collections::HashMap<Addr, f64> = w.references.iter().copied().collect();
        let c_base = w.references.iter().map(|(a, _)| *a).min().unwrap();
        for i in 0..n {
            for j in 0..n {
                let addr = c_base.offset(((i * n + j) * 8) as u64);
                let got = refs.get(&addr).copied().expect("every element has a flow");
                assert!((got - reference_c(n, i, j)).abs() < 1e-9, "C[{i}][{j}]");
            }
        }
        assert_eq!(w.updates, (n * n * n) as u64);
    }

    #[test]
    fn work_scales_cubically_with_dimension() {
        let small = generate(1, SizeClass::Tiny, Variant::Active);
        let big = generate(1, SizeClass::Small, Variant::Active);
        assert_eq!(big.updates / small.updates, 8, "doubling n must give 8x the updates");
    }

    #[test]
    fn baseline_loads_two_operands_per_mac() {
        let n = dim(SizeClass::Tiny);
        let w = generate(1, SizeClass::Tiny, Variant::Baseline);
        let loads: u64 = w.streams.iter().map(|s| s.memory_access_count()).sum();
        // 2 loads per inner iteration plus 1 store per output element.
        assert_eq!(loads, (2 * n * n * n + n * n) as u64);
    }
}
