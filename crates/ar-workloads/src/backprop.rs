//! The `backprop` benchmark (Rodinia): feed-forward pass of one hidden layer.
//!
//! Every hidden unit `j` aggregates `sum_i input[i] * weight[j][i]` before its
//! activation. The paper uses a single hidden layer with 2,097,152 hidden
//! units; here the layer dimensions scale with [`SizeClass`] (documented in
//! DESIGN.md), keeping the property that the weight matrix far exceeds the L1
//! and, at the larger sizes, the shared L2.

use crate::layout::MemoryLayout;
use crate::{element_value, partition, GeneratedWorkload, SizeClass, Variant};
use active_routing::ActiveKernel;
use ar_types::ReduceOp;

/// `(input_dim, hidden_units)` per size class.
fn dims(size: SizeClass) -> (usize, usize) {
    let f = size.factor();
    (32 * f, 8 * f)
}

/// Generates the backprop feed-forward workload.
pub fn generate(threads: usize, size: SizeClass, variant: Variant) -> GeneratedWorkload {
    let (input_dim, hidden) = dims(size);
    let mut layout = MemoryLayout::default();
    let input_base = layout.alloc_array(input_dim);
    let weight_base = layout.alloc_array(input_dim * hidden);
    let hidden_base = layout.alloc_array(hidden);

    let mut kernel = ActiveKernel::new(threads);
    kernel
        .write_array(input_base, &(0..input_dim).map(|i| element_value(1, i)).collect::<Vec<_>>());
    kernel.write_array(
        weight_base,
        &(0..input_dim * hidden).map(|i| element_value(2, i)).collect::<Vec<_>>(),
    );

    // Threads partition the hidden units; each hidden unit is one reduction
    // flow targeting its activation accumulator.
    for (t, (start, end)) in partition(hidden, threads).into_iter().enumerate() {
        for j in start..end {
            let h_j = MemoryLayout::element(hidden_base, j);
            for i in 0..input_dim {
                let in_i = MemoryLayout::element(input_base, i);
                let w_ji = MemoryLayout::element(weight_base, j * input_dim + i);
                match variant {
                    Variant::Baseline => {
                        kernel.load(t, in_i);
                        kernel.load(t, w_ji);
                        kernel.compute(t, 2);
                    }
                    Variant::Active | Variant::Adaptive => {
                        kernel.update(t, ReduceOp::Mac, in_i, Some(w_ji), None, h_j);
                    }
                }
            }
            match variant {
                Variant::Baseline => {
                    // Sigmoid activation + store of the hidden unit.
                    kernel.compute(t, 8);
                    kernel.store(t, h_j);
                }
                Variant::Active | Variant::Adaptive => {
                    kernel.gather_async(t, h_j, ReduceOp::Mac, 1);
                    kernel.compute(t, 8);
                }
            }
        }
    }
    GeneratedWorkload::from_kernel("backprop", variant, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_match_matrix_vector_product() {
        let w = generate(2, SizeClass::Tiny, Variant::Active);
        let (input_dim, hidden) = dims(SizeClass::Tiny);
        assert_eq!(w.references.len(), hidden, "one flow per hidden unit");
        // Spot-check hidden unit 0: sum_i in[i] * w[0][i].
        let expected: f64 = (0..input_dim).map(|i| element_value(1, i) * element_value(2, i)).sum();
        let first = w.references.iter().map(|(_, v)| *v).next().unwrap();
        assert!((first - expected).abs() < 1e-9);
        assert_eq!(w.updates, (input_dim * hidden) as u64);
    }

    #[test]
    fn baseline_streams_have_no_offloads() {
        let w = generate(4, SizeClass::Tiny, Variant::Baseline);
        assert_eq!(w.updates, 0);
        assert!(w.references.is_empty());
        assert!(w.total_instructions() > 0);
    }

    #[test]
    fn hidden_units_are_distributed_across_threads() {
        let w = generate(4, SizeClass::Tiny, Variant::Active);
        let non_empty = w.streams.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(non_empty, 4);
    }
}
