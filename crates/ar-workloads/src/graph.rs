//! Synthetic graph generator for the PageRank benchmark.
//!
//! The paper evaluates PageRank on the SNAP web-Google graph. That dataset is
//! not shipped with this reproduction; instead a deterministic preferential-
//! attachment generator produces a graph with the property that matters for
//! the memory system: a heavily skewed (power-law-like) degree distribution,
//! which makes the per-vertex score accumulation touch memory irregularly.

use ar_sim::SimRng;

/// A directed graph in compressed adjacency-list form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices.
    vertices: usize,
    /// For each vertex, the list of vertices it links to.
    out_edges: Vec<Vec<usize>>,
}

impl Graph {
    /// Generates a preferential-attachment graph with `vertices` vertices and
    /// roughly `edges_per_vertex` out-edges per vertex, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero or `edges_per_vertex` is zero.
    pub fn preferential_attachment(vertices: usize, edges_per_vertex: usize, seed: u64) -> Self {
        assert!(vertices > 0, "graph needs at least one vertex");
        assert!(edges_per_vertex > 0, "graph needs at least one edge per vertex");
        let mut rng = SimRng::seed_from_u64(seed);
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); vertices];
        // Endpoint pool for preferential attachment: vertices appear once per
        // incident edge, so sampling uniformly from the pool is degree-biased.
        let mut pool: Vec<usize> = vec![0];
        for (v, edges) in out_edges.iter_mut().enumerate().skip(1) {
            for _ in 0..edges_per_vertex {
                let target =
                    if rng.chance(0.7) { pool[rng.index(pool.len())] } else { rng.index(v) };
                edges.push(target);
                pool.push(target);
            }
            pool.push(v);
        }
        Graph { vertices, out_edges }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Total number of directed edges.
    pub fn edges(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Out-neighbours of a vertex.
    pub fn out_neighbors(&self, v: usize) -> &[usize] {
        &self.out_edges[v]
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_edges[v].len()
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.vertices];
        for targets in &self.out_edges {
            for &t in targets {
                deg[t] += 1;
            }
        }
        deg
    }

    /// Maximum in-degree (a measure of skew).
    pub fn max_in_degree(&self) -> usize {
        self.in_degrees().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Graph::preferential_attachment(200, 4, 42);
        let b = Graph::preferential_attachment(200, 4, 42);
        assert_eq!(a, b);
        let c = Graph::preferential_attachment(200, 4, 43);
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn edge_count_matches_request() {
        let g = Graph::preferential_attachment(100, 3, 1);
        assert_eq!(g.vertices(), 100);
        assert_eq!(g.edges(), 99 * 3);
        assert_eq!(g.out_degree(0), 0, "vertex 0 has no earlier vertices to link to");
        assert_eq!(g.out_degree(50), 3);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = Graph::preferential_attachment(2000, 4, 7);
        let degrees = g.in_degrees();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            g.max_in_degree() as f64 > 10.0 * mean,
            "preferential attachment must produce hub vertices (max {} vs mean {mean:.1})",
            g.max_in_degree()
        );
    }

    #[test]
    fn all_edges_point_to_valid_vertices() {
        let g = Graph::preferential_attachment(300, 2, 3);
        for v in 0..g.vertices() {
            for &t in g.out_neighbors(v) {
                assert!(t < g.vertices());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_graph_panics() {
        let _ = Graph::preferential_attachment(0, 2, 0);
    }
}
