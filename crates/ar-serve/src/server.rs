//! The sweep daemon: a TCP listener, a FIFO job scheduler with in-flight
//! dedup, and a persistent worker pool.
//!
//! One [`SweepServer`] owns one base [`SystemConfig`], one [`ReportCache`]
//! directory and one workload registry. Each accepted connection gets a
//! handler thread that translates [`Request`]s into scheduler operations;
//! a fixed pool of worker threads drains the job queue in strict FIFO
//! order. Cells are identified by their cache address (the content hash of
//! [`CellKey::cache_key`]), which makes in-flight dedup trivial: a second
//! request for a cell that is already queued or running *subscribes* to the
//! existing job instead of enqueueing a duplicate, and every subscriber
//! receives the one shared report when the run finishes.
//!
//! Progress flows the other way through a per-run [`Observer`]: IPC samples
//! taken inside the simulation kernel are fanned out to every subscriber
//! that asked for them, while the run itself stays byte-deterministic
//! (observers never influence simulated timing).

use crate::cache::ReportCache;
use crate::protocol::{
    read_line, write_line, CellStatus, Event, Request, StatsSnapshot, PROTOCOL_VERSION,
};
use ar_system::{CellKey, Observer, ObserverControl, SimEvent, SimReport, CACHE_SCHEMA_VERSION};
use ar_types::config::SystemConfig;
use ar_workloads::WorkloadRegistry;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Configuration of a [`SweepServer`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Base system configuration every cell is resolved against.
    pub base: SystemConfig,
    /// Root directory of the persistent report cache.
    pub cache_dir: PathBuf,
    /// Worker-thread count (`0` = available parallelism).
    pub workers: usize,
    /// The workloads cells are resolved against (default: the built-ins).
    pub registry: WorkloadRegistry,
}

impl ServerConfig {
    /// A single-worker server over `base` caching into `cache_dir`, serving
    /// the built-in workloads.
    pub fn new(base: SystemConfig, cache_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            base,
            cache_dir: cache_dir.into(),
            workers: 1,
            registry: WorkloadRegistry::builtin(),
        }
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the workload registry (tests use this to shadow a built-in
    /// with an instrumented or failing variant).
    #[must_use]
    pub fn registry(mut self, registry: WorkloadRegistry) -> Self {
        self.registry = registry;
        self
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("cache_dir", &self.cache_dir)
            .field("workers", &self.workers)
            .field("workloads", &self.registry.len())
            .finish_non_exhaustive()
    }
}

/// An update sent from the scheduler/workers to one subscribed connection.
enum JobUpdate {
    Running { index: usize },
    Progress { index: usize, network_cycle: u64, window_ipc: f64 },
    Done { index: usize, cached: bool, shared: bool, report: Arc<SimReport> },
    Failed { index: usize, message: String },
}

/// One connection's interest in one job.
struct Subscriber {
    /// Cell index in the subscriber's own request.
    index: usize,
    /// Channel back to the subscriber's handler thread.
    tx: mpsc::Sender<JobUpdate>,
    /// Whether this subscriber wants IPC progress samples.
    progress: bool,
}

/// A queued or running simulation job, keyed by cache address.
struct Job {
    key: CellKey,
    running: bool,
    subscribers: Vec<Subscriber>,
}

/// The scheduler state guarded by [`Shared::state`].
#[derive(Default)]
struct SchedState {
    /// Cache addresses in arrival order — strict FIFO.
    queue: VecDeque<u64>,
    /// All queued or running jobs by cache address.
    jobs: HashMap<u64, Job>,
    /// Set once; workers exit, queued jobs fail, the accept loop stops.
    shutdown: bool,
}

/// State shared by the accept loop, handler threads and workers.
struct Shared {
    base: SystemConfig,
    base_hash: u64,
    cache: ReportCache,
    registry: WorkloadRegistry,
    state: Mutex<SchedState>,
    work_ready: Condvar,
    runs: AtomicU64,
    cache_hits: AtomicU64,
    dedup_joins: AtomicU64,
}

impl Shared {
    fn stats(&self) -> StatsSnapshot {
        let in_flight =
            self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).jobs.len() as u64;
        StatsSnapshot {
            runs: self.runs.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            dedup_joins: self.dedup_joins.load(Ordering::Relaxed),
            in_flight,
        }
    }

    /// Initiates shutdown: fails every still-queued job, wakes the workers
    /// so they observe the flag, and pokes the accept loop with a throwaway
    /// connection so it re-checks the flag.
    fn shutdown(&self, addr: SocketAddr) {
        let failed = {
            let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            let queued: Vec<u64> = st.queue.drain(..).collect();
            let mut failed = Vec::new();
            for hash in queued {
                if let Some(job) = st.jobs.remove(&hash) {
                    failed.push(job);
                }
            }
            failed
        };
        for job in failed {
            for sub in job.subscribers {
                let _ = sub.tx.send(JobUpdate::Failed {
                    index: sub.index,
                    message: "server shutting down".to_string(),
                });
            }
        }
        self.work_ready.notify_all();
        // Unblock `TcpListener::accept`; the loop sees `shutdown` and exits.
        let _ = TcpStream::connect(addr);
    }
}

/// Streams kernel IPC samples to every progress-subscribed connection of
/// one job, including connections that join while the run is in flight.
struct ProgressForwarder {
    shared: Arc<Shared>,
    hash: u64,
}

impl Observer for ProgressForwarder {
    fn on_event(&mut self, event: &SimEvent) -> ObserverControl {
        if let SimEvent::Sample(sample) = event {
            let st = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(job) = st.jobs.get(&self.hash) {
                for sub in &job.subscribers {
                    if sub.progress {
                        let _ = sub.tx.send(JobUpdate::Progress {
                            index: sub.index,
                            network_cycle: sample.network_cycle,
                            window_ipc: sample.window_ipc,
                        });
                    }
                }
            }
        }
        ObserverControl::Continue
    }
}

/// A bound-but-not-yet-running sweep server. See the [module docs](self).
pub struct SweepServer {
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    shared: Arc<Shared>,
}

impl SweepServer {
    /// Binds a server (e.g. to `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<SweepServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = match config.workers {
            0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
            n => n,
        };
        let base_hash = config.base.to_json().content_hash();
        let shared = Arc::new(Shared {
            base: config.base,
            base_hash,
            cache: ReportCache::new(config.cache_dir),
            registry: config.registry,
            state: Mutex::new(SchedState::default()),
            work_ready: Condvar::new(),
            runs: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            dedup_joins: AtomicU64::new(0),
        });
        Ok(SweepServer { listener, addr, workers, shared })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the server on the calling thread until a shutdown request
    /// arrives: spawns the worker pool, then accepts and serves connections.
    ///
    /// # Errors
    ///
    /// Propagates accept errors (worker and handler threads never abort the
    /// server).
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let shared = self.shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let result = loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) => break Err(e),
            };
            if self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).shutdown
            {
                break Ok(());
            }
            let shared = self.shared.clone();
            let addr = self.addr;
            std::thread::spawn(move || {
                let _ = serve_connection(&shared, stream, addr);
            });
        };
        self.shared.work_ready.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        result
    }

    /// Spawns [`SweepServer::run`] on a background thread and returns a
    /// handle for tests and embedding.
    pub fn spawn(self) -> RunningServer {
        let addr = self.addr;
        let shared = self.shared.clone();
        let thread = std::thread::spawn(move || self.run());
        RunningServer { addr, shared, thread }
    }
}

/// A handle to a server running on a background thread.
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current scheduler counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// Shuts the server down and joins its thread. Queued cells fail;
    /// running cells finish first.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's exit status.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.shutdown(self.addr);
        self.thread.join().map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// One worker: pop the FIFO queue, re-check the cache, simulate, persist,
/// fan the report out to every subscriber.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Claim the oldest queued job (or exit on shutdown).
        let (hash, key) = {
            let mut st = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(hash) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&hash).expect("queued jobs stay registered");
                    job.running = true;
                    for sub in &job.subscribers {
                        let _ = sub.tx.send(JobUpdate::Running { index: sub.index });
                    }
                    break (hash, job.key.clone());
                }
                st = shared.work_ready.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };

        // The entry may have appeared since the accept-time cache check
        // (another server instance sharing the directory, a prior run with
        // an equivalent effective key) — re-check before paying for a run.
        let cache_key = key.cache_key(&shared.base);
        if let Some(report) = shared.cache.load(&cache_key) {
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            finish_job(shared, hash, Ok((Arc::new(report), true)));
            continue;
        }

        let outcome = match shared.registry.get(&key.workload) {
            None => Err(format!("unknown workload {:?}", key.workload)),
            Some(workload) => {
                // A panicking workload or simulation must fail only its own
                // cell, never the worker: catch the unwind, report it as a
                // per-cell failure to every subscriber, and keep serving.
                // (The poison-tolerant locks above keep the scheduler usable
                // even when the panic unwound through a held guard.)
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let built = key
                        .configure(&shared.base, workload)
                        .observer(ProgressForwarder { shared: shared.clone(), hash })
                        .build();
                    match built {
                        Err(e) => Err(format!("invalid cell {}: {e}", key.label())),
                        Ok(simulation) => {
                            let report = simulation.run();
                            shared.runs.fetch_add(1, Ordering::Relaxed);
                            // A failed persist is not a failed run: the report
                            // is still correct, the cell just stays uncached.
                            let _ = shared.cache.store(&cache_key, &report);
                            Ok((Arc::new(report), false))
                        }
                    }
                }));
                run.unwrap_or_else(|panic| {
                    Err(format!("cell {} panicked: {}", key.label(), panic_message(&*panic)))
                })
            }
        };
        finish_job(shared, hash, outcome);
    }
}

/// The panic payload's message, for the per-cell failure report.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Removes a finished job and fans its outcome out to every subscriber.
fn finish_job(shared: &Shared, hash: u64, outcome: Result<(Arc<SimReport>, bool), String>) {
    let job = shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .jobs
        .remove(&hash)
        .expect("running jobs stay registered");
    let shared_run = job.subscribers.len() > 1;
    for sub in job.subscribers {
        let update = match &outcome {
            Ok((report, cached)) => JobUpdate::Done {
                index: sub.index,
                cached: *cached,
                shared: shared_run,
                report: report.clone(),
            },
            Err(message) => JobUpdate::Failed { index: sub.index, message: message.clone() },
        };
        let _ = sub.tx.send(update);
    }
}

/// Serves one client connection until EOF or a protocol error.
fn serve_connection(
    shared: &Arc<Shared>,
    stream: TcpStream,
    server_addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_line(
        &mut writer,
        &Event::Hello {
            proto: PROTOCOL_VERSION,
            schema: CACHE_SCHEMA_VERSION,
            base_hash: shared.base_hash,
        }
        .to_json(),
    )?;
    loop {
        let doc = match read_line(&mut reader) {
            Ok(Some(doc)) => doc,
            Ok(None) => return Ok(()),
            Err(e) => {
                let event = Event::Error { message: format!("malformed request: {e}") };
                let _ = write_line(&mut writer, &event.to_json());
                return Err(e);
            }
        };
        match Request::from_json(&doc) {
            Err(e) => {
                let event = Event::Error { message: format!("bad request: {e}") };
                let _ = write_line(&mut writer, &event.to_json());
                return Ok(());
            }
            Ok(Request::Ping) => write_line(&mut writer, &Event::Pong.to_json())?,
            Ok(Request::Stats) => {
                write_line(&mut writer, &Event::Stats(shared.stats()).to_json())?;
            }
            Ok(Request::Shutdown) => {
                write_line(&mut writer, &Event::ShuttingDown.to_json())?;
                shared.shutdown(server_addr);
                return Ok(());
            }
            Ok(Request::Run { progress, cells }) => {
                serve_run(shared, &mut writer, progress, &cells)?;
            }
        }
    }
}

/// Handles one [`Request::Run`]: disposes of every cell (hit / queue /
/// join), then forwards job updates until all pending cells resolve.
fn serve_run(
    shared: &Arc<Shared>,
    writer: &mut BufWriter<TcpStream>,
    progress: bool,
    cells: &[CellKey],
) -> io::Result<()> {
    let (tx, rx) = mpsc::channel::<JobUpdate>();
    let mut pending = 0usize;
    let (mut hits, mut fresh, mut joined) = (0usize, 0usize, 0usize);
    // Cache hits are buffered so all `accepted` lines precede any `done`.
    let mut hit_reports: Vec<(usize, SimReport)> = Vec::new();

    for (index, cell) in cells.iter().enumerate() {
        let cache_key = cell.cache_key(&shared.base);
        let hash = cache_key.content_hash();
        let subscriber = || Subscriber { index, tx: tx.clone(), progress };

        let status = {
            let mut st = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(job) = st.jobs.get_mut(&hash) {
                // In-flight dedup: ride the existing run.
                if job.running {
                    let _ = tx.send(JobUpdate::Running { index });
                }
                job.subscribers.push(subscriber());
                shared.dedup_joins.fetch_add(1, Ordering::Relaxed);
                joined += 1;
                pending += 1;
                CellStatus::Joined
            } else if st.shutdown {
                let _ = tx
                    .send(JobUpdate::Failed { index, message: "server shutting down".to_string() });
                pending += 1;
                CellStatus::Queued
            } else {
                drop(st);
                if let Some(report) = shared.cache.load(&cache_key) {
                    shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                    hit_reports.push((index, report));
                    hits += 1;
                    CellStatus::Hit
                } else {
                    // Re-take the lock; another connection may have queued
                    // this very cell while we were reading the cache.
                    let mut st =
                        shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    pending += 1;
                    if let Some(job) = st.jobs.get_mut(&hash) {
                        if job.running {
                            let _ = tx.send(JobUpdate::Running { index });
                        }
                        job.subscribers.push(subscriber());
                        shared.dedup_joins.fetch_add(1, Ordering::Relaxed);
                        joined += 1;
                        CellStatus::Joined
                    } else {
                        st.jobs.insert(
                            hash,
                            Job {
                                key: cell.clone(),
                                running: false,
                                subscribers: vec![subscriber()],
                            },
                        );
                        st.queue.push_back(hash);
                        shared.work_ready.notify_one();
                        fresh += 1;
                        CellStatus::Queued
                    }
                }
            }
        };
        write_line(writer, &Event::Accepted { index, key_hash: hash, status }.to_json())?;
    }
    drop(tx);

    for (index, report) in hit_reports {
        let event = Event::Done { index, cached: true, shared: false, report: Box::new(report) };
        write_line(writer, &event.to_json())?;
    }

    while pending > 0 {
        let update = rx.recv().map_err(|_| {
            io::Error::other("scheduler dropped a pending cell (server shutting down?)")
        })?;
        let event = match update {
            JobUpdate::Running { index } => Event::Running { index },
            JobUpdate::Progress { index, network_cycle, window_ipc } => {
                Event::Progress { index, network_cycle, window_ipc }
            }
            JobUpdate::Done { index, cached, shared, report } => {
                pending -= 1;
                Event::Done { index, cached, shared, report: Box::new(report.as_ref().clone()) }
            }
            JobUpdate::Failed { index, message } => {
                pending -= 1;
                Event::CellError { index, message }
            }
        };
        write_line(writer, &event.to_json())?;
    }
    write_line(writer, &Event::SweepDone { hits, runs: fresh, joined }.to_json())
}
