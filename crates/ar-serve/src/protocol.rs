//! The newline-delimited JSON wire protocol between sweep clients and the
//! sweep server.
//!
//! Every message is one compact JSON document on one line ([`write_line`] /
//! [`read_line`]), built on the in-tree [`ar_types::json`] model — the
//! workspace builds offline, so there is no serde and no framing library.
//! Clients send [`Request`]s; the server answers with a stream of
//! [`Event`]s. The only multi-event exchange is [`Request::Run`]: the server
//! first acknowledges every requested cell with [`Event::Accepted`] (saying
//! whether it was a cache hit, a fresh enqueue, or joined an in-flight run),
//! then streams [`Event::Running`] / [`Event::Progress`] / [`Event::Done`]
//! per cell as the scheduler gets to them, and closes the exchange with
//! [`Event::SweepDone`]. Cells are identified by their *index into the
//! request* so that duplicate cells in one request stay unambiguous.

use ar_system::{CellKey, SimReport};
use ar_types::json::{Json, JsonError};
use std::io::{self, BufRead, Write};

/// Wire-protocol revision. Bumped on any incompatible message change;
/// [`Event::Hello`] carries it so clients can fail fast on mismatch.
pub const PROTOCOL_VERSION: u32 = 1;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered with [`Event::Pong`].
    Ping,
    /// Scheduler counters; answered with [`Event::Stats`].
    Stats,
    /// Asks the server to stop: queued cells are failed, running cells
    /// finish, the listener closes. Answered with [`Event::ShuttingDown`].
    Shutdown,
    /// Runs (or serves from cache) a batch of sweep cells.
    Run {
        /// Whether the client wants per-cell [`Event::Progress`] samples.
        progress: bool,
        /// The cells, in client order; event `index` fields refer to this
        /// vector.
        cells: Vec<CellKey>,
    },
}

impl Request {
    /// Encodes the request as one JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj([("type", Json::from("ping"))]),
            Request::Stats => Json::obj([("type", Json::from("stats"))]),
            Request::Shutdown => Json::obj([("type", Json::from("shutdown"))]),
            Request::Run { progress, cells } => Json::obj([
                ("type", Json::from("run")),
                ("progress", Json::from(*progress)),
                ("cells", Json::arr(cells.iter().map(CellKey::to_json))),
            ]),
        }
    }

    /// Decodes a request document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on an unknown type tag or malformed fields.
    pub fn from_json(doc: &Json) -> Result<Request, JsonError> {
        match doc.get("type").and_then(Json::as_str) {
            Some("ping") => Ok(Request::Ping),
            Some("stats") => Ok(Request::Stats),
            Some("shutdown") => Ok(Request::Shutdown),
            Some("run") => {
                let progress = doc.get("progress").and_then(Json::as_bool).unwrap_or(false);
                let cells = doc
                    .get("cells")
                    .and_then(Json::as_array)
                    .ok_or_else(|| err("run request needs a cells array"))?
                    .iter()
                    .map(CellKey::from_json)
                    .collect::<Result<Vec<CellKey>, JsonError>>()?;
                Ok(Request::Run { progress, cells })
            }
            _ => Err(err("unknown request type")),
        }
    }
}

/// How the server disposed of one requested cell at accept time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Served immediately from the on-disk cache.
    Hit,
    /// Enqueued as a fresh simulation run.
    Queued,
    /// Attached to an already queued or running job for the same cell
    /// (in-flight dedup: the run is shared, executed once).
    Joined,
}

impl CellStatus {
    /// The status's wire name (`"hit"`, `"queued"`, `"joined"`).
    pub fn name(self) -> &'static str {
        match self {
            CellStatus::Hit => "hit",
            CellStatus::Queued => "queued",
            CellStatus::Joined => "joined",
        }
    }

    fn parse(name: &str) -> Option<Self> {
        match name {
            "hit" => Some(CellStatus::Hit),
            "queued" => Some(CellStatus::Queued),
            "joined" => Some(CellStatus::Joined),
            _ => None,
        }
    }
}

/// A snapshot of the server's scheduler counters ([`Event::Stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Simulations actually executed (cache misses).
    pub runs: u64,
    /// Requests answered from the cache (including worker-side re-checks).
    pub cache_hits: u64,
    /// Requests that joined an in-flight run instead of starting their own.
    pub dedup_joins: u64,
    /// Jobs currently queued or running.
    pub in_flight: u64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Sent once per connection, before any request is read.
    Hello {
        /// Wire-protocol revision ([`PROTOCOL_VERSION`]).
        proto: u32,
        /// Cache-key schema revision ([`ar_system::CACHE_SCHEMA_VERSION`]).
        schema: u32,
        /// Content hash of the server's base configuration, so a client can
        /// tell two servers apart.
        base_hash: u64,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Answer to [`Request::Shutdown`].
    ShuttingDown,
    /// Acknowledges one requested cell.
    Accepted {
        /// Index into the request's cell vector.
        index: usize,
        /// The cell's cache address (content hash of its canonical key).
        key_hash: u64,
        /// How the cell was disposed of.
        status: CellStatus,
    },
    /// The cell's simulation started executing.
    Running {
        /// Index into the request's cell vector.
        index: usize,
    },
    /// A periodic IPC sample from the cell's running simulation (only sent
    /// when the request asked for progress).
    Progress {
        /// Index into the request's cell vector.
        index: usize,
        /// Memory-network cycle of the sample.
        network_cycle: u64,
        /// IPC over the window that just closed.
        window_ipc: f64,
    },
    /// The cell's report is ready.
    Done {
        /// Index into the request's cell vector.
        index: usize,
        /// True when the report came from the cache rather than a run.
        cached: bool,
        /// True when the report came from a run shared with another request.
        shared: bool,
        /// The report itself.
        report: Box<SimReport>,
    },
    /// The cell failed (unknown workload, invalid configuration, shutdown).
    CellError {
        /// Index into the request's cell vector.
        index: usize,
        /// Human-readable reason.
        message: String,
    },
    /// Closes a [`Request::Run`] exchange.
    SweepDone {
        /// Cells served from the cache.
        hits: usize,
        /// Cells enqueued as fresh runs.
        runs: usize,
        /// Cells that joined in-flight runs.
        joined: usize,
    },
    /// A request-level failure (malformed message); the server closes the
    /// connection after sending it.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Event {
    /// Encodes the event as one JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Event::Hello { proto, schema, base_hash } => Json::obj([
                ("event", Json::from("hello")),
                ("proto", Json::from(*proto)),
                ("schema", Json::from(*schema)),
                ("base_hash", Json::from(format!("{base_hash:016x}"))),
            ]),
            Event::Pong => Json::obj([("event", Json::from("pong"))]),
            Event::Stats(s) => Json::obj([
                ("event", Json::from("stats")),
                ("runs", Json::from(s.runs)),
                ("cache_hits", Json::from(s.cache_hits)),
                ("dedup_joins", Json::from(s.dedup_joins)),
                ("in_flight", Json::from(s.in_flight)),
            ]),
            Event::ShuttingDown => Json::obj([("event", Json::from("shutting_down"))]),
            Event::Accepted { index, key_hash, status } => Json::obj([
                ("event", Json::from("accepted")),
                ("index", Json::from(*index)),
                ("key", Json::from(format!("{key_hash:016x}"))),
                ("status", Json::from(status.name())),
            ]),
            Event::Running { index } => {
                Json::obj([("event", Json::from("running")), ("index", Json::from(*index))])
            }
            Event::Progress { index, network_cycle, window_ipc } => Json::obj([
                ("event", Json::from("progress")),
                ("index", Json::from(*index)),
                ("network_cycle", Json::from(*network_cycle)),
                ("window_ipc", Json::from(*window_ipc)),
            ]),
            Event::Done { index, cached, shared, report } => Json::obj([
                ("event", Json::from("done")),
                ("index", Json::from(*index)),
                ("cached", Json::from(*cached)),
                ("shared", Json::from(*shared)),
                ("report", report.to_json()),
            ]),
            Event::CellError { index, message } => Json::obj([
                ("event", Json::from("cell_error")),
                ("index", Json::from(*index)),
                ("message", Json::from(message.clone())),
            ]),
            Event::SweepDone { hits, runs, joined } => Json::obj([
                ("event", Json::from("sweep_done")),
                ("hits", Json::from(*hits)),
                ("runs", Json::from(*runs)),
                ("joined", Json::from(*joined)),
            ]),
            Event::Error { message } => Json::obj([
                ("event", Json::from("error")),
                ("message", Json::from(message.clone())),
            ]),
        }
    }

    /// Decodes an event document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on an unknown event tag or malformed fields.
    pub fn from_json(doc: &Json) -> Result<Event, JsonError> {
        let index = || {
            doc.get("index")
                .and_then(Json::as_u64)
                .map(|i| i as usize)
                .ok_or_else(|| err("event needs an index"))
        };
        let string = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| err("missing string field"))
        };
        match doc.get("event").and_then(Json::as_str) {
            Some("hello") => Ok(Event::Hello {
                proto: doc.get("proto").and_then(Json::as_u64).unwrap_or(0) as u32,
                schema: doc.get("schema").and_then(Json::as_u64).unwrap_or(0) as u32,
                base_hash: doc
                    .get("base_hash")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| err("hello needs a base_hash"))?,
            }),
            Some("pong") => Ok(Event::Pong),
            Some("stats") => {
                let counter = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
                Ok(Event::Stats(StatsSnapshot {
                    runs: counter("runs"),
                    cache_hits: counter("cache_hits"),
                    dedup_joins: counter("dedup_joins"),
                    in_flight: counter("in_flight"),
                }))
            }
            Some("shutting_down") => Ok(Event::ShuttingDown),
            Some("accepted") => Ok(Event::Accepted {
                index: index()?,
                key_hash: doc
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| err("accepted needs a key"))?,
                status: doc
                    .get("status")
                    .and_then(Json::as_str)
                    .and_then(CellStatus::parse)
                    .ok_or_else(|| err("accepted needs a status"))?,
            }),
            Some("running") => Ok(Event::Running { index: index()? }),
            Some("progress") => Ok(Event::Progress {
                index: index()?,
                network_cycle: doc
                    .get("network_cycle")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err("progress needs a network_cycle"))?,
                window_ipc: doc
                    .get("window_ipc")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| err("progress needs a window_ipc"))?,
            }),
            Some("done") => Ok(Event::Done {
                index: index()?,
                cached: doc
                    .get("cached")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| err("done needs a cached flag"))?,
                shared: doc.get("shared").and_then(Json::as_bool).unwrap_or(false),
                report: Box::new(SimReport::from_json(
                    doc.get("report").ok_or_else(|| err("done needs a report"))?,
                )?),
            }),
            Some("cell_error") => {
                Ok(Event::CellError { index: index()?, message: string("message")? })
            }
            Some("sweep_done") => {
                let counter = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0) as usize;
                Ok(Event::SweepDone {
                    hits: counter("hits"),
                    runs: counter("runs"),
                    joined: counter("joined"),
                })
            }
            Some("error") => Ok(Event::Error { message: string("message")? }),
            _ => Err(err("unknown event type")),
        }
    }
}

fn err(message: &str) -> JsonError {
    JsonError { message: message.to_string(), offset: 0 }
}

/// Writes one message as a single JSON line and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_line(writer: &mut impl Write, doc: &Json) -> io::Result<()> {
    let mut line = doc.render();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Reads one JSON line. Returns `Ok(None)` at end of stream; a malformed
/// line is an `InvalidData` error.
///
/// # Errors
///
/// Propagates the underlying I/O error; malformed JSON maps to
/// [`io::ErrorKind::InvalidData`].
pub fn read_line(reader: &mut impl BufRead) -> io::Result<Option<Json>> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue; // Tolerate blank keep-alive lines.
        }
        return Json::parse(line.trim())
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_system::{CellKey, CellKnobs};
    use ar_types::config::NamedConfig;
    use ar_workloads::SizeClass;

    #[test]
    fn requests_round_trip_the_wire_encoding() {
        let cell = CellKey::new("pagerank", NamedConfig::ArfTid, SizeClass::Tiny)
            .with_knobs(CellKnobs { threads: 2, cycle_limit: Some(1000), ..CellKnobs::default() });
        for request in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Run { progress: true, cells: vec![cell.clone(), cell] },
        ] {
            let doc = Json::parse(&request.to_json().render()).expect("valid JSON");
            assert_eq!(Request::from_json(&doc).expect("well-formed"), request);
        }
        assert!(Request::from_json(&Json::obj([("type", Json::from("nope"))])).is_err());
        assert!(Request::from_json(&Json::obj([("type", Json::from("run"))])).is_err());
    }

    #[test]
    fn events_round_trip_the_wire_encoding() {
        let report =
            SimReport { workload: "mac".into(), network_cycles: 7, ..SimReport::default() };
        for event in [
            Event::Hello { proto: 1, schema: 3, base_hash: 0xdead_beef },
            Event::Pong,
            Event::Stats(StatsSnapshot { runs: 1, cache_hits: 2, dedup_joins: 3, in_flight: 4 }),
            Event::ShuttingDown,
            Event::Accepted { index: 2, key_hash: 42, status: CellStatus::Joined },
            Event::Accepted { index: 0, key_hash: u64::MAX, status: CellStatus::Hit },
            Event::Running { index: 1 },
            Event::Progress { index: 0, network_cycle: 4096, window_ipc: 1.25 },
            Event::Done { index: 3, cached: true, shared: false, report: Box::new(report) },
            Event::CellError { index: 0, message: "unknown workload".into() },
            Event::SweepDone { hits: 5, runs: 2, joined: 1 },
            Event::Error { message: "bad request".into() },
        ] {
            let doc = Json::parse(&event.to_json().render()).expect("valid JSON");
            assert_eq!(Event::from_json(&doc).expect("well-formed"), event);
        }
        assert!(Event::from_json(&Json::obj([("event", Json::from("nope"))])).is_err());
    }

    #[test]
    fn line_io_frames_messages_and_survives_blank_lines() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Ping.to_json()).unwrap();
        buf.extend_from_slice(b"\n");
        write_line(&mut buf, &Request::Stats.to_json()).unwrap();
        let mut reader = io::BufReader::new(&buf[..]);
        assert_eq!(
            Request::from_json(&read_line(&mut reader).unwrap().unwrap()).unwrap(),
            Request::Ping
        );
        assert_eq!(
            Request::from_json(&read_line(&mut reader).unwrap().unwrap()).unwrap(),
            Request::Stats
        );
        assert!(read_line(&mut reader).unwrap().is_none(), "EOF is None");
        let mut garbage = io::BufReader::new(&b"{oops\n"[..]);
        assert!(read_line(&mut garbage).is_err(), "malformed lines are InvalidData");
    }
}
