//! Simulation-as-a-service: a persistent sweep server with a
//! content-addressed result cache.
//!
//! Every simulation in this workspace is deterministic — the equivalence
//! suite pins byte-identical [`ar_system::SimReport`]s across thread counts
//! and fast-forward modes — which makes whole runs *memoisable*: a report
//! is a pure function of the effective configuration, workload and size.
//! This crate exploits that. A long-running [`SweepServer`] daemon keeps an
//! on-disk [`ReportCache`] keyed by the content hash of each cell's
//! canonical key document ([`ar_system::CellKey::cache_key`]); sweep
//! clients submit cells over a newline-delimited JSON TCP [`protocol`] and
//! get back cached reports instantly, fresh reports when a cell was never
//! run, and *shared* reports when another client is already computing the
//! same cell (in-flight dedup). Editing one configuration knob and
//! re-running a full experiment matrix therefore recomputes only the cells
//! the edit actually changed.
//!
//! The pieces:
//!
//! * [`protocol`] — the wire format: [`protocol::Request`],
//!   [`protocol::Event`], one compact JSON document per line;
//! * [`ReportCache`] — the persistent store: one atomic-rename JSON file
//!   per cell under a schema-versioned directory, corrupt entry = miss;
//! * [`SweepServer`] — the daemon: FIFO scheduling, a worker pool,
//!   in-flight dedup, observer-fed progress streaming;
//! * [`SweepClient`] — the blocking client used by
//!   `ar-experiments --cached` and `examples/sweep_client.rs`.
//!
//! # Example
//!
//! ```no_run
//! use ar_serve::{ServerConfig, SweepClient, SweepServer};
//! use ar_system::CellKey;
//! use ar_types::config::{NamedConfig, SystemConfig};
//! use ar_workloads::SizeClass;
//!
//! let mut cfg = SystemConfig::small();
//! cfg.max_cycles = 2_000_000;
//! let server = SweepServer::bind(
//!     "127.0.0.1:0",
//!     ServerConfig::new(cfg, "/tmp/ar-cache").workers(2),
//! )?
//! .spawn();
//!
//! let mut client = SweepClient::connect(server.addr())?;
//! let cells = vec![CellKey::new("reduce", NamedConfig::ArfTid, SizeClass::Tiny)];
//! let first = client.run_cells(&cells)?; // computed
//! let again = client.run_cells(&cells)?; // served from the cache
//! assert!(!first[0].cached && again[0].cached);
//! assert_eq!(first[0].report, again[0].report); // byte-identical
//! server.shutdown()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::ReportCache;
pub use client::{CellOutcome, RunTotals, SweepClient};
pub use protocol::{CellStatus, Event, Request, StatsSnapshot, PROTOCOL_VERSION};
pub use server::{RunningServer, ServerConfig, SweepServer};
