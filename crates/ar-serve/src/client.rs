//! A blocking client for the sweep server.
//!
//! [`SweepClient`] wraps one TCP connection: it validates the server's
//! [`Event::Hello`] banner on connect and exposes each request as a method.
//! The interesting one is [`SweepClient::run_cells`] (and its streaming
//! sibling [`SweepClient::run_cells_observed`]), which submits a batch of
//! [`CellKey`]s and blocks until every report is back — served from the
//! server's cache, computed fresh, or shared with a concurrent client.

use crate::protocol::{
    read_line, write_line, CellStatus, Event, Request, StatsSnapshot, PROTOCOL_VERSION,
};
use ar_system::{CellKey, SimReport};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// The resolution of one requested cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The requested cell.
    pub cell: CellKey,
    /// How the server disposed of the cell at accept time.
    pub status: CellStatus,
    /// True when the report came from the server's persistent cache.
    pub cached: bool,
    /// True when the run was shared with at least one other subscriber.
    pub shared: bool,
    /// The report.
    pub report: SimReport,
}

/// Batch totals reported by the server's closing `sweep_done` event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunTotals {
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells computed fresh for this request.
    pub runs: usize,
    /// Cells that joined runs already in flight.
    pub joined: usize,
}

/// A connected sweep-server client.
pub struct SweepClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    schema: u32,
    base_hash: u64,
}

impl SweepClient {
    /// Connects and validates the server banner.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a non-hello first message, or a
    /// [`PROTOCOL_VERSION`] mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<SweepClient> {
        let writer = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(writer.try_clone()?);
        match read_event(&mut reader)? {
            Event::Hello { proto, schema, base_hash } => {
                if proto != PROTOCOL_VERSION {
                    return Err(bad(format!(
                        "server speaks protocol v{proto}, this client v{PROTOCOL_VERSION}"
                    )));
                }
                Ok(SweepClient { reader, writer, schema, base_hash })
            }
            other => Err(bad(format!("expected hello, got {other:?}"))),
        }
    }

    /// The server's cache-key schema version.
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// The content hash of the server's base configuration.
    pub fn base_hash(&self) -> u64 {
        self.base_hash
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unexpected reply.
    pub fn ping(&mut self) -> io::Result<()> {
        write_line(&mut self.writer, &Request::Ping.to_json())?;
        match read_event(&mut self.reader)? {
            Event::Pong => Ok(()),
            other => Err(bad(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the server's scheduler counters.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unexpected reply.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        write_line(&mut self.writer, &Request::Stats.to_json())?;
        match read_event(&mut self.reader)? {
            Event::Stats(snapshot) => Ok(snapshot),
            other => Err(bad(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the server to shut down and consumes the connection.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an unexpected reply.
    pub fn shutdown(mut self) -> io::Result<()> {
        write_line(&mut self.writer, &Request::Shutdown.to_json())?;
        match read_event(&mut self.reader)? {
            Event::ShuttingDown => Ok(()),
            other => Err(bad(format!("expected shutting_down, got {other:?}"))),
        }
    }

    /// Runs a batch of cells and blocks until every report is back, in
    /// request order.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a server-side cell failure (unknown
    /// workload, invalid configuration, shutdown), or a protocol violation.
    pub fn run_cells(&mut self, cells: &[CellKey]) -> io::Result<Vec<CellOutcome>> {
        self.run_cells_observed(cells, false, |_| {}).map(|(outcomes, _)| outcomes)
    }

    /// Like [`SweepClient::run_cells`], but streams every intermediate
    /// [`Event`] (accepts, running notices, progress samples when
    /// `progress` is set) to `on_event` as it arrives, and also returns the
    /// server's closing totals.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SweepClient::run_cells`].
    pub fn run_cells_observed(
        &mut self,
        cells: &[CellKey],
        progress: bool,
        mut on_event: impl FnMut(&Event),
    ) -> io::Result<(Vec<CellOutcome>, RunTotals)> {
        let request = Request::Run { progress, cells: cells.to_vec() };
        write_line(&mut self.writer, &request.to_json())?;
        let mut statuses: Vec<Option<CellStatus>> = vec![None; cells.len()];
        let mut outcomes: Vec<Option<CellOutcome>> = vec![None; cells.len()];
        // A failed cell is reported only after the whole exchange has been
        // drained to `sweep_done`, so the connection stays usable.
        let mut first_failure: Option<io::Error> = None;
        let totals = loop {
            let event = read_event(&mut self.reader)?;
            on_event(&event);
            match event {
                Event::Accepted { index, status, .. } => {
                    *slot(&mut statuses, index)? = Some(status);
                }
                Event::Running { .. } | Event::Progress { .. } => {}
                Event::Done { index, cached, shared, report } => {
                    let cell = cells
                        .get(index)
                        .ok_or_else(|| bad(format!("done for unknown cell {index}")))?
                        .clone();
                    let status = statuses[index]
                        .ok_or_else(|| bad(format!("done before accepted for cell {index}")))?;
                    *slot(&mut outcomes, index)? =
                        Some(CellOutcome { cell, status, cached, shared, report: *report });
                }
                Event::CellError { index, message } => {
                    if first_failure.is_none() {
                        first_failure = Some(bad(format!("cell {index} failed: {message}")));
                    }
                }
                Event::SweepDone { hits, runs, joined } => {
                    break RunTotals { hits, runs, joined };
                }
                Event::Error { message } => {
                    return Err(bad(format!("server rejected the request: {message}")));
                }
                other => return Err(bad(format!("unexpected event {other:?}"))),
            }
        };
        if let Some(failure) = first_failure {
            return Err(failure);
        }
        let outcomes = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.ok_or_else(|| bad(format!("no report for cell {i}"))))
            .collect::<io::Result<Vec<CellOutcome>>>()?;
        Ok((outcomes, totals))
    }
}

/// Reads and decodes one event line; EOF is an `UnexpectedEof` error here,
/// because every client read sits inside a request/response exchange.
fn read_event(reader: &mut BufReader<TcpStream>) -> io::Result<Event> {
    let doc = read_line(reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
    Event::from_json(&doc).map_err(|e| bad(format!("malformed event: {e}")))
}

fn slot<T>(slots: &mut [Option<T>], index: usize) -> io::Result<&mut Option<T>> {
    let len = slots.len();
    slots.get_mut(index).ok_or_else(|| bad(format!("event for cell {index}, request had {len}")))
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}
