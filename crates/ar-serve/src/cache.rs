//! The persistent, content-addressed report cache.
//!
//! One sweep cell = one file. The cell's canonical key document
//! ([`ar_system::CellKey::cache_key`]) is FNV-hashed into a 64-bit cache
//! address; the entry lives at `<root>/v<SCHEMA>/<hash:016x>.json` and stores
//! *both* the key document and the report:
//!
//! ```text
//! cache/
//!   v1/
//!     8d3f2a91c0b47e55.json   { "key": {..canonical key..}, "report": {..} }
//! ```
//!
//! Storing the key alongside the report buys two properties: a 64-bit hash
//! collision degrades to a cache *miss* (the stored key is compared with the
//! requested one on load), and `cat`-ing an entry tells you exactly which
//! cell it belongs to. Bumping [`ar_system::CACHE_SCHEMA_VERSION`] moves the
//! directory name, orphaning every stale entry at once.
//!
//! Writes are atomic — render to a uniquely named temp file in the same
//! directory, then [`std::fs::rename`] over the final path — so a concurrent
//! reader sees either the complete entry or nothing, and racing writers of
//! the same (deterministic) report both succeed. Any unreadable, truncated
//! or mismatched entry is treated as a miss, never an error.

use ar_system::{SimReport, CACHE_SCHEMA_VERSION};
use ar_types::json::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files of racing writers within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// How old a leftover `.tmp-*` file must be before the open-time sweep
/// deletes it. A store's write→rename window is milliseconds, so anything
/// this old belongs to a writer that died mid-store.
const STALE_TMP_AGE: std::time::Duration = std::time::Duration::from_secs(60);

/// An on-disk report cache rooted at a directory. Cheap to clone/share; all
/// state lives in the filesystem.
#[derive(Debug, Clone)]
pub struct ReportCache {
    root: PathBuf,
}

impl ReportCache {
    /// Opens a cache rooted at `root`, sweeping stale temp files that a
    /// crashed writer left behind — a process dying between the temp write
    /// and the rename leaks its `.tmp-*` file forever. Only files older
    /// than `STALE_TMP_AGE` (a minute) are removed, so an in-flight write of a live
    /// writer sharing the directory is never yanked out from under its
    /// rename. Otherwise lazy — no further I/O until the first store.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let cache = ReportCache { root: root.into() };
        cache.sweep_stale_tmp();
        cache
    }

    /// Removes `.tmp-*` files older than [`STALE_TMP_AGE`] from the current
    /// schema directory. Failures are ignored: debris never affects
    /// correctness (loads only read `.json` entries, [`ReportCache::
    /// entry_count`] skips non-`.json` files), sweeping is pure hygiene.
    fn sweep_stale_tmp(&self) {
        let dir = self.root.join(format!("v{CACHE_SCHEMA_VERSION}"));
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.filter_map(Result::ok) {
            if !entry.file_name().to_string_lossy().starts_with(".tmp-") {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age >= STALE_TMP_AGE);
            if stale {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry path of a cache address under the current schema version.
    pub fn entry_path(&self, hash: u64) -> PathBuf {
        self.root.join(format!("v{CACHE_SCHEMA_VERSION}")).join(format!("{hash:016x}.json"))
    }

    /// Looks up the report stored under `key` (a canonical
    /// [`ar_system::CellKey::cache_key`] document). Returns `None` — a miss —
    /// for absent, unreadable, truncated, corrupt, or hash-colliding entries.
    pub fn load(&self, key: &Json) -> Option<SimReport> {
        let path = self.entry_path(key.content_hash());
        let text = fs::read_to_string(path).ok()?;
        let doc = Json::parse(&text).ok()?;
        // A 64-bit hash can collide; the stored canonical key disambiguates.
        if doc.get("key")?.canonical_render() != key.canonical_render() {
            return None;
        }
        SimReport::from_json(doc.get("report")?).ok()
    }

    /// Stores `report` under `key`, atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable root, disk full, ...).
    pub fn store(&self, key: &Json, report: &SimReport) -> io::Result<()> {
        let path = self.entry_path(key.content_hash());
        let dir = path.parent().expect("entry paths always have a parent");
        fs::create_dir_all(dir)?;
        let entry = Json::obj([("key", key.clone()), ("report", report.to_json())]);
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, entry.render())?;
        let renamed = fs::rename(&tmp, &path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }

    /// Number of entries stored under the current schema version (for stats
    /// and tests; counts files, ignoring stray temp files).
    pub fn entry_count(&self) -> usize {
        let dir = self.root.join(format!("v{CACHE_SCHEMA_VERSION}"));
        fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_system::CellKey;
    use ar_types::config::{NamedConfig, SystemConfig};
    use ar_workloads::SizeClass;

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "ar-serve-cache-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn sample_key(workload: &str) -> Json {
        CellKey::new(workload, NamedConfig::ArfTid, SizeClass::Tiny)
            .cache_key(&SystemConfig::small())
    }

    fn sample_report(workload: &str) -> SimReport {
        SimReport {
            workload: workload.to_string(),
            network_cycles: 12_345,
            completed: true,
            ..SimReport::default()
        }
    }

    #[test]
    fn stores_and_reloads_reports_byte_identically() {
        let cache = ReportCache::new(temp_root("roundtrip"));
        let key = sample_key("pagerank");
        assert!(cache.load(&key).is_none(), "empty cache misses");
        assert_eq!(cache.entry_count(), 0);
        let report = sample_report("pagerank");
        cache.store(&key, &report).expect("store succeeds");
        let loaded = cache.load(&key).expect("stored entry hits");
        assert_eq!(loaded, report);
        assert_eq!(loaded.to_json().render(), report.to_json().render(), "byte-identical");
        assert_eq!(cache.entry_count(), 1);
        // A different key misses without disturbing the stored entry.
        assert!(cache.load(&sample_key("spmv")).is_none());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_truncated_and_mismatched_entries_are_misses() {
        let cache = ReportCache::new(temp_root("corrupt"));
        let key = sample_key("mac");
        cache.store(&key, &sample_report("mac")).expect("store succeeds");
        let path = cache.entry_path(key.content_hash());

        // Truncated file: valid prefix, invalid JSON.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load(&key).is_none(), "truncated entry is a miss");

        // Garbage file.
        fs::write(&path, "not json at all").unwrap();
        assert!(cache.load(&key).is_none(), "garbage entry is a miss");

        // Well-formed JSON with the wrong shape.
        fs::write(&path, "{\"zzz\":1}").unwrap();
        assert!(cache.load(&key).is_none(), "shapeless entry is a miss");

        // A colliding entry (same path, different stored key) is a miss: the
        // stored canonical key no longer matches the requested one.
        let other = sample_key("spmv");
        let entry = Json::obj([("key", other), ("report", sample_report("spmv").to_json())]);
        fs::write(&path, entry.render()).unwrap();
        assert!(cache.load(&key).is_none(), "hash collision degrades to a miss");
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn concurrent_writers_of_the_same_entry_both_succeed() {
        let cache = ReportCache::new(temp_root("racing"));
        let key = sample_key("reduce");
        let report = sample_report("reduce");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        cache.store(&key, &report).expect("racing stores succeed");
                        assert_eq!(cache.load(&key).expect("entry readable mid-race"), report);
                    }
                });
            }
        });
        assert_eq!(cache.entry_count(), 1, "no temp-file debris counted");
        // No leftover temp files on disk either.
        let dir = cache.entry_path(key.content_hash());
        let debris: Vec<_> = fs::read_dir(dir.parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(debris.is_empty(), "temp files all renamed away: {debris:?}");
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn opening_sweeps_stale_tmp_debris_but_spares_entries_and_fresh_tmps() {
        let root = temp_root("debris");
        // A first cache instance stores one valid entry...
        let cache = ReportCache::new(&root);
        let key = sample_key("backprop");
        let report = sample_report("backprop");
        cache.store(&key, &report).expect("store succeeds");
        let dir = cache.entry_path(key.content_hash()).parent().unwrap().to_path_buf();

        // ...then a "crashed writer" leaves two temp files behind: one aged
        // past the stale threshold, one fresh (a live writer mid-rename).
        let stale = dir.join(".tmp-999999-0");
        fs::write(&stale, "half-written entry").unwrap();
        let backdated = std::time::SystemTime::now() - STALE_TMP_AGE * 2;
        fs::File::options().write(true).open(&stale).unwrap().set_modified(backdated).unwrap();
        let fresh = dir.join(".tmp-999999-1");
        fs::write(&fresh, "in-flight entry").unwrap();

        // Debris never leaks into walks even before the sweep.
        assert_eq!(cache.entry_count(), 1, "temp files are excluded from entry walks");

        // Re-opening the cache sweeps the stale temp file, keeps the fresh
        // one, and leaves the valid entry untouched.
        let reopened = ReportCache::new(&root);
        assert!(!stale.exists(), "stale debris must be swept on open");
        assert!(fresh.exists(), "a fresh temp file may belong to a live writer");
        assert_eq!(reopened.load(&key).expect("entry survives the sweep"), report);
        assert_eq!(reopened.entry_count(), 1);
        let _ = fs::remove_dir_all(reopened.root());
    }

    #[test]
    fn schema_version_partitions_the_cache_directory() {
        let cache = ReportCache::new(temp_root("schema"));
        let key = sample_key("fir");
        let path = cache.entry_path(key.content_hash());
        assert!(path.to_string_lossy().contains(&format!("v{CACHE_SCHEMA_VERSION}")));
        assert_eq!(
            key.get("schema").and_then(Json::as_u64),
            Some(u64::from(CACHE_SCHEMA_VERSION)),
            "key documents embed the schema version too"
        );
    }
}
