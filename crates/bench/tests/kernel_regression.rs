//! Bench smoke gate: the event-driven kernel must not regress past the
//! lock-step reference on a memory-bound workload.
//!
//! The whole point of the scheduler (and of the lazy stall accounting /
//! batched vault drains on top of it) is wall-clock speedup at identical
//! reports; a change that keeps equivalence but loses the speedup would
//! silently sail through the functional suites. This test times both kernels
//! on a pagerank run and fails if event-driven is slower than lock-step.
//!
//! Compiled only with optimizations (`cargo test --release -p bench`): debug
//! timings are dominated by assertion and bounds-check overhead and would
//! make the comparison meaningless. CI runs it in the bench-smoke step.

#![cfg(not(debug_assertions))]

use ar_system::Simulation;
use ar_types::config::NamedConfig;
use ar_workloads::{SizeClass, WorkloadKind};
use std::time::{Duration, Instant};

fn build() -> ar_system::System {
    Simulation::builder()
        .config(bench::BENCH_SCALE.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Small)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// Best-of-N wall time, which is robust against scheduler noise on shared CI
/// runners (the minimum of several runs estimates the noise-free cost).
fn best_of(n: usize, mut run: impl FnMut() -> Duration) -> Duration {
    (0..n).map(|_| run()).min().expect("n > 0")
}

#[test]
fn event_driven_does_not_regress_past_lockstep_on_pagerank() {
    // Warm up allocators and caches once per kernel.
    let _ = build().run();
    let _ = build().run_lockstep();
    let event = best_of(3, || {
        let sys = build();
        let start = Instant::now();
        let report = sys.run();
        assert!(report.completed);
        start.elapsed()
    });
    let lockstep = best_of(3, || {
        let sys = build();
        let start = Instant::now();
        let report = sys.run_lockstep();
        assert!(report.completed);
        start.elapsed()
    });
    println!(
        "pagerank/ARF-tid: event-driven {:?} vs lock-step {:?} ({:.2}x)",
        event,
        lockstep,
        lockstep.as_secs_f64() / event.as_secs_f64()
    );
    assert!(
        event <= lockstep,
        "event-driven kernel regressed past lock-step: {event:?} vs {lockstep:?}"
    );
}

fn build_paper(threads: usize) -> ar_system::System {
    Simulation::builder()
        .config(ar_experiments::ExperimentScale::Full.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Paper)
        .threads(threads)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// The sharded kernel must not cost wall-clock on paper-scale pagerank:
/// `threads(4)` — clamped to the host's parallelism by the builder — may not
/// run meaningfully slower than the single-threaded event kernel, and must
/// produce the identical report. On a multi-core host this gates the
/// dispatch overhead of the worker pool (and any win shows up in the
/// `kernel_threads_paper` bench group); on a single-CPU host the clamp makes
/// the two builds identical and the gate checks exactly that degradation.
/// The 15% head-room absorbs scheduler noise on shared runners — the gate is
/// for pathological regressions (a mis-tuned dispatch threshold, a pool that
/// parks and wakes per cycle), not for micro-variance.
#[test]
fn sharded_threads_do_not_regress_on_paper_scale_pagerank() {
    let _ = build_paper(1).run();
    let mut reports: Vec<ar_system::SimReport> = Vec::new();
    let mut time = |threads: usize| {
        best_of(3, || {
            let sys = build_paper(threads);
            let start = Instant::now();
            let report = sys.run();
            let elapsed = start.elapsed();
            assert!(report.completed);
            reports.push(report);
            elapsed
        })
    };
    let serial = time(1);
    let sharded = time(4);
    println!(
        "paper-scale pagerank/ARF-tid: threads=1 {:?} vs threads=4 {:?} ({:.2}x)",
        serial,
        sharded,
        serial.as_secs_f64() / sharded.as_secs_f64()
    );
    let first = &reports[0];
    assert!(reports.iter().all(|r| r == first), "thread count changed the simulation result");
    assert!(
        sharded.as_secs_f64() <= serial.as_secs_f64() * 1.15,
        "sharded kernel (threads=4) regressed past the single-threaded kernel: \
         {sharded:?} vs {serial:?}"
    );
}

fn build_paper_ff(fast_forward: bool) -> ar_system::System {
    Simulation::builder()
        .config(ar_experiments::ExperimentScale::Full.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Paper)
        .fast_forward(fast_forward)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// Bulk compute fast-forwarding must not cost wall-clock on paper-scale
/// pagerank: forcing it on may not run meaningfully slower than the
/// fast-forward-free event kernel (the PR 4 behaviour), and must produce
/// the identical report. Pagerank's streams carry only short compute
/// blocks, so what this gates is the overhead of the per-tick eligibility
/// probes and the end-of-stream drain intervals — the regime where a
/// mis-tuned threshold would silently tax every paper run. The 15%
/// head-room absorbs scheduler noise on shared runners.
#[test]
fn fast_forward_does_not_regress_on_paper_scale_pagerank() {
    let _ = build_paper_ff(false).run();
    let mut reports: Vec<ar_system::SimReport> = Vec::new();
    let mut time = |fast_forward: bool| {
        best_of(3, || {
            let sys = build_paper_ff(fast_forward);
            let start = Instant::now();
            let report = sys.run();
            let elapsed = start.elapsed();
            assert!(report.completed);
            reports.push(report);
            elapsed
        })
    };
    let off = time(false);
    let on = time(true);
    println!(
        "paper-scale pagerank/ARF-tid: fast-forward off {:?} vs on {:?} ({:.2}x)",
        off,
        on,
        off.as_secs_f64() / on.as_secs_f64()
    );
    let first = &reports[0];
    assert!(reports.iter().all(|r| r == first), "fast-forward changed the simulation result");
    assert!(
        on.as_secs_f64() <= off.as_secs_f64() * 1.15,
        "fast-forwarding regressed past the plain event kernel on pagerank: {on:?} vs {off:?}"
    );
}

/// On a workload the fast path is *for* — long compute blocks between
/// cache misses — fast-forwarding must deliver a real speedup, not just
/// parity, at an identical report. This is the discriminating gate: a
/// change that keeps equivalence but silently stops arming intervals (or
/// arms them without sleeping the cluster) fails here.
#[test]
fn fast_forward_speeds_up_compute_bursts() {
    let bursts = bench::ComputeBursts { blocks_per_thread: 24, block_insns: 100_000 };
    let build = |fast_forward: bool| {
        Simulation::builder()
            .config(bench::BENCH_SCALE.system_config())
            .named(NamedConfig::Hmc)
            .workload(bursts)
            .size(SizeClass::Tiny)
            .fast_forward(fast_forward)
            .build()
            .expect("valid configuration")
            .into_system()
    };
    let _ = build(true).run();
    let mut reports: Vec<ar_system::SimReport> = Vec::new();
    let mut time = |fast_forward: bool| {
        best_of(3, || {
            let sys = build(fast_forward);
            let start = Instant::now();
            let report = sys.run();
            let elapsed = start.elapsed();
            assert!(report.completed);
            reports.push(report);
            elapsed
        })
    };
    let off = time(false);
    let on = time(true);
    println!(
        "compute bursts: fast-forward off {:?} vs on {:?} ({:.2}x)",
        off,
        on,
        off.as_secs_f64() / on.as_secs_f64()
    );
    let first = &reports[0];
    assert!(reports.iter().all(|r| r == first), "fast-forward changed the simulation result");
    assert!(
        on.as_secs_f64() * 2.0 <= off.as_secs_f64(),
        "fast-forwarding must at least halve the compute-burst wall time: {on:?} vs {off:?}"
    );
}
