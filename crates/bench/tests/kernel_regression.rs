//! Bench smoke gate: the event-driven kernel must not regress past the
//! lock-step reference on a memory-bound workload.
//!
//! The whole point of the scheduler (and of the lazy stall accounting /
//! batched vault drains on top of it) is wall-clock speedup at identical
//! reports; a change that keeps equivalence but loses the speedup would
//! silently sail through the functional suites. This test times both kernels
//! on a pagerank run and fails if event-driven is slower than lock-step.
//!
//! Compiled only with optimizations (`cargo test --release -p bench`): debug
//! timings are dominated by assertion and bounds-check overhead and would
//! make the comparison meaningless. CI runs it in the bench-smoke step.

#![cfg(not(debug_assertions))]

use ar_system::Simulation;
use ar_types::config::NamedConfig;
use ar_workloads::{SizeClass, WorkloadKind};
use std::cell::RefCell;
use std::time::{Duration, Instant};

fn build() -> ar_system::System {
    Simulation::builder()
        .config(bench::BENCH_SCALE.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Small)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// Interleaved best-of-N for A/B comparisons: each round times both sides
/// back to back, so slow drift on a shared runner (thermal throttling, a
/// noisy neighbour arriving mid-test) hits both sides equally instead of
/// skewing whichever side happened to run in the slow block. The minimum of
/// several rounds estimates each side's noise-free cost.
fn ab_best_of(
    n: usize,
    mut a: impl FnMut() -> Duration,
    mut b: impl FnMut() -> Duration,
) -> (Duration, Duration) {
    let (mut best_a, mut best_b) = (Duration::MAX, Duration::MAX);
    for _ in 0..n {
        best_a = best_a.min(a());
        best_b = best_b.min(b());
    }
    (best_a, best_b)
}

/// Times one event-driven run, asserting completion and recording the report
/// so the gate can also check the comparison did not change the simulation.
fn timed(sys: ar_system::System, reports: &RefCell<Vec<ar_system::SimReport>>) -> Duration {
    let start = Instant::now();
    let report = sys.run();
    let elapsed = start.elapsed();
    assert!(report.completed);
    reports.borrow_mut().push(report);
    elapsed
}

/// Asserts every recorded report of a gate is identical.
fn assert_reports_agree(reports: &RefCell<Vec<ar_system::SimReport>>, what: &str) {
    let reports = reports.borrow();
    let first = &reports[0];
    assert!(reports.iter().all(|r| r == first), "{what} changed the simulation result");
}

#[test]
fn event_driven_does_not_regress_past_lockstep_on_pagerank() {
    // Warm up allocators and caches once per kernel.
    let _ = build().run();
    let _ = build().run_lockstep();
    let (event, lockstep) = ab_best_of(
        3,
        || {
            let sys = build();
            let start = Instant::now();
            let report = sys.run();
            assert!(report.completed);
            start.elapsed()
        },
        || {
            let sys = build();
            let start = Instant::now();
            let report = sys.run_lockstep();
            assert!(report.completed);
            start.elapsed()
        },
    );
    println!(
        "pagerank/ARF-tid: event-driven {:?} vs lock-step {:?} ({:.2}x)",
        event,
        lockstep,
        lockstep.as_secs_f64() / event.as_secs_f64()
    );
    assert!(
        event <= lockstep,
        "event-driven kernel regressed past lock-step: {event:?} vs {lockstep:?}"
    );
}

fn build_paper(threads: usize) -> ar_system::System {
    Simulation::builder()
        .config(ar_experiments::ExperimentScale::Full.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Paper)
        .threads(threads)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// The sharded kernel must not cost wall-clock on paper-scale pagerank:
/// `threads(4)` — clamped to the host's parallelism by the builder — may not
/// run meaningfully slower than the single-threaded event kernel, and must
/// produce the identical report. On a multi-core host this gates the
/// dispatch overhead of the worker pool (and any win shows up in the
/// `kernel_threads_paper` bench group); on a single-CPU host the clamp makes
/// the two builds identical and the gate checks exactly that degradation.
/// The 15% head-room absorbs scheduler noise on shared runners — the gate is
/// for pathological regressions (a mis-tuned dispatch threshold, a pool that
/// parks and wakes per cycle), not for micro-variance.
#[test]
fn sharded_threads_do_not_regress_on_paper_scale_pagerank() {
    let _ = build_paper(1).run();
    let reports = RefCell::new(Vec::new());
    let (serial, sharded) =
        ab_best_of(3, || timed(build_paper(1), &reports), || timed(build_paper(4), &reports));
    println!(
        "paper-scale pagerank/ARF-tid: threads=1 {:?} vs threads=4 {:?} ({:.2}x)",
        serial,
        sharded,
        serial.as_secs_f64() / sharded.as_secs_f64()
    );
    assert_reports_agree(&reports, "thread count");
    assert!(
        sharded.as_secs_f64() <= serial.as_secs_f64() * 1.15,
        "sharded kernel (threads=4) regressed past the single-threaded kernel: \
         {sharded:?} vs {serial:?}"
    );
}

fn build_paper_ff(fast_forward: bool) -> ar_system::System {
    Simulation::builder()
        .config(ar_experiments::ExperimentScale::Full.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Paper)
        .fast_forward(fast_forward)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// Bulk compute fast-forwarding must not cost wall-clock on paper-scale
/// pagerank: forcing it on may not run meaningfully slower than the
/// fast-forward-free event kernel (the PR 4 behaviour), and must produce
/// the identical report. Pagerank's streams carry only short compute
/// blocks, so what this gates is the overhead of the per-tick eligibility
/// probes and the end-of-stream drain intervals — the regime where a
/// mis-tuned threshold would silently tax every paper run. The 15%
/// head-room absorbs scheduler noise on shared runners.
#[test]
fn fast_forward_does_not_regress_on_paper_scale_pagerank() {
    let _ = build_paper_ff(false).run();
    let reports = RefCell::new(Vec::new());
    let (off, on) = ab_best_of(
        3,
        || timed(build_paper_ff(false), &reports),
        || timed(build_paper_ff(true), &reports),
    );
    println!(
        "paper-scale pagerank/ARF-tid: fast-forward off {:?} vs on {:?} ({:.2}x)",
        off,
        on,
        off.as_secs_f64() / on.as_secs_f64()
    );
    assert_reports_agree(&reports, "fast-forward");
    assert!(
        on.as_secs_f64() <= off.as_secs_f64() * 1.15,
        "fast-forwarding regressed past the plain event kernel on pagerank: {on:?} vs {off:?}"
    );
}

fn build_paper_drain(drain: bool) -> ar_system::System {
    Simulation::builder()
        .config(ar_experiments::ExperimentScale::Full.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Paper)
        .drain_fast_forward(drain)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// The offload-drain fast-forward must hold at least parity on paper-scale
/// pagerank: forcing the planner on (its default for offloading workloads)
/// may not run meaningfully slower than the planner-free event kernel (the
/// PR 5 behaviour), and must produce the identical report. Pagerank's update
/// runs are interleaved with loads and computes, so windows are scarce —
/// exactly the regime where a planner whose arming probe costs more than the
/// core ticks it skips would silently tax every paper run. The 15% head-room
/// absorbs scheduler noise on shared runners.
#[test]
fn drain_fast_forward_does_not_regress_on_paper_scale_pagerank() {
    let _ = build_paper_drain(false).run();
    let reports = RefCell::new(Vec::new());
    let (off, on) = ab_best_of(
        3,
        || timed(build_paper_drain(false), &reports),
        || timed(build_paper_drain(true), &reports),
    );
    println!(
        "paper-scale pagerank/ARF-tid: drain fast-forward off {:?} vs on {:?} ({:.2}x)",
        off,
        on,
        off.as_secs_f64() / on.as_secs_f64()
    );
    assert_reports_agree(&reports, "the drain planner");
    assert!(
        on.as_secs_f64() <= off.as_secs_f64() * 1.15,
        "the drain planner regressed past the plain event kernel on pagerank: {on:?} vs {off:?}"
    );
}

fn build_paper_cc(cross_cycle: bool, threads: usize) -> ar_system::System {
    Simulation::builder()
        .config(ar_experiments::ExperimentScale::Full.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Paper)
        .cross_cycle(cross_cycle)
        .threads(threads)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// Bounded-lag cross-cycle execution must hold at least parity on
/// paper-scale pagerank: forcing run-ahead on (the builder default) may not
/// run meaningfully slower than the per-cycle event kernel, and must
/// produce the identical report — including at `threads(4)`, where
/// run-ahead jobs dispatch over the worker pool and the timestamped replays
/// merge across shards. Offload-heavy pagerank keeps the engines busy, so
/// windows are scarce — exactly the regime where an arming probe that costs
/// more than the cube ticks it skips would silently tax every paper run.
/// The 15% head-room absorbs scheduler noise on shared runners.
#[test]
fn cross_cycle_does_not_regress_on_paper_scale_pagerank() {
    let _ = build_paper_cc(false, 1).run();
    let reports = RefCell::new(Vec::new());
    let (off, on) = ab_best_of(
        3,
        || timed(build_paper_cc(false, 1), &reports),
        || timed(build_paper_cc(true, 1), &reports),
    );
    println!(
        "paper-scale pagerank/ARF-tid: cross-cycle off {:?} vs on {:?} ({:.2}x)",
        off,
        on,
        off.as_secs_f64() / on.as_secs_f64()
    );
    // The sharded kernel with run-ahead enabled must reproduce the same
    // bytes the serial kernels pinned above (clamped to the host's
    // parallelism by the builder, like the sharded gate).
    let sharded = build_paper_cc(true, 4).run();
    assert!(sharded.completed);
    reports.borrow_mut().push(sharded);
    assert_reports_agree(&reports, "cross-cycle execution");
    assert!(
        on.as_secs_f64() <= off.as_secs_f64() * 1.15,
        "cross-cycle run-ahead regressed past the per-cycle event kernel on pagerank: \
         {on:?} vs {off:?}"
    );
}

/// On the workload the drain planner is *for* — long uninterrupted MI-full
/// `Update` runs — planned windows must hold parity with per-cycle ticking
/// at an identical report. Parity, not speedup, is the honest contract: the
/// window's host submissions and packet injections must still replay at
/// their exact per-cycle timestamps for byte-identity, and the memory side
/// (network, engines, vaults) dominates the wall clock of an offload drain,
/// so the planner can only remove the core-cluster ticking — a real but
/// small slice. What this gate catches is the planner *costing* time: an
/// arming probe that re-walks streams without committing windows, or a
/// replay path more expensive than the ticking it replaced. The
/// `kernel_offload` bench group tracks the actual margin.
#[test]
fn drain_fast_forward_holds_parity_on_offload_bursts() {
    let bursts = bench::OffloadBursts { updates_per_thread: 4_096 };
    let build = |drain: bool| {
        Simulation::builder()
            .config(bench::BENCH_SCALE.system_config())
            .named(NamedConfig::ArfTid)
            .workload(bursts)
            .size(SizeClass::Tiny)
            .drain_fast_forward(drain)
            .build()
            .expect("valid configuration")
            .into_system()
    };
    let _ = build(true).run();
    let reports = RefCell::new(Vec::new());
    let (off, on) =
        ab_best_of(4, || timed(build(false), &reports), || timed(build(true), &reports));
    println!(
        "offload bursts: drain fast-forward off {:?} vs on {:?} ({:.2}x)",
        off,
        on,
        off.as_secs_f64() / on.as_secs_f64()
    );
    assert!(reports.borrow()[0].updates_offloaded > 0, "the burst workload must actually offload");
    assert_reports_agree(&reports, "the drain planner");
    assert!(
        on.as_secs_f64() <= off.as_secs_f64() * 1.15,
        "the drain planner costs wall-clock on its own target workload: {on:?} vs {off:?}"
    );
}

/// On a workload the fast path is *for* — long compute blocks between
/// cache misses — fast-forwarding must deliver a real speedup, not just
/// parity, at an identical report. This is the discriminating gate: a
/// change that keeps equivalence but silently stops arming intervals (or
/// arms them without sleeping the cluster) fails here.
#[test]
fn fast_forward_speeds_up_compute_bursts() {
    let bursts = bench::ComputeBursts { blocks_per_thread: 24, block_insns: 100_000 };
    let build = |fast_forward: bool| {
        Simulation::builder()
            .config(bench::BENCH_SCALE.system_config())
            .named(NamedConfig::Hmc)
            .workload(bursts)
            .size(SizeClass::Tiny)
            .fast_forward(fast_forward)
            .build()
            .expect("valid configuration")
            .into_system()
    };
    let _ = build(true).run();
    let reports = RefCell::new(Vec::new());
    let (off, on) =
        ab_best_of(3, || timed(build(false), &reports), || timed(build(true), &reports));
    println!(
        "compute bursts: fast-forward off {:?} vs on {:?} ({:.2}x)",
        off,
        on,
        off.as_secs_f64() / on.as_secs_f64()
    );
    assert_reports_agree(&reports, "fast-forward");
    assert!(
        on.as_secs_f64() * 2.0 <= off.as_secs_f64(),
        "fast-forwarding must at least halve the compute-burst wall time: {on:?} vs {off:?}"
    );
}
