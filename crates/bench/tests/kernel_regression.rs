//! Bench smoke gate: the event-driven kernel must not regress past the
//! lock-step reference on a memory-bound workload.
//!
//! The whole point of the scheduler (and of the lazy stall accounting /
//! batched vault drains on top of it) is wall-clock speedup at identical
//! reports; a change that keeps equivalence but loses the speedup would
//! silently sail through the functional suites. This test times both kernels
//! on a pagerank run and fails if event-driven is slower than lock-step.
//!
//! Compiled only with optimizations (`cargo test --release -p bench`): debug
//! timings are dominated by assertion and bounds-check overhead and would
//! make the comparison meaningless. CI runs it in the bench-smoke step.

#![cfg(not(debug_assertions))]

use ar_system::Simulation;
use ar_types::config::NamedConfig;
use ar_workloads::{SizeClass, WorkloadKind};
use std::time::{Duration, Instant};

fn build() -> ar_system::System {
    Simulation::builder()
        .config(bench::BENCH_SCALE.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Small)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// Best-of-N wall time, which is robust against scheduler noise on shared CI
/// runners (the minimum of several runs estimates the noise-free cost).
fn best_of(n: usize, run: impl Fn() -> Duration) -> Duration {
    (0..n).map(|_| run()).min().expect("n > 0")
}

#[test]
fn event_driven_does_not_regress_past_lockstep_on_pagerank() {
    // Warm up allocators and caches once per kernel.
    let _ = build().run();
    let _ = build().run_lockstep();
    let event = best_of(3, || {
        let sys = build();
        let start = Instant::now();
        let report = sys.run();
        assert!(report.completed);
        start.elapsed()
    });
    let lockstep = best_of(3, || {
        let sys = build();
        let start = Instant::now();
        let report = sys.run_lockstep();
        assert!(report.completed);
        start.elapsed()
    });
    println!(
        "pagerank/ARF-tid: event-driven {:?} vs lock-step {:?} ({:.2}x)",
        event,
        lockstep,
        lockstep.as_secs_f64() / event.as_secs_f64()
    );
    assert!(
        event <= lockstep,
        "event-driven kernel regressed past lock-step: {event:?} vs {lockstep:?}"
    );
}
