//! Steady-state zero-allocation gate.
//!
//! The pooled packet storage, recycled gather records and reused scratch
//! buffers exist so the event loop stops churning the heap once every
//! container has grown to its high-water capacity. This gate pins that
//! property: a quick-scale pagerank run is sampled at every IPC window
//! boundary through the process-wide [`bench::CountingAlloc`], and the run
//! must contain a long contiguous stretch of windows that close with *zero*
//! new heap allocations. A change that re-introduces a per-cycle `clone()`
//! or a transient `Vec` on the hot path makes every window allocate and
//! fails here, even though it is invisible to the equivalence suites.
//!
//! Windows outside the zero stretch are allowed to allocate: workload phase
//! changes (pagerank's terminal gather flood) legitimately grow containers
//! to new high-water marks, and that one-time amortized growth is exactly
//! what distinguishes a pool from per-event allocation.
//!
//! Compiled only with optimizations (`cargo test --release -p bench`): the
//! debug allocator behaviour of dependencies differs and the gate would be
//! noise. CI runs it in the bench-smoke step.

#![cfg(not(debug_assertions))]

use ar_system::{Observer, ObserverControl, SimEvent, Simulation};
use ar_types::config::NamedConfig;
use ar_workloads::{SizeClass, WorkloadKind};
use bench::CountingAlloc;
use std::cell::RefCell;
use std::rc::Rc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Windows of the contiguous allocation-free stretch the gate demands:
/// 32 IPC windows = 65,536 core cycles of the event loop without a single
/// heap allocation.
const REQUIRED_ZERO_STRETCH: usize = 32;

/// Records the process-wide allocation count at every IPC sample boundary.
/// The recording vector is reserved up front so the observer itself never
/// allocates while the run is in flight.
struct AllocSampler {
    counts: Rc<RefCell<Vec<u64>>>,
}

impl Observer for AllocSampler {
    fn on_event(&mut self, event: &SimEvent) -> ObserverControl {
        if let SimEvent::Sample(_) = event {
            let mut counts = self.counts.borrow_mut();
            if counts.len() < counts.capacity() {
                counts.push(CountingAlloc::allocations());
            }
        }
        ObserverControl::Continue
    }
}

#[test]
fn steady_state_event_loop_performs_zero_allocations() {
    let sys = Simulation::builder()
        .config(bench::BENCH_SCALE.system_config())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Paper)
        .build()
        .expect("valid configuration")
        .into_system();
    let counts = Rc::new(RefCell::new(Vec::with_capacity(1 << 16)));
    let mut observers: Vec<Box<dyn Observer>> =
        vec![Box::new(AllocSampler { counts: Rc::clone(&counts) })];
    let report = sys.run_observed(&mut observers);
    assert!(report.completed);

    let counts = counts.borrow();
    assert!(
        counts.len() >= 2 * REQUIRED_ZERO_STRETCH,
        "too few IPC windows to measure steady state: {}",
        counts.len()
    );
    // Longest contiguous run of windows whose allocation delta is zero.
    let mut longest = 0usize;
    let mut current = 0usize;
    for w in counts.windows(2) {
        if w[1] == w[0] {
            current += 1;
            longest = longest.max(current);
        } else {
            current = 0;
        }
    }
    let total = counts[counts.len() - 1] - counts[0];
    let cycles = report.network_cycles.max(1);
    println!(
        "pagerank/ARF-tid: {} IPC windows, longest zero-allocation stretch {longest}, \
         whole-run {total} allocations over {cycles} network cycles \
         ({:.4} allocs/cycle)",
        counts.len(),
        total as f64 / cycles as f64,
    );
    assert!(
        longest >= REQUIRED_ZERO_STRETCH,
        "the event loop never settled to zero allocations per cycle: longest \
         allocation-free stretch was {longest} of {} IPC windows \
         (need {REQUIRED_ZERO_STRETCH})",
        counts.len()
    );
}
