//! Weak-scaling gate: the 10x machine must stay affordable relative to the
//! paper machine, pinned against a recorded baseline.
//!
//! The `Scaled` size class exists so capacity questions ("does the scheme
//! still work with 10x the cubes?") can be answered without renting a
//! cluster; that only holds while a scaled run costs a predictable multiple
//! of a paper run. This gate runs the weak-scaling workload — the same 512
//! offloaded updates per thread on every machine, so total work grows with
//! the machine — on the quick, paper and scaled machines, and fails if the
//! measured scaled/paper wall-clock ratio regresses more than 15% past the
//! ratio recorded in `BENCH_weak_scaling.json`. Comparing ratios rather than
//! absolute times keeps the gate portable across runners; the interleaved
//! best-of timing (see `kernel_regression.rs`) keeps slow drift on a shared
//! runner from skewing one side.
//!
//! The same run doubles as the artifact recorder: setting
//! `WEAK_SCALING_RECORD=1` rewrites `BENCH_weak_scaling.json` with the
//! machine table (wall clock, heap allocations per simulated network cycle
//! via [`bench::CountingAlloc`], peak RSS from `VmHWM`, and the packet
//! pool's peak in-flight footprint from
//! [`ar_system::System::run_with_footprint`]) instead of gating. Machines
//! are measured in ascending size order because `VmHWM` is a monotone
//! process-wide high-water mark: each sample is taken before a larger
//! machine has run, so it reflects that machine's own peak.
//!
//! Compiled only with optimizations (`cargo test --release -p bench`): debug
//! timings would make the ratio meaningless. CI runs it in the bench-smoke
//! step.

#![cfg(not(debug_assertions))]

use ar_system::Simulation;
use ar_types::config::{NamedConfig, SystemConfig};
use ar_types::json::Json;
use ar_workloads::SizeClass;
use bench::CountingAlloc;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The committed baseline artifact, relative to this crate.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_weak_scaling.json");

/// Per-thread offload work; total work scales with the machine's core count.
const BURSTS: bench::OffloadBursts = bench::OffloadBursts { updates_per_thread: 512 };

/// Allowed regression of the scaled/paper wall-clock ratio past the baseline.
const HEADROOM: f64 = 1.15;

fn build(base: &SystemConfig, size: SizeClass) -> ar_system::System {
    Simulation::builder()
        .config(base.clone())
        .named(NamedConfig::ArfTid)
        .workload(BURSTS)
        .size(size)
        .build()
        .expect("valid configuration")
        .into_system()
}

/// Interleaved best-of-N (see `kernel_regression.rs`): each round times both
/// sides back to back so runner-wide drift cancels out of the ratio.
fn ab_best_of(
    n: usize,
    mut a: impl FnMut() -> Duration,
    mut b: impl FnMut() -> Duration,
) -> (Duration, Duration) {
    let (mut best_a, mut best_b) = (Duration::MAX, Duration::MAX);
    for _ in 0..n {
        best_a = best_a.min(a());
        best_b = best_b.min(b());
    }
    (best_a, best_b)
}

fn timed(sys: ar_system::System) -> Duration {
    let start = Instant::now();
    let report = sys.run();
    let elapsed = start.elapsed();
    assert!(report.completed);
    elapsed
}

/// The process's peak resident set in KiB, from `VmHWM` in
/// `/proc/self/status` (0 where the file is unavailable).
fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// One machine's measured row of the artifact. Wall clock is filled in
/// separately so paper and scaled can share an interleaved timing.
struct MachineRow {
    scale: &'static str,
    cores: usize,
    cubes: usize,
    network_cycles: u64,
    updates_offloaded: u64,
    allocs_per_cycle: f64,
    peak_rss_kib: u64,
    peak_packets_in_flight: usize,
    packet_pool_capacity: usize,
    wall: Duration,
}

/// Runs one diagnostic pass on a machine: report + packet-pool footprint via
/// `run_with_footprint`, allocation delta across the run, and the RSS
/// high-water mark sampled immediately afterwards (call in ascending machine
/// order). Also serves as that machine's warm-up for the timed runs.
fn measure(scale: &'static str, base: &SystemConfig, size: SizeClass) -> MachineRow {
    let before = CountingAlloc::allocations();
    let (report, footprint) = build(base, size).run_with_footprint();
    let allocs = CountingAlloc::allocations() - before;
    assert!(report.completed, "{scale}: the weak-scaling run must complete");
    assert!(report.updates_offloaded > 0, "{scale}: the weak-scaling run must offload");
    MachineRow {
        scale,
        cores: base.cores.count,
        cubes: base.network.cubes,
        network_cycles: report.network_cycles,
        updates_offloaded: report.updates_offloaded,
        allocs_per_cycle: allocs as f64 / report.network_cycles.max(1) as f64,
        peak_rss_kib: peak_rss_kib(),
        peak_packets_in_flight: footprint.peak_packets_in_flight,
        packet_pool_capacity: footprint.packet_pool_capacity,
        wall: Duration::ZERO,
    }
}

fn to_json(rows: &[MachineRow], ratio: f64) -> Json {
    Json::obj([
        ("schema", Json::from(1_u64)),
        ("workload", Json::from("offload_bursts")),
        ("updates_per_thread", Json::from(BURSTS.updates_per_thread)),
        ("scaled_over_paper_wall_ratio", Json::from(ratio)),
        (
            "machines",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("scale", Json::from(r.scale)),
                    ("cores", Json::from(r.cores)),
                    ("cubes", Json::from(r.cubes)),
                    ("network_cycles", Json::from(r.network_cycles)),
                    ("updates_offloaded", Json::from(r.updates_offloaded)),
                    ("wall_seconds", Json::from(r.wall.as_secs_f64())),
                    ("allocs_per_cycle", Json::from(r.allocs_per_cycle)),
                    ("peak_rss_kib", Json::from(r.peak_rss_kib)),
                    ("peak_packets_in_flight", Json::from(r.peak_packets_in_flight)),
                    ("packet_pool_capacity", Json::from(r.packet_pool_capacity)),
                ])
            })),
        ),
    ])
}

#[test]
fn scaled_machine_holds_the_recorded_weak_scaling_ratio() {
    let quick_base = bench::BENCH_SCALE.system_config();
    let paper_base = ar_experiments::ExperimentScale::Full.system_config();
    let scaled_base = SystemConfig::scaled();

    // Diagnostics in ascending machine order (VmHWM is monotone); these runs
    // also warm each machine's build path for the timed runs below.
    let mut quick = measure("quick", &quick_base, SizeClass::Small);
    quick.wall = (0..3).map(|_| timed(build(&quick_base, SizeClass::Small))).min().unwrap();
    let mut paper = measure("paper", &paper_base, SizeClass::Paper);
    let mut scaled = measure("scaled", &scaled_base, SizeClass::Scaled);

    // The gated quantity: scaled/paper wall-clock ratio, interleaved.
    let (paper_wall, scaled_wall) = ab_best_of(
        3,
        || timed(build(&paper_base, SizeClass::Paper)),
        || timed(build(&scaled_base, SizeClass::Scaled)),
    );
    paper.wall = paper_wall;
    scaled.wall = scaled_wall;
    let ratio = scaled_wall.as_secs_f64() / paper_wall.as_secs_f64();
    println!(
        "weak scaling: quick {:?} / paper {paper_wall:?} / scaled {scaled_wall:?} \
         (scaled/paper {ratio:.2}x, peak in flight {} -> {} -> {})",
        quick.wall,
        quick.peak_packets_in_flight,
        paper.peak_packets_in_flight,
        scaled.peak_packets_in_flight,
    );

    let rows = [quick, paper, scaled];
    if std::env::var_os("WEAK_SCALING_RECORD").is_some() {
        let text = to_json(&rows, ratio).render();
        std::fs::write(BASELINE_PATH, text + "\n").expect("write BENCH_weak_scaling.json");
        println!("recorded baseline to {BASELINE_PATH}");
        return;
    }

    let baseline = std::fs::read_to_string(BASELINE_PATH).unwrap_or_else(|e| {
        panic!(
            "missing weak-scaling baseline {BASELINE_PATH} ({e}); record one with \
             WEAK_SCALING_RECORD=1 cargo test --release -p bench --test weak_scaling"
        )
    });
    let baseline_ratio = Json::parse(&baseline)
        .expect("BENCH_weak_scaling.json parses")
        .get("scaled_over_paper_wall_ratio")
        .and_then(Json::as_f64)
        .expect("baseline records scaled_over_paper_wall_ratio");
    assert!(
        ratio <= baseline_ratio * HEADROOM,
        "the scaled machine regressed past the recorded weak-scaling baseline: \
         scaled/paper wall ratio {ratio:.2} vs recorded {baseline_ratio:.2} \
         (+{HEADROOM:.2}x head-room)"
    );
}
