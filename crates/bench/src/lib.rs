//! Helpers shared by the Criterion benchmark harness.
//!
//! Every table and figure of the evaluation has a benchmark group in
//! `benches/figures.rs`; the helpers here build the reduced-scale run
//! matrices those groups measure, and print each regenerated artefact once so
//! that `cargo bench` output contains the same rows/series the paper reports.

use ar_experiments::{latency, speedup, traffic, Artifact, ExperimentScale, Matrix, Table};
use ar_types::config::NamedConfig;
use ar_types::{Addr, ThreadId, WorkItem, WorkStream};
use ar_workloads::{GeneratedWorkload, SizeClass, Variant, Workload, WorkloadKind};

/// The scale every benchmark runs at. Benchmarks exist to exercise and time
/// the figure-regeneration path, not to produce publication numbers; the
/// `ar-experiments` binary runs the larger scales.
pub const BENCH_SCALE: ExperimentScale = ExperimentScale::Quick;

/// A reduced benchmark matrix: every workload of the requested set, but only
/// the HMC baseline and the two forest configurations, so one Criterion
/// sample stays in the tens-of-milliseconds range.
pub fn bench_matrix(workloads: &[WorkloadKind]) -> Matrix {
    Matrix::run(
        workloads,
        &[NamedConfig::Dram, NamedConfig::Hmc, NamedConfig::ArfTid, NamedConfig::ArfAddr],
        BENCH_SCALE,
    )
}

/// One-workload matrix used by the per-simulation benchmarks.
pub fn single_workload_matrix(workload: WorkloadKind) -> Matrix {
    bench_matrix(&[workload])
}

/// Builds the Fig. 5.1-style speedup table from a matrix.
pub fn speedup_table(matrix: &Matrix) -> Table {
    speedup::figure_5_1(matrix, "Figure 5.1 (bench scale)")
}

/// Builds the Fig. 5.2-style latency table from a matrix.
pub fn latency_table(matrix: &Matrix) -> Table {
    latency::figure_5_2(matrix, "Figure 5.2 (bench scale)")
}

/// Builds the Fig. 5.4-style traffic table from a matrix.
pub fn traffic_table(matrix: &Matrix) -> Table {
    traffic::figure_5_4(matrix, "Figure 5.4 (bench scale)")
}

/// A synthetic compute-burst workload for the fast-forward kernel
/// benchmarks and regression gates: every thread alternates a cache-miss
/// load with a long compute block, so the core model's bulk fast-forward
/// path (`ar_cpu::fastforward`) dominates the run. The nine built-in
/// workloads carry only short compute blocks (their streams are memory- and
/// offload-bound, the regime the paper evaluates), which is exactly why the
/// fast path needs its own discriminating benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ComputeBursts {
    /// Compute blocks per thread.
    pub blocks_per_thread: usize,
    /// Instructions per block (one block runs `insns / issue_width` cycles).
    pub block_insns: u32,
}

impl Workload for ComputeBursts {
    fn name(&self) -> &str {
        "compute_bursts"
    }

    fn generate(&self, threads: usize, _size: SizeClass, variant: Variant) -> GeneratedWorkload {
        let streams = (0..threads)
            .map(|t| {
                let mut s = WorkStream::new(ThreadId::new(t));
                for i in 0..self.blocks_per_thread {
                    let line = (t * self.blocks_per_thread + i) * 64;
                    s.push(WorkItem::Load(Addr::new(0x4_0000 + line as u64)));
                    s.push(WorkItem::Compute(3));
                    s.push(WorkItem::Compute(self.block_insns));
                }
                s
            })
            .collect();
        GeneratedWorkload {
            name: "compute_bursts".to_string(),
            variant,
            streams,
            memory: Vec::new(),
            references: Vec::new(),
            updates: 0,
        }
    }
}

/// A synthetic offload-burst workload for the offload-drain fast-forward
/// benchmarks and regression gates: every thread issues long uninterrupted
/// `Update` runs against a back-pressuring Message Interface — the MI-full
/// drain regime `ar_system::drain` computes in closed form — and closes its
/// flow with one gather. The nine built-in workloads interleave their update
/// runs with loads and computes, so their windows are shorter; this one
/// maximizes the planner's share of the run.
#[derive(Debug, Clone, Copy)]
pub struct OffloadBursts {
    /// `Update` items per thread.
    pub updates_per_thread: usize,
}

impl Workload for OffloadBursts {
    fn name(&self) -> &str {
        "offload_bursts"
    }

    fn generate(&self, threads: usize, _size: SizeClass, variant: Variant) -> GeneratedWorkload {
        let streams = (0..threads)
            .map(|t| {
                let mut s = WorkStream::new(ThreadId::new(t));
                let target = Addr::new(0x3000_0000 + t as u64 * 64);
                for i in 0..self.updates_per_thread {
                    let src1 =
                        Addr::new(0x1000_0000 + ((t * self.updates_per_thread + i) * 8) as u64);
                    s.push(WorkItem::Update {
                        op: ar_types::ReduceOp::Sum,
                        src1,
                        src2: None,
                        imm: None,
                        target,
                    });
                }
                s.push(WorkItem::Gather {
                    target,
                    op: ar_types::ReduceOp::Sum,
                    num_threads: 1,
                    wait: true,
                });
                s
            })
            .collect();
        GeneratedWorkload {
            name: "offload_bursts".to_string(),
            variant,
            streams,
            memory: Vec::new(),
            references: Vec::new(),
            updates: (threads * self.updates_per_thread) as u64,
        }
    }
}

/// Prints an artefact once (outside the measured closures) so the bench log
/// carries the regenerated rows.
pub fn print_artifact(artifact: Artifact) {
    println!("==== {} (scale: {}) ====", artifact.name(), BENCH_SCALE);
    println!("{}", artifact.render(BENCH_SCALE));
}

/// A counting wrapper around the system allocator, for the zero-alloc
/// steady-state regression gate and the weak-scaling snapshot.
///
/// Install it as the test binary's `#[global_allocator]` and read
/// [`CountingAlloc::allocations`] before and after a region: the delta is the
/// number of heap allocations (`alloc`, `alloc_zeroed` and growing
/// `realloc`s) the region performed. Frees are not counted — the gates care
/// about allocation *pressure*, and a steady-state loop that frees must have
/// allocated first anyway.
pub struct CountingAlloc;

static ALLOCATION_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl CountingAlloc {
    /// Total allocations observed since process start.
    pub fn allocations() -> u64 {
        ALLOCATION_COUNT.load(std::sync::atomic::Ordering::Relaxed)
    }
}

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further side effects.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_matrix_contains_all_requested_workloads() {
        let m = single_workload_matrix(WorkloadKind::Reduce);
        assert_eq!(m.workloads, vec![WorkloadKind::Reduce]);
        assert_eq!(m.configs.len(), 4);
        let table = speedup_table(&m);
        assert_eq!(table.rows.len(), 2, "one workload row plus gmean");
        assert!(!latency_table(&m).rows.is_empty());
        assert!(!traffic_table(&m).rows.is_empty());
    }
}
