//! Micro-benchmarks of the simulator substrates themselves (ablation-style):
//! how fast the memory network, the HMC cube model and a single-workload
//! full-system run execute. These are not paper figures; they track the cost
//! of the building blocks so regressions in the simulator are visible.

use ar_system::Simulation;
use ar_types::config::NamedConfig;
use ar_workloads::{SizeClass, WorkloadKind};
use bench::BENCH_SCALE;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_single_runs(c: &mut Criterion) {
    let base = BENCH_SCALE.system_config();
    let mut group = c.benchmark_group("full_system_single_run");
    group.sample_size(10);
    for (name, config) in [
        ("reduce_hmc", NamedConfig::Hmc),
        ("reduce_arf_tid", NamedConfig::ArfTid),
        ("reduce_arf_addr", NamedConfig::ArfAddr),
        ("reduce_art", NamedConfig::Art),
        ("reduce_dram", NamedConfig::Dram),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                Simulation::builder()
                    .config(base.clone())
                    .named(config)
                    .workload(WorkloadKind::Reduce)
                    .size(SizeClass::Tiny)
                    .build()
                    .expect("valid configuration")
                    .run()
            })
        });
    }
    group.finish();
}

/// Event-driven vs lock-step kernel throughput on the workloads the
/// scheduler targets: sparse ones (pagerank, spmv) where most components
/// idle most cycles, and a dense one (sgemm) as the no-regression control.
/// Both kernels produce identical reports (see the equivalence tests); only
/// the wall-clock differs. The printed cycle counts let
/// simulated-cycles-per-wall-second be derived from the reported times.
fn bench_kernel_throughput(c: &mut Criterion) {
    let base = BENCH_SCALE.system_config();
    let mut group = c.benchmark_group("kernel_throughput");
    group.sample_size(10);
    for (name, workload) in [
        ("pagerank", WorkloadKind::Pagerank),
        ("spmv", WorkloadKind::Spmv),
        ("sgemm", WorkloadKind::Sgemm),
    ] {
        let build = || {
            Simulation::builder()
                .config(base.clone())
                .named(NamedConfig::ArfTid)
                .workload(workload)
                .size(SizeClass::Small)
                .build()
                .expect("valid configuration")
                .into_system()
        };
        let report = build().run();
        println!(
            "kernel_throughput/{name}: {} simulated network cycles per run",
            report.network_cycles
        );
        group.bench_function(&format!("{name}_event_driven"), |b| b.iter(|| build().run()));
        group.bench_function(&format!("{name}_lockstep"), |b| b.iter(|| build().run_lockstep()));
    }
    group.finish();
}

/// Thread-scaling of the sharded event-driven kernel: the scheduler
/// partitions the system into shards (cores | network | per-cube) and ticks
/// due cube shards on a worker pool, with per-shard outboxes merged in cube
/// order — reports are byte-identical at every thread count (asserted by the
/// equivalence suite), so only the wall clock varies here. Requests are
/// clamped to the host's parallelism: on a small machine the higher counts
/// degrade to the serial kernel and the rows should read as parity. The
/// offload configurations (engine + vault work per cube) are where extra
/// threads can pay off; quick-scale and memory-only runs mostly measure that
/// the sharding machinery costs nothing.
fn bench_kernel_threads(c: &mut Criterion) {
    const THREADS: [usize; 4] = [1, 2, 4, 8];
    let scales: [(&str, ar_types::config::SystemConfig, SizeClass, usize); 2] = [
        ("quick", BENCH_SCALE.system_config(), SizeClass::Small, 10),
        ("paper", ar_experiments::ExperimentScale::Full.system_config(), SizeClass::Paper, 3),
    ];
    for (scale, base, size, samples) in scales {
        let mut group = c.benchmark_group(format!("kernel_threads_{scale}"));
        group.sample_size(samples);
        for (name, workload) in [
            ("pagerank", WorkloadKind::Pagerank),
            ("spmv", WorkloadKind::Spmv),
            ("sgemm", WorkloadKind::Sgemm),
        ] {
            for threads in THREADS {
                let build = || {
                    Simulation::builder()
                        .config(base.clone())
                        .named(NamedConfig::ArfTid)
                        .workload(workload)
                        .size(size)
                        .threads(threads)
                        .build()
                        .expect("valid configuration")
                };
                group.bench_function(&format!("{name}_t{threads}"), |b| b.iter(|| build().run()));
            }
        }
        group.finish();
    }
}

/// Bulk compute fast-forwarding on the workload shape it targets: long
/// compute blocks between cache misses (`bench::ComputeBursts`). The event
/// kernel computes each block's retire/issue schedule in closed form and
/// sleeps the core for the block's duration; the `_off` rows run the same
/// simulation with per-cycle issuing (the PR 4 event kernel), and the
/// lock-step row is the full per-cycle reference. All three produce
/// byte-identical reports — only the wall clock differs. The built-in
/// workloads (see `kernel_throughput`) carry only short blocks and are
/// unaffected either way; the release regression gate pins that too.
fn bench_kernel_fastforward(c: &mut Criterion) {
    let base = BENCH_SCALE.system_config();
    let mut group = c.benchmark_group("kernel_fastforward");
    group.sample_size(10);
    for (name, blocks, insns) in
        [("bursts_100k", 24usize, 100_000u32), ("bursts_8k", 96, 8_192), ("bursts_512", 384, 512)]
    {
        let bursts = bench::ComputeBursts { blocks_per_thread: blocks, block_insns: insns };
        let build = |fast_forward: bool| {
            Simulation::builder()
                .config(base.clone())
                .named(NamedConfig::Hmc)
                .workload(bursts)
                .size(SizeClass::Tiny)
                .fast_forward(fast_forward)
                .build()
                .expect("valid configuration")
                .into_system()
        };
        let report = build(true).run();
        println!(
            "kernel_fastforward/{name}: {} simulated network cycles per run",
            report.network_cycles
        );
        group.bench_function(&format!("{name}_fast_forward"), |b| b.iter(|| build(true).run()));
        group.bench_function(&format!("{name}_off"), |b| b.iter(|| build(false).run()));
        group
            .bench_function(&format!("{name}_lockstep"), |b| b.iter(|| build(true).run_lockstep()));
    }
    group.finish();
}

/// The system-level offload-drain fast-forward on the workload shape it
/// targets: long MI-full `Update` runs (`bench::OffloadBursts`) under the
/// ARF-tid offload scheme. The event kernel plans each back-pressured drain
/// interval in closed form (`ar_system::drain`) and sleeps the whole core
/// cluster until the interval ends, submitting the planned commands from a
/// precomputed outbox; the `_off` rows run the same simulation with the
/// planner disabled (per-cycle MI pops, the PR 5 event kernel), and the
/// lock-step row is the full per-cycle reference. All three produce
/// byte-identical reports — only the wall clock differs. Quick scale gates
/// the planner's win on a small cluster; paper scale is the configuration
/// the figure-regeneration runs actually pay for.
fn bench_kernel_offload(c: &mut Criterion) {
    let scales: [(&str, ar_types::config::SystemConfig, usize, usize); 2] = [
        ("quick", BENCH_SCALE.system_config(), 4_096, 10),
        ("paper", ar_experiments::ExperimentScale::Full.system_config(), 8_192, 3),
    ];
    for (scale, base, updates, samples) in scales {
        let mut group = c.benchmark_group(format!("kernel_offload_{scale}"));
        group.sample_size(samples);
        let bursts = bench::OffloadBursts { updates_per_thread: updates };
        let build = |drain: bool| {
            Simulation::builder()
                .config(base.clone())
                .named(NamedConfig::ArfTid)
                .workload(bursts)
                .size(SizeClass::Tiny)
                .drain_fast_forward(drain)
                .build()
                .expect("valid configuration")
                .into_system()
        };
        let report = build(true).run();
        println!(
            "kernel_offload_{scale}: {} simulated network cycles, {} updates offloaded per run",
            report.network_cycles, report.updates_offloaded
        );
        group.bench_function("bursts_drain_fast_forward", |b| b.iter(|| build(true).run()));
        group.bench_function("bursts_off", |b| b.iter(|| build(false).run()));
        group.bench_function("bursts_lockstep", |b| b.iter(|| build(true).run_lockstep()));
        group.finish();
    }
}

/// Weak scaling of the event kernel across the machine size classes: the
/// same per-thread offload work (`bench::OffloadBursts`, 512 updates per
/// thread) on the quick machine, the paper's 16-core/16-cube machine and the
/// 10x weak-scaling machine (`SystemConfig::scaled()`: 160 cores, 160 cubes,
/// 10 dragonfly groups). Because the work is per-thread, total work grows
/// with the machine, and ideal weak scaling would hold wall clock per
/// simulated cycle constant; the printed cycle counts and the pooled
/// network's peak in-flight footprint make the deviation measurable. The
/// release gate (`tests/weak_scaling.rs`) pins the scaled/paper wall-clock
/// ratio against `BENCH_weak_scaling.json`.
fn bench_kernel_weak_scaling(c: &mut Criterion) {
    let scales: [(&str, ar_types::config::SystemConfig, SizeClass, usize); 3] = [
        ("quick", BENCH_SCALE.system_config(), SizeClass::Small, 10),
        ("paper", ar_experiments::ExperimentScale::Full.system_config(), SizeClass::Paper, 10),
        ("scaled", ar_types::config::SystemConfig::scaled(), SizeClass::Scaled, 3),
    ];
    let bursts = bench::OffloadBursts { updates_per_thread: 512 };
    let mut group = c.benchmark_group("kernel_weak_scaling");
    for (scale, base, size, samples) in scales {
        group.sample_size(samples);
        let build = || {
            Simulation::builder()
                .config(base.clone())
                .named(NamedConfig::ArfTid)
                .workload(bursts)
                .size(size)
                .build()
                .expect("valid configuration")
                .into_system()
        };
        let (report, footprint) = build().run_with_footprint();
        println!(
            "kernel_weak_scaling/{scale}: {} simulated network cycles, {} updates offloaded, \
             peak {} packets in flight per run",
            report.network_cycles, report.updates_offloaded, footprint.peak_packets_in_flight
        );
        group.bench_function(scale, |b| b.iter(|| build().run()));
    }
    group.finish();
}

/// Checkpoint/restore costs and the warm-fan-out sweep pattern. `snapshot`
/// prices serializing a mid-run system to its checkpoint JSON, `restore`
/// prices building a simulation back out of one (state decode + load), and
/// the `fan_out_*` pair compares warm-up-once-then-fan-out (one shared
/// prefix, N resumed variants) against N cold full runs of the same
/// report-neutral knob variants — the shared prefix is simulated once
/// instead of N times, which is the pattern's entire win. All fanned
/// reports are byte-identical to their cold runs (asserted by the sweep
/// unit tests and the checkpoint property suite).
fn bench_kernel_checkpoint(c: &mut Criterion) {
    use ar_system::{warm_fan_out, CellKey, CellKnobs};
    use std::sync::Arc;

    let base = BENCH_SCALE.system_config();
    let mut group = c.benchmark_group("kernel_checkpoint");
    group.sample_size(10);
    let build = || {
        Simulation::builder()
            .config(base.clone())
            .named(NamedConfig::ArfTid)
            .workload(WorkloadKind::Pagerank)
            .size(SizeClass::Small)
            .build()
            .expect("valid configuration")
    };
    let full = build().run();
    let prefix = full.network_cycles / 2;
    let mut warm = build();
    warm.run_prefix(prefix);
    let rendered = warm.checkpoint().to_json().render();
    println!(
        "kernel_checkpoint: {} simulated network cycles per run, snapshot at {prefix} \
         ({} checkpoint bytes)",
        full.network_cycles,
        rendered.len()
    );
    group.bench_function("snapshot", |b| b.iter(|| warm.checkpoint().to_json().render()));
    let ck = warm.checkpoint();
    group.bench_function("restore", |b| {
        b.iter(|| build_restore(&base, ck.clone()).expect("valid restore"))
    });

    // Four report-neutral knob variants, the warm-fan-out shape: one shared
    // prefix + four resumed tails, vs four cold full runs.
    let variants = [
        CellKnobs::default(),
        CellKnobs { threads: 4, ..CellKnobs::default() },
        CellKnobs { fast_forward: Some(false), ..CellKnobs::default() },
        CellKnobs { cross_cycle: Some(false), ..CellKnobs::default() },
    ];
    let cell = CellKey::new("pagerank", NamedConfig::ArfTid, SizeClass::Small);
    let workload: Arc<dyn ar_workloads::Workload> = Arc::new(WorkloadKind::Pagerank);
    group.bench_function("fan_out_warm", |b| {
        b.iter(|| {
            warm_fan_out(&base, workload.clone(), &cell, prefix, &variants).expect("valid fan-out")
        })
    });
    group.bench_function("fan_out_cold", |b| {
        b.iter(|| {
            variants
                .iter()
                .map(|knobs| {
                    cell.clone()
                        .with_knobs(*knobs)
                        .configure(&base, workload.clone())
                        .build()
                        .expect("valid configuration")
                        .run()
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// Builds a pagerank/ARF-tid/Small simulation restored from `ck` (split out
/// so the `restore` row prices exactly the decode + state-load path).
fn build_restore(
    base: &ar_types::config::SystemConfig,
    ck: ar_system::Checkpoint,
) -> Result<ar_system::Simulation, ar_types::error::ConfigError> {
    Simulation::builder()
        .config(base.clone())
        .named(NamedConfig::ArfTid)
        .workload(WorkloadKind::Pagerank)
        .size(SizeClass::Small)
        .from_checkpoint(ck)
        .build()
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(20);
    for kind in [WorkloadKind::Pagerank, WorkloadKind::Sgemm, WorkloadKind::Spmv] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| kind.generate(4, SizeClass::Small, ar_workloads::Variant::Active))
        });
    }
    group.finish();
}

criterion_group!(
    simulator,
    bench_single_runs,
    bench_kernel_throughput,
    bench_kernel_threads,
    bench_kernel_fastforward,
    bench_kernel_offload,
    bench_kernel_weak_scaling,
    bench_kernel_checkpoint,
    bench_workload_generation
);
criterion_main!(simulator);
