//! Micro-benchmarks of the simulator substrates themselves (ablation-style):
//! how fast the memory network, the HMC cube model and a single-workload
//! full-system run execute. These are not paper figures; they track the cost
//! of the building blocks so regressions in the simulator are visible.

use ar_system::runner;
use ar_types::config::NamedConfig;
use ar_workloads::{SizeClass, WorkloadKind};
use bench::BENCH_SCALE;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_single_runs(c: &mut Criterion) {
    let base = BENCH_SCALE.system_config();
    let mut group = c.benchmark_group("full_system_single_run");
    group.sample_size(10);
    for (name, config) in [
        ("reduce_hmc", NamedConfig::Hmc),
        ("reduce_arf_tid", NamedConfig::ArfTid),
        ("reduce_arf_addr", NamedConfig::ArfAddr),
        ("reduce_art", NamedConfig::Art),
        ("reduce_dram", NamedConfig::Dram),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                runner::run(&base, config, WorkloadKind::Reduce, SizeClass::Tiny)
                    .expect("valid configuration")
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(20);
    for kind in [WorkloadKind::Pagerank, WorkloadKind::Sgemm, WorkloadKind::Spmv] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| kind.generate(4, SizeClass::Small, ar_workloads::Variant::Active))
        });
    }
    group.finish();
}

criterion_group!(simulator, bench_single_runs, bench_workload_generation);
criterion_main!(simulator);
