//! One Criterion group per table/figure of the evaluation.
//!
//! Each group regenerates its artefact at the reduced benchmark scale: the
//! simulation-heavy step (running the workload × configuration matrix) is
//! measured separately from the cheap table-building step, and the resulting
//! rows are printed once so the bench log contains the regenerated data.

use ar_experiments::{adaptive::AdaptiveStudy, energy, heatmap, Artifact, EnergyMetric};
use ar_workloads::WorkloadKind;
use bench::{
    bench_matrix, latency_table, print_artifact, single_workload_matrix, speedup_table,
    traffic_table, BENCH_SCALE,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn configure<'c>(
    c: &'c mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group
}

fn bench_table_3_1(c: &mut Criterion) {
    print_artifact(Artifact::Table3_1);
    let mut group = configure(c, "table_3_1");
    group.bench_function("render", |b| b.iter(|| Artifact::Table3_1.render(BENCH_SCALE)));
    group.finish();
}

fn bench_table_4_1(c: &mut Criterion) {
    print_artifact(Artifact::Table4_1);
    let mut group = configure(c, "table_4_1");
    group.bench_function("render", |b| b.iter(|| Artifact::Table4_1.render(BENCH_SCALE)));
    group.finish();
}

fn bench_fig5_1(c: &mut Criterion) {
    // Fig. 5.1(a)/(b): runtime speedup. The matrix run is the measured step.
    let matrix = bench_matrix(&[WorkloadKind::Reduce, WorkloadKind::Mac]);
    println!("{}", speedup_table(&matrix));
    let mut group = configure(c, "fig5_1_speedup");
    group.bench_function("simulate_reduce_matrix", |b| {
        b.iter(|| single_workload_matrix(WorkloadKind::Reduce))
    });
    group.bench_function("build_table", |b| b.iter(|| speedup_table(&matrix)));
    group.finish();
}

fn bench_fig5_2(c: &mut Criterion) {
    let matrix = bench_matrix(&[WorkloadKind::Mac, WorkloadKind::RandMac]);
    println!("{}", latency_table(&matrix));
    let mut group = configure(c, "fig5_2_latency");
    group.bench_function("simulate_rand_mac_matrix", |b| {
        b.iter(|| single_workload_matrix(WorkloadKind::RandMac))
    });
    group.bench_function("build_table", |b| b.iter(|| latency_table(&matrix)));
    group.finish();
}

fn bench_fig5_3(c: &mut Criterion) {
    let maps = heatmap::figure_5_3(BENCH_SCALE);
    println!("{}", heatmap::to_table(&maps, "Figure 5.3 (bench scale)"));
    let mut group = configure(c, "fig5_3_heatmap");
    group.bench_function("simulate_lud_heatmaps", |b| b.iter(|| heatmap::figure_5_3(BENCH_SCALE)));
    group.finish();
}

fn bench_fig5_4(c: &mut Criterion) {
    let matrix = bench_matrix(&[WorkloadKind::Reduce, WorkloadKind::Mac]);
    println!("{}", traffic_table(&matrix));
    let mut group = configure(c, "fig5_4_data_movement");
    group.bench_function("simulate_mac_matrix", |b| {
        b.iter(|| single_workload_matrix(WorkloadKind::Mac))
    });
    group.bench_function("build_table", |b| b.iter(|| traffic_table(&matrix)));
    group.finish();
}

fn bench_fig5_5_6_7(c: &mut Criterion) {
    // Figs. 5.5-5.7 share the speedup matrix; only the energy accounting
    // differs, so the accounting itself is the measured step.
    let matrix = bench_matrix(&[WorkloadKind::RandMac]);
    for (metric, title) in [
        (EnergyMetric::Power, "Figure 5.5 (bench scale)"),
        (EnergyMetric::Energy, "Figure 5.6 (bench scale)"),
        (EnergyMetric::EnergyDelayProduct, "Figure 5.7 (bench scale)"),
    ] {
        println!("{}", energy::figure_energy(&matrix, metric, title));
    }
    let mut group = configure(c, "fig5_5_6_7_energy");
    group.bench_function("power_table", |b| {
        b.iter(|| energy::figure_energy(&matrix, EnergyMetric::Power, "Figure 5.5"))
    });
    group.bench_function("energy_table", |b| {
        b.iter(|| energy::figure_energy(&matrix, EnergyMetric::Energy, "Figure 5.6"))
    });
    group.bench_function("edp_table", |b| {
        b.iter(|| energy::figure_energy(&matrix, EnergyMetric::EnergyDelayProduct, "Figure 5.7"))
    });
    group.finish();
}

fn bench_fig5_8(c: &mut Criterion) {
    let study = AdaptiveStudy::run(BENCH_SCALE);
    println!("{}", study.speedup_table("Figure 5.8 (bench scale)"));
    let mut group = configure(c, "fig5_8_adaptive");
    group.bench_function("simulate_lud_three_configs", |b| {
        b.iter(|| AdaptiveStudy::run(BENCH_SCALE))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table_3_1,
    bench_table_4_1,
    bench_fig5_1,
    bench_fig5_2,
    bench_fig5_3,
    bench_fig5_4,
    bench_fig5_5_6_7,
    bench_fig5_8
);
criterion_main!(figures);
