//! The host CMP cache hierarchy.
//!
//! Each core has a private L1 data cache; all cores share a static-NUCA L2
//! whose banks are distributed over the mesh tiles; a directory co-located
//! with the L2 banks keeps the private L1s coherent with a MESI-style
//! invalidation protocol (Table 4.1). The hierarchy is *inclusive*: every L1
//! line is also present in the L2, so evicting an L2 line back-invalidates
//! the corresponding L1 copies.
//!
//! The model is functional-plus-counters: an [`hierarchy::CacheHierarchy::access`]
//! immediately updates tag state and reports *what happened* (hit level,
//! invalidations sent, writebacks generated); the system model translates
//! that into cycles using the NoC and memory models.
//!
//! Back-invalidation for Active-Routing offloads (Section 3.4.2) is exposed as
//! [`hierarchy::CacheHierarchy::back_invalidate`].

pub mod array;
pub mod hierarchy;

pub use array::{CacheArray, EvictedLine};
pub use hierarchy::{AccessKind, AccessResult, CacheHierarchy, CacheStats, HitLevel};
