//! The two-level coherent cache hierarchy.

use crate::array::CacheArray;
use ar_types::config::CacheConfig;
use ar_types::hash::FastHashMap;
use ar_types::json::{Json, JsonError};
use ar_types::Addr;

/// The kind of access performed by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write (costs a write plus an extra coherence
    /// round trip; used by the baseline `atomic += ` kernels).
    Atomic,
}

impl AccessKind {
    /// Returns true if the access needs exclusive ownership of the block.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Atomic)
    }
}

/// Which level of the hierarchy served the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the core's private L1.
    L1,
    /// Served by the shared S-NUCA L2.
    L2,
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Level that served the access; `None` means main memory must be accessed.
    pub hit: Option<HitLevel>,
    /// The S-NUCA L2 bank the block maps to (also the directory home).
    pub l2_bank: usize,
    /// Number of remote L1 copies invalidated by this access.
    pub invalidations: u32,
    /// Number of dirty blocks evicted to main memory by this access.
    pub writebacks: u32,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total L1 accesses.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Total L2 accesses (i.e. L1 misses).
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Coherence invalidation messages sent to L1s.
    pub invalidations: u64,
    /// Dirty blocks written back to memory.
    pub writebacks: u64,
    /// Back-invalidations performed on behalf of offloaded updates.
    pub back_invalidations: u64,
}

impl CacheStats {
    /// L1 miss ratio in `[0, 1]`.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            1.0 - self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// L2 miss ratio in `[0, 1]`.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            1.0 - self.l2_hits as f64 / self.l2_accesses as f64
        }
    }
}

/// Directory entry: which cores hold the block in their L1. A fixed
/// four-word bitmask covers machines up to 256 cores (the weak-scaling
/// configuration has 160) without a heap allocation per entry.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: [u64; 4],
}

impl DirEntry {
    /// Largest core index the mask can represent, checked at construction.
    const CAPACITY: usize = 256;

    fn add(&mut self, core: usize) {
        self.sharers[core / 64] |= 1 << (core % 64);
    }
    fn remove(&mut self, core: usize) {
        self.sharers[core / 64] &= !(1 << (core % 64));
    }
    fn contains(&self, core: usize) -> bool {
        self.sharers[core / 64] & (1 << (core % 64)) != 0
    }
    fn count(&self) -> u32 {
        self.sharers.iter().map(|w| w.count_ones()).sum()
    }
    /// Iterates the set core indices in ascending order, without allocating.
    fn iter(&self) -> impl Iterator<Item = usize> {
        self.sharers.into_iter().enumerate().flat_map(|(word, mut bits)| {
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(word * 64 + bit)
            })
        })
    }
}

/// The coherent two-level cache hierarchy shared by all cores.
#[derive(Debug)]
pub struct CacheHierarchy {
    l1: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    directory: FastHashMap<u64, DirEntry>,
    cfg: CacheConfig,
    stats: CacheStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cores` cores with the given configuration.
    pub fn new(cores: usize, cfg: &CacheConfig) -> Self {
        assert!(
            cores <= DirEntry::CAPACITY,
            "the directory sharer mask supports at most {} cores",
            DirEntry::CAPACITY
        );
        let bank_bytes = (cfg.l2_bytes / cfg.l2_banks).max(cfg.block_bytes * cfg.l2_ways);
        CacheHierarchy {
            l1: (0..cores)
                .map(|_| CacheArray::new(cfg.l1_bytes, cfg.l1_ways, cfg.block_bytes))
                .collect(),
            l2: (0..cfg.l2_banks)
                .map(|_| CacheArray::new(bank_bytes, cfg.l2_ways, cfg.block_bytes))
                .collect(),
            directory: FastHashMap::default(),
            cfg: cfg.clone(),
            stats: CacheStats::default(),
        }
    }

    /// The S-NUCA bank (and directory home) of an address.
    pub fn l2_bank_of(&self, addr: Addr) -> usize {
        (addr.block_index() % self.l2.len() as u64) as usize
    }

    /// Configuration this hierarchy was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Performs an access by `core` to `addr` and returns what happened.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: Addr, kind: AccessKind) -> AccessResult {
        let addr = addr.block_aligned();
        let block = addr.block_index();
        let l2_bank = self.l2_bank_of(addr);
        let mut invalidations = 0u32;
        let mut writebacks = 0u32;

        self.stats.l1_accesses += 1;
        let l1_hit = self.l1[core].access(addr, kind.is_write());

        if l1_hit {
            // On a write hit we may still need to invalidate other sharers
            // (upgrade from Shared to Modified).
            if kind.is_write() {
                invalidations += self.invalidate_other_sharers(core, addr);
            }
            self.stats.l1_hits += 1;
            self.stats.invalidations += u64::from(invalidations);
            return AccessResult { hit: Some(HitLevel::L1), l2_bank, invalidations, writebacks };
        }

        // L1 miss: go to the home L2 bank / directory.
        self.stats.l2_accesses += 1;
        let l2_hit = self.l2[l2_bank].access(addr, kind.is_write());
        if kind.is_write() {
            invalidations += self.invalidate_other_sharers(core, addr);
        }

        // Install in L1 (inclusive hierarchy).
        if let Some(victim) = self.l1[core].insert(addr, kind.is_write()) {
            // The victim's data lives in L2 (inclusive); propagate dirtiness.
            if victim.dirty {
                let vbank = self.l2_bank_of(victim.addr);
                self.l2[vbank].mark_dirty(victim.addr);
            }
            if let Some(e) = self.directory.get_mut(&victim.addr.block_index()) {
                e.remove(core);
            }
        }
        self.directory.entry(block).or_default().add(core);

        if l2_hit {
            self.stats.l2_hits += 1;
            self.stats.invalidations += u64::from(invalidations);
            return AccessResult { hit: Some(HitLevel::L2), l2_bank, invalidations, writebacks };
        }

        // L2 miss: install in the bank; a dirty victim goes back to memory and
        // its L1 copies are back-invalidated (inclusivity).
        if let Some(victim) = self.l2[l2_bank].insert(addr, kind.is_write()) {
            let mut victim_dirty = victim.dirty;
            if let Some(entry) = self.directory.remove(&victim.addr.block_index()) {
                for sharer in entry.iter() {
                    if sharer < self.l1.len() {
                        if let Some(line) = self.l1[sharer].invalidate(victim.addr) {
                            victim_dirty |= line.dirty;
                        }
                        invalidations += 1;
                    }
                }
            }
            if victim_dirty {
                writebacks += 1;
            }
        }

        self.stats.invalidations += u64::from(invalidations);
        self.stats.writebacks += u64::from(writebacks);
        AccessResult { hit: None, l2_bank, invalidations, writebacks }
    }

    fn invalidate_other_sharers(&mut self, core: usize, addr: Addr) -> u32 {
        let block = addr.block_index();
        let Some(entry) = self.directory.get_mut(&block) else { return 0 };
        let mut others = *entry;
        others.remove(core);
        let count = others.count();
        if count > 0 {
            // Only the writer's own copy survives.
            let keep = entry.contains(core);
            *entry = DirEntry::default();
            if keep {
                entry.add(core);
            }
            for s in others.iter() {
                if s < self.l1.len() {
                    self.l1[s].invalidate(addr);
                }
            }
        }
        count
    }

    /// Removes a block from every cache (L1s and L2) — the back-invalidation
    /// performed before an address is offloaded for Active-Routing processing
    /// (Section 3.4.2). Returns the number of copies that were found, and
    /// whether any of them was dirty (in which case the caller must write the
    /// block back to memory before offloading).
    pub fn back_invalidate(&mut self, addr: Addr) -> (u32, bool) {
        let addr = addr.block_aligned();
        let mut copies = 0u32;
        let mut dirty = false;
        if let Some(entry) = self.directory.remove(&addr.block_index()) {
            for sharer in entry.iter() {
                if sharer < self.l1.len() {
                    if let Some(line) = self.l1[sharer].invalidate(addr) {
                        copies += 1;
                        dirty |= line.dirty;
                    }
                }
            }
        }
        let bank = self.l2_bank_of(addr);
        if let Some(line) = self.l2[bank].invalidate(addr) {
            copies += 1;
            dirty |= line.dirty;
        }
        if copies > 0 {
            self.stats.back_invalidations += 1;
        }
        (copies, dirty)
    }

    /// Returns true if any cache currently holds the block.
    pub fn is_cached(&self, addr: Addr) -> bool {
        let addr = addr.block_aligned();
        let bank = self.l2_bank_of(addr);
        self.l2[bank].probe(addr) || self.l1.iter().any(|l1| l1.probe(addr))
    }

    /// Number of cores this hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Serializes the hierarchy's dynamic state: all tag arrays, the
    /// directory (sorted by block for stable output, sharer masks as hex
    /// words) and the aggregate statistics.
    pub fn state_to_json(&self) -> Json {
        let mut directory: Vec<(&u64, &DirEntry)> = self.directory.iter().collect();
        directory.sort_by_key(|(block, _)| **block);
        Json::obj([
            ("l1", Json::Arr(self.l1.iter().map(CacheArray::state_to_json).collect())),
            ("l2", Json::Arr(self.l2.iter().map(CacheArray::state_to_json).collect())),
            (
                "directory",
                Json::Arr(
                    directory
                        .into_iter()
                        .map(|(block, entry)| {
                            Json::obj([
                                ("block", Json::hex_u64(*block)),
                                (
                                    "sharers",
                                    Json::Arr(
                                        entry.sharers.iter().copied().map(Json::hex_u64).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "stats",
                Json::obj([
                    ("l1_accesses", Json::from(self.stats.l1_accesses)),
                    ("l1_hits", Json::from(self.stats.l1_hits)),
                    ("l2_accesses", Json::from(self.stats.l2_accesses)),
                    ("l2_hits", Json::from(self.stats.l2_hits)),
                    ("invalidations", Json::from(self.stats.invalidations)),
                    ("writebacks", Json::from(self.stats.writebacks)),
                    ("back_invalidations", Json::from(self.stats.back_invalidations)),
                ]),
            ),
        ])
    }

    /// Restores dynamic state onto a freshly constructed hierarchy.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the document is malformed, the array
    /// counts disagree with this hierarchy's configuration, or the directory
    /// holds duplicate blocks.
    pub fn load_state(&mut self, doc: &Json) -> Result<(), JsonError> {
        let l1 = doc.req_array("l1")?;
        if l1.len() != self.l1.len() {
            return Err(JsonError::state(format!(
                "checkpoint has {} L1 arrays but the hierarchy serves {} cores",
                l1.len(),
                self.l1.len()
            )));
        }
        for (array, state) in self.l1.iter_mut().zip(l1) {
            array.load_state(state)?;
        }
        let l2 = doc.req_array("l2")?;
        if l2.len() != self.l2.len() {
            return Err(JsonError::state(format!(
                "checkpoint has {} L2 banks but the hierarchy is configured with {}",
                l2.len(),
                self.l2.len()
            )));
        }
        for (array, state) in self.l2.iter_mut().zip(l2) {
            array.load_state(state)?;
        }
        self.directory.clear();
        for entry in doc.req_array("directory")? {
            let block = entry.req_hex_u64("block")?;
            let words = entry.req_array("sharers")?;
            if words.len() != 4 {
                return Err(JsonError::state("directory sharer mask must hold 4 words"));
            }
            let mut sharers = [0u64; 4];
            for (word, doc) in sharers.iter_mut().zip(words) {
                *word = doc.as_hex_u64().ok_or_else(|| {
                    JsonError::state("directory sharer word is not a hex bit pattern")
                })?;
            }
            if self.directory.insert(block, DirEntry { sharers }).is_some() {
                return Err(JsonError::state("duplicate block in directory state"));
            }
        }
        let stats = doc.req("stats")?;
        self.stats = CacheStats {
            l1_accesses: stats.req_u64("l1_accesses")?,
            l1_hits: stats.req_u64("l1_hits")?,
            l2_accesses: stats.req_u64("l2_accesses")?,
            l2_hits: stats.req_u64("l2_hits")?,
            invalidations: stats.req_u64("invalidations")?,
            writebacks: stats.req_u64("writebacks")?,
            back_invalidations: stats.req_u64("back_invalidations")?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CacheConfig {
        CacheConfig {
            l1_bytes: 512,
            l1_ways: 2,
            l2_bytes: 4096,
            l2_ways: 4,
            l2_banks: 2,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut h = CacheHierarchy::new(2, &small_cfg());
        let a = Addr::new(0x1000);
        let first = h.access(0, a, AccessKind::Read);
        assert_eq!(first.hit, None);
        let second = h.access(0, a, AccessKind::Read);
        assert_eq!(second.hit, Some(HitLevel::L1));
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn shared_block_served_from_l2_for_second_core() {
        let mut h = CacheHierarchy::new(2, &small_cfg());
        let a = Addr::new(0x2000);
        h.access(0, a, AccessKind::Read);
        let r = h.access(1, a, AccessKind::Read);
        assert_eq!(r.hit, Some(HitLevel::L2));
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut h = CacheHierarchy::new(4, &small_cfg());
        let a = Addr::new(0x3000);
        for core in 0..4 {
            h.access(core, a, AccessKind::Read);
        }
        let w = h.access(0, a, AccessKind::Write);
        assert_eq!(w.invalidations, 3);
        // Core 1 must now miss in its L1 (copy invalidated) but hit in L2.
        let r = h.access(1, a, AccessKind::Read);
        assert_eq!(r.hit, Some(HitLevel::L2));
    }

    #[test]
    fn atomic_counts_as_write_for_coherence() {
        let mut h = CacheHierarchy::new(2, &small_cfg());
        let a = Addr::new(0x4000);
        h.access(0, a, AccessKind::Read);
        h.access(1, a, AccessKind::Read);
        let r = h.access(0, a, AccessKind::Atomic);
        assert_eq!(r.invalidations, 1);
        assert!(AccessKind::Atomic.is_write());
    }

    #[test]
    fn capacity_eviction_generates_writeback_for_dirty_data() {
        let cfg = CacheConfig {
            l1_bytes: 128,
            l1_ways: 1,
            l2_bytes: 256,
            l2_ways: 1,
            l2_banks: 1,
            ..CacheConfig::default()
        };
        let mut h = CacheHierarchy::new(1, &cfg);
        // Dirty a block, then stream enough conflicting blocks through the
        // single-way L2 to evict it.
        h.access(0, Addr::new(0), AccessKind::Write);
        let mut wb = 0;
        for i in 1..16u64 {
            let r = h.access(0, Addr::new(i * 256), AccessKind::Read);
            wb += r.writebacks;
        }
        assert!(wb >= 1, "dirty block must be written back");
        assert!(h.stats().writebacks >= 1);
    }

    #[test]
    fn back_invalidate_removes_all_copies() {
        let mut h = CacheHierarchy::new(2, &small_cfg());
        let a = Addr::new(0x5000);
        h.access(0, a, AccessKind::Write);
        h.access(1, a, AccessKind::Read);
        assert!(h.is_cached(a));
        let (copies, dirty) = h.back_invalidate(a);
        assert!(copies >= 2);
        assert!(dirty, "block was written by core 0");
        assert!(!h.is_cached(a));
        // A second back-invalidation finds nothing.
        assert_eq!(h.back_invalidate(a), (0, false));
    }

    #[test]
    fn miss_rates_are_sane() {
        let mut h = CacheHierarchy::new(1, &small_cfg());
        for i in 0..64u64 {
            h.access(0, Addr::new(i * 64), AccessKind::Read);
        }
        let s = h.stats();
        assert!(s.l1_miss_rate() > 0.0 && s.l1_miss_rate() <= 1.0);
        assert!(s.l2_miss_rate() > 0.0 && s.l2_miss_rate() <= 1.0);
        assert_eq!(s.l1_accesses, 64);
    }

    #[test]
    fn bank_mapping_spreads_blocks() {
        let h = CacheHierarchy::new(1, &small_cfg());
        assert_ne!(h.l2_bank_of(Addr::new(0)), h.l2_bank_of(Addr::new(64)));
        assert_eq!(h.cores(), 1);
    }

    #[test]
    fn state_json_round_trip_resumes_identically() {
        let cfg = small_cfg();
        let mut original = CacheHierarchy::new(4, &cfg);
        // Build up sharing, dirtiness and eviction history.
        for i in 0..48u64 {
            let core = (i % 4) as usize;
            let kind = match i % 3 {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::Atomic,
            };
            original.access(core, Addr::new((i % 13) * 192), kind);
        }
        original.back_invalidate(Addr::new(0));

        let doc = ar_types::json::Json::parse(&original.state_to_json().render())
            .expect("state renders to valid JSON");
        let mut restored = CacheHierarchy::new(4, &cfg);
        restored.load_state(&doc).expect("state loads");

        assert_eq!(restored.stats(), original.stats());
        // Both hierarchies must behave identically from here on.
        for i in 0..48u64 {
            let core = ((i + 1) % 4) as usize;
            let addr = Addr::new((i % 17) * 128);
            let kind = if i % 2 == 0 { AccessKind::Write } else { AccessKind::Read };
            assert_eq!(
                original.access(core, addr, kind),
                restored.access(core, addr, kind),
                "divergence at access {i}"
            );
        }
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn load_state_rejects_inconsistent_configuration() {
        let cfg = small_cfg();
        let mut donor = CacheHierarchy::new(2, &cfg);
        donor.access(0, Addr::new(0x100), AccessKind::Write);
        let state = donor.state_to_json();

        // Wrong core count.
        let mut wrong_cores = CacheHierarchy::new(3, &cfg);
        assert!(wrong_cores.load_state(&state).is_err());

        // Wrong associativity (way count inside each set differs).
        let narrow = CacheConfig { l1_ways: 1, ..cfg.clone() };
        let mut wrong_ways = CacheHierarchy::new(2, &narrow);
        assert!(wrong_ways.load_state(&state).is_err());
    }
}
