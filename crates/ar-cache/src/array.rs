//! A generic set-associative tag array with LRU replacement.

use ar_types::json::{Json, JsonError};
use ar_types::Addr;

/// A line evicted from a [`CacheArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Block-aligned address of the evicted line.
    pub addr: Addr,
    /// Whether the line was dirty (requires a writeback).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: u64,
    dirty: bool,
    last_used: u64,
}

/// A set-associative cache tag array with true-LRU replacement.
///
/// The array tracks presence and dirtiness only; coherence state lives in the
/// directory of the [`crate::hierarchy::CacheHierarchy`].
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<Vec<Option<Line>>>,
    ways: usize,
    block_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheArray {
    /// Creates an array with the given total capacity, associativity and
    /// block size.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways * block_bytes`
    /// or any parameter is zero.
    pub fn new(capacity_bytes: usize, ways: usize, block_bytes: usize) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && block_bytes > 0, "parameters must be non-zero");
        let blocks = capacity_bytes / block_bytes;
        assert!(blocks >= ways, "capacity too small for associativity");
        let num_sets = (blocks / ways).max(1);
        CacheArray {
            sets: vec![vec![None; ways]; num_sets],
            ways,
            block_bytes: block_bytes as u64,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn block_of(&self, addr: Addr) -> u64 {
        addr.as_u64() / self.block_bytes
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Looks up `addr`; on a hit updates LRU state (and dirtiness for writes)
    /// and returns true.
    pub fn access(&mut self, addr: Addr, write: bool) -> bool {
        self.tick += 1;
        let block = self.block_of(addr);
        let set = self.set_of(block);
        for way in self.sets[set].iter_mut().flatten() {
            if way.block == block {
                way.last_used = self.tick;
                way.dirty |= write;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Returns true if `addr` is present, without touching LRU state.
    pub fn probe(&self, addr: Addr) -> bool {
        let block = self.block_of(addr);
        let set = self.set_of(block);
        self.sets[set].iter().flatten().any(|l| l.block == block)
    }

    /// Inserts `addr` (after a miss), evicting the LRU line of the set if the
    /// set is full. Returns the evicted line, if any.
    pub fn insert(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        self.tick += 1;
        let block = self.block_of(addr);
        let set = self.set_of(block);
        // Already present (racing insert): just update.
        for way in self.sets[set].iter_mut().flatten() {
            if way.block == block {
                way.dirty |= dirty;
                way.last_used = self.tick;
                return None;
            }
        }
        // Free way?
        if let Some(slot) = self.sets[set].iter_mut().find(|w| w.is_none()) {
            *slot = Some(Line { block, dirty, last_used: self.tick });
            return None;
        }
        // Evict LRU.
        let lru_idx = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.map(|l| l.last_used).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("set has ways");
        let victim = self.sets[set][lru_idx].expect("occupied");
        self.sets[set][lru_idx] = Some(Line { block, dirty, last_used: self.tick });
        Some(EvictedLine { addr: Addr::new(victim.block * self.block_bytes), dirty: victim.dirty })
    }

    /// Removes `addr` from the array if present; returns the removed line.
    pub fn invalidate(&mut self, addr: Addr) -> Option<EvictedLine> {
        let block = self.block_of(addr);
        let set = self.set_of(block);
        for way in self.sets[set].iter_mut() {
            if let Some(line) = way {
                if line.block == block {
                    let out = EvictedLine {
                        addr: Addr::new(line.block * self.block_bytes),
                        dirty: line.dirty,
                    };
                    *way = None;
                    return Some(out);
                }
            }
        }
        None
    }

    /// Marks `addr` dirty if present. Returns true if it was present.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let block = self.block_of(addr);
        let set = self.set_of(block);
        for way in self.sets[set].iter_mut().flatten() {
            if way.block == block {
                way.dirty = true;
                return true;
            }
        }
        false
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }

    /// Serializes the array's dynamic state (lines, LRU tick, counters).
    /// Geometry is configuration and travels as code.
    pub fn state_to_json(&self) -> Json {
        let line = |l: &Line| {
            Json::obj([
                ("block", Json::hex_u64(l.block)),
                ("dirty", Json::from(l.dirty)),
                ("last_used", Json::from(l.last_used)),
            ])
        };
        Json::obj([
            (
                "sets",
                Json::Arr(
                    self.sets
                        .iter()
                        .map(|set| {
                            Json::Arr(
                                set.iter()
                                    .map(|way| way.as_ref().map_or(Json::Null, line))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            ("tick", Json::from(self.tick)),
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
        ])
    }

    /// Restores dynamic state onto a freshly constructed array.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the document is malformed or its geometry
    /// (set count, ways per set) disagrees with this array's configuration.
    pub fn load_state(&mut self, doc: &Json) -> Result<(), JsonError> {
        let sets = doc.req_array("sets")?;
        if sets.len() != self.sets.len() {
            return Err(JsonError::state(format!(
                "checkpoint has {} cache sets but the array is configured with {}",
                sets.len(),
                self.sets.len()
            )));
        }
        for (set, ways) in self.sets.iter_mut().zip(sets) {
            let ways = ways
                .as_array()
                .ok_or_else(|| JsonError::state("cache set is not an array of ways"))?;
            if ways.len() != set.len() {
                return Err(JsonError::state(format!(
                    "checkpoint set has {} ways but the array is configured with {}",
                    ways.len(),
                    set.len()
                )));
            }
            for (way, doc) in set.iter_mut().zip(ways) {
                *way = match doc {
                    Json::Null => None,
                    doc => Some(Line {
                        block: doc.req_hex_u64("block")?,
                        dirty: doc.req_bool("dirty")?,
                        last_used: doc.req_u64("last_used")?,
                    }),
                };
            }
        }
        self.tick = doc.req_u64("tick")?;
        self.hits = doc.req_u64("hits")?;
        self.misses = doc.req_u64("misses")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = CacheArray::new(1024, 4, 64);
        assert!(!c.access(Addr::new(0x100), false));
        c.insert(Addr::new(0x100), false);
        assert!(c.access(Addr::new(0x100), false));
        assert!(c.probe(Addr::new(0x13f)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_picks_least_recently_used() {
        // 4 blocks capacity, 2 ways, 64B blocks -> 2 sets.
        let mut c = CacheArray::new(256, 2, 64);
        // All these map to set 0: blocks 0, 2, 4 (even block indices).
        c.insert(Addr::new(0), false);
        c.insert(Addr::new(128), false);
        // Touch block 0 so block 2 (addr 128) becomes LRU.
        assert!(c.access(Addr::new(0), false));
        let evicted = c.insert(Addr::new(256), false).expect("must evict");
        assert_eq!(evicted.addr, Addr::new(128));
        assert!(!evicted.dirty);
        assert!(c.probe(Addr::new(0)));
        assert!(!c.probe(Addr::new(128)));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = CacheArray::new(128, 1, 64);
        c.insert(Addr::new(0), false);
        assert!(c.access(Addr::new(0), true)); // dirty it
        let evicted = c.insert(Addr::new(128), false).expect("conflict evicts");
        assert!(evicted.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = CacheArray::new(1024, 4, 64);
        c.insert(Addr::new(0x40), true);
        let removed = c.invalidate(Addr::new(0x40)).expect("present");
        assert!(removed.dirty);
        assert!(!c.probe(Addr::new(0x40)));
        assert!(c.invalidate(Addr::new(0x40)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn insert_existing_does_not_evict() {
        let mut c = CacheArray::new(128, 1, 64);
        c.insert(Addr::new(0), false);
        assert!(c.insert(Addr::new(0), true).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn mark_dirty_only_when_present() {
        let mut c = CacheArray::new(1024, 4, 64);
        assert!(!c.mark_dirty(Addr::new(0)));
        c.insert(Addr::new(0), false);
        assert!(c.mark_dirty(Addr::new(0)));
        let e = c.invalidate(Addr::new(0)).unwrap();
        assert!(e.dirty);
    }

    #[test]
    fn geometry_accessors() {
        let c = CacheArray::new(16 * 1024, 4, 64);
        assert_eq!(c.ways(), 4);
        assert_eq!(c.sets(), 64);
    }
}
