//! System configuration corresponding to Table 4.1 of the paper, plus the
//! evaluated scheme configurations of Section 5.1.

use crate::addr::{AddressMap, DramAddressMap};
use crate::error::ConfigError;
use crate::json::Json;
use std::fmt;

/// Which main-memory substrate the system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryMode {
    /// Conventional DDR DRAM attached to 4 memory controllers (the `DRAM`
    /// baseline configuration).
    DdrBaseline,
    /// A memory network of HMCs in a dragonfly topology (`HMC`, `ART` and the
    /// `ARF` configurations).
    HmcNetwork,
}

/// The Active-Routing offloading scheme (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadScheme {
    /// No offloading: all work executes on the host (DRAM and HMC baselines).
    None,
    /// Active-Routing-Tree: a single tree per flow rooted at a static port.
    Art,
    /// Active-Routing-Forest interleaved by thread id across the 4 ports.
    ArfTid,
    /// Active-Routing-Forest interleaved by operand address (nearest port).
    ArfAddr,
    /// ARF-tid with the dynamic-offloading runtime knob of Section 5.4:
    /// phases with good locality run on the host, others are offloaded.
    ArfTidAdaptive,
}

impl OffloadScheme {
    /// Returns true if the scheme offloads Update/Gather to the memory network.
    pub fn offloads(self) -> bool {
        !matches!(self, OffloadScheme::None)
    }
}

impl fmt::Display for OffloadScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OffloadScheme::None => "none",
            OffloadScheme::Art => "ART",
            OffloadScheme::ArfTid => "ARF-tid",
            OffloadScheme::ArfAddr => "ARF-addr",
            OffloadScheme::ArfTidAdaptive => "ARF-tid-adaptive",
        };
        f.write_str(s)
    }
}

/// The six named configurations evaluated in Chapter 5: the five plotted in
/// Figs. 5.1–5.7 ([`NamedConfig::ALL`]) plus the dynamic-offloading variant
/// of the Section 5.4 case study ([`NamedConfig::ALL_WITH_ADAPTIVE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedConfig {
    /// DDR baseline, everything on the host.
    Dram,
    /// HMC memory network, everything on the host.
    Hmc,
    /// HMC network + Active-Routing through a single static port.
    Art,
    /// HMC network + Active-Routing-Forest by thread id.
    ArfTid,
    /// HMC network + Active-Routing-Forest by operand address.
    ArfAddr,
    /// HMC network + ARF-tid with dynamic offloading (Section 5.4).
    ArfTidAdaptive,
}

impl NamedConfig {
    /// The five configurations plotted in Figs. 5.1 and 5.5-5.7. The
    /// adaptive variant is deliberately absent here (the paper only evaluates
    /// it in the Fig. 5.8 case study); use
    /// [`NamedConfig::ALL_WITH_ADAPTIVE`] to cover every variant.
    pub const ALL: [NamedConfig; 5] = [
        NamedConfig::Dram,
        NamedConfig::Hmc,
        NamedConfig::Art,
        NamedConfig::ArfTid,
        NamedConfig::ArfAddr,
    ];

    /// Every named configuration, including `ARF-tid-adaptive` (Section 5.4).
    pub const ALL_WITH_ADAPTIVE: [NamedConfig; 6] = [
        NamedConfig::Dram,
        NamedConfig::Hmc,
        NamedConfig::Art,
        NamedConfig::ArfTid,
        NamedConfig::ArfAddr,
        NamedConfig::ArfTidAdaptive,
    ];

    /// The memory mode of this configuration.
    pub fn memory_mode(self) -> MemoryMode {
        match self {
            NamedConfig::Dram => MemoryMode::DdrBaseline,
            _ => MemoryMode::HmcNetwork,
        }
    }

    /// Parses a configuration display name (as produced by
    /// [`fmt::Display`], case-insensitively): `"DRAM"`, `"HMC"`, `"ART"`,
    /// `"ARF-tid"`, `"ARF-addr"`, `"ARF-tid-adaptive"`.
    pub fn parse(name: &str) -> Option<Self> {
        NamedConfig::ALL_WITH_ADAPTIVE
            .into_iter()
            .find(|c| c.to_string().eq_ignore_ascii_case(name))
    }

    /// The offload scheme of this configuration.
    pub fn scheme(self) -> OffloadScheme {
        match self {
            NamedConfig::Dram | NamedConfig::Hmc => OffloadScheme::None,
            NamedConfig::Art => OffloadScheme::Art,
            NamedConfig::ArfTid => OffloadScheme::ArfTid,
            NamedConfig::ArfAddr => OffloadScheme::ArfAddr,
            NamedConfig::ArfTidAdaptive => OffloadScheme::ArfTidAdaptive,
        }
    }
}

impl fmt::Display for NamedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NamedConfig::Dram => "DRAM",
            NamedConfig::Hmc => "HMC",
            NamedConfig::Art => "ART",
            NamedConfig::ArfTid => "ARF-tid",
            NamedConfig::ArfAddr => "ARF-addr",
            NamedConfig::ArfTidAdaptive => "ARF-tid-adaptive",
        };
        f.write_str(s)
    }
}

/// Host core parameters ("CPU Core" row of Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Number of out-of-order cores.
    pub count: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Issue/commit width in instructions per core cycle.
    pub issue_width: u32,
    /// Reorder buffer capacity (limits in-flight instructions).
    pub rob_entries: usize,
    /// Maximum outstanding memory requests per core (MSHR-like limit).
    pub max_outstanding_mem: usize,
    /// Depth of the Message Interface queue for offload packets.
    pub mi_queue_depth: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            count: 16,
            clock_ghz: 2.0,
            issue_width: 8,
            rob_entries: 64,
            max_outstanding_mem: 16,
            mi_queue_depth: 16,
        }
    }
}

/// Cache hierarchy parameters ("L1I/DCache" and "L2Cache" rows of Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Private L1 data cache size in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in core cycles.
    pub l1_hit_latency: u64,
    /// Shared S-NUCA L2 size in bytes (total across banks).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 bank access latency in core cycles (excluding NoC hops).
    pub l2_hit_latency: u64,
    /// Number of L2 banks (one per mesh tile).
    pub l2_banks: usize,
    /// MSHRs per core for outstanding L1 misses.
    pub mshrs: usize,
    /// Cache block size in bytes.
    pub block_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l1_hit_latency: 2,
            l2_bytes: 16 * 1024 * 1024,
            l2_ways: 16,
            l2_hit_latency: 14,
            l2_banks: 16,
            mshrs: 16,
            block_bytes: 64,
        }
    }
}

/// On-chip network parameters ("NoC" row of Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Mesh width (4 for a 4x4 mesh).
    pub mesh_width: usize,
    /// Per-hop latency in core cycles (router + link).
    pub hop_latency: u64,
    /// Link bandwidth in bytes per core cycle.
    pub link_bytes_per_cycle: u32,
    /// Number of memory controllers placed at the mesh corners.
    pub memory_controllers: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig { mesh_width: 4, hop_latency: 3, link_bytes_per_cycle: 32, memory_controllers: 4 }
    }
}

/// DDR DRAM baseline parameters ("Memory / DRAM Baseline" row of Table 4.1).
/// Timing values are in memory-bus cycles at 800 MHz (DDR-1600-like), matching
/// the tRCD=14 / tRAS=34 / tRP=14 / tCL=14 / tBL=4 values in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of memory controllers / channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-to-column delay.
    pub t_rcd: u64,
    /// Row-access strobe (activate to precharge).
    pub t_ras: u64,
    /// Row precharge time.
    pub t_rp: u64,
    /// CAS latency.
    pub t_cl: u64,
    /// Burst length in bus cycles.
    pub t_bl: u64,
    /// Rank-to-rank switching delay.
    pub t_rr: u64,
    /// Memory bus clock in GHz.
    pub bus_ghz: f64,
    /// Per-channel request queue depth.
    pub queue_depth: usize,
    /// Total capacity in GiB (for reporting only).
    pub capacity_gib: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 4,
            ranks_per_channel: 4,
            banks_per_rank: 64,
            t_rcd: 14,
            t_ras: 34,
            t_rp: 14,
            t_cl: 14,
            t_bl: 4,
            t_rr: 1,
            bus_ghz: 0.8,
            queue_depth: 32,
            capacity_gib: 64,
        }
    }
}

impl DramConfig {
    /// Address map implied by this configuration.
    pub fn address_map(&self) -> DramAddressMap {
        DramAddressMap::new(self.channels, self.ranks_per_channel, self.banks_per_rank)
    }
}

/// HMC cube parameters ("HMC" row of Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct HmcConfig {
    /// Capacity per cube in GiB (for reporting only).
    pub capacity_gib: usize,
    /// Number of stacked DRAM layers.
    pub layers: usize,
    /// Vaults per cube.
    pub vaults: usize,
    /// Banks per vault.
    pub banks_per_vault: usize,
    /// Vault DRAM access latency (activate+read) in network cycles.
    pub vault_access_latency: u64,
    /// Additional latency when the access conflicts with a busy bank.
    pub bank_busy_penalty: u64,
    /// Vault controller queue depth.
    pub vault_queue_depth: usize,
    /// Cycles a bank stays busy after serving an access.
    pub bank_occupancy: u64,
    /// Intra-cube crossbar traversal latency in network cycles.
    pub crossbar_latency: u64,
}

impl Default for HmcConfig {
    fn default() -> Self {
        HmcConfig {
            capacity_gib: 4,
            layers: 4,
            vaults: 32,
            banks_per_vault: 8,
            vault_access_latency: 22,
            bank_busy_penalty: 8,
            vault_queue_depth: 16,
            bank_occupancy: 11,
            crossbar_latency: 2,
        }
    }
}

/// Memory-network parameters ("HMC-Net" row of Table 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Number of memory cubes.
    pub cubes: usize,
    /// Number of host access ports (HMC controllers).
    pub host_ports: usize,
    /// Number of dragonfly groups.
    pub groups: usize,
    /// Link width in lanes.
    pub lanes: usize,
    /// Per-lane signalling rate in Gbps.
    pub gbps_per_lane: f64,
    /// Network (switch) clock in GHz.
    pub clock_ghz: f64,
    /// Per-hop router latency in network cycles.
    pub hop_latency: u64,
    /// Number of virtual channels per physical link.
    pub virtual_channels: usize,
    /// Input buffer depth per VC, in packets.
    pub vc_buffer_packets: usize,
    /// Link bandwidth in bytes per network cycle, derived from lanes * rate.
    pub link_bytes_per_cycle: u32,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        // 16 lanes * 12.5 Gbps = 200 Gbps = 25 GB/s per direction; at 1 GHz
        // that is 25 bytes per network cycle (we round to 24 = 1.5 flits).
        NetworkConfig {
            cubes: 16,
            host_ports: 4,
            groups: 4,
            lanes: 16,
            gbps_per_lane: 12.5,
            clock_ghz: 1.0,
            hop_latency: 3,
            virtual_channels: 2,
            vc_buffer_packets: 8,
            link_bytes_per_cycle: 24,
        }
    }
}

/// Active-Routing Engine parameters (Section 3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct AreConfig {
    /// Maximum number of concurrently tracked flows per cube.
    pub flow_table_entries: usize,
    /// Number of operand buffer entries per cube.
    pub operand_buffers: usize,
    /// Number of ALU operations the ARE can start per network cycle.
    pub alu_issue_per_cycle: u32,
    /// Extra decode latency for active packets, in network cycles.
    pub decode_latency: u64,
    /// Updates-per-flow threshold used by the adaptive scheme
    /// (`CACHE_BLK_SIZE/stride1 + CACHE_BLK_SIZE/stride2` in the paper's case
    /// study); kept as an explicit knob here.
    pub adaptive_threshold: u64,
}

impl Default for AreConfig {
    fn default() -> Self {
        AreConfig {
            flow_table_entries: 64,
            operand_buffers: 128,
            alu_issue_per_cycle: 2,
            decode_latency: 1,
            adaptive_threshold: 16,
        }
    }
}

/// Energy constants used by the power model (Section 4.1): 5 pJ/bit per
/// memory-network hop, 12 pJ/bit per HMC access, 39 pJ/bit per DRAM access.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// Energy per bit per memory-network hop, in picojoules.
    pub pj_per_bit_hop: f64,
    /// Energy per bit of HMC memory access, in picojoules.
    pub pj_per_bit_hmc: f64,
    /// Energy per bit of DDR DRAM access, in picojoules.
    pub pj_per_bit_dram: f64,
    /// Energy per L1 access in picojoules (CACTI-style constant).
    pub pj_per_l1_access: f64,
    /// Energy per L2 access in picojoules (CACTI-style constant).
    pub pj_per_l2_access: f64,
    /// Energy per on-chip NoC hop per bit in picojoules.
    pub pj_per_bit_noc_hop: f64,
    /// Energy per ARE ALU operation in picojoules.
    pub pj_per_are_op: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            pj_per_bit_hop: 5.0,
            pj_per_bit_hmc: 12.0,
            pj_per_bit_dram: 39.0,
            pj_per_l1_access: 20.0,
            pj_per_l2_access: 120.0,
            pj_per_bit_noc_hop: 1.0,
            pj_per_are_op: 15.0,
        }
    }
}

/// Complete system configuration (Table 4.1 plus the scheme under test).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Host core parameters.
    pub cores: CoreConfig,
    /// Cache hierarchy parameters.
    pub caches: CacheConfig,
    /// On-chip network parameters.
    pub noc: NocConfig,
    /// DDR baseline parameters.
    pub dram: DramConfig,
    /// HMC cube parameters.
    pub hmc: HmcConfig,
    /// Memory-network parameters.
    pub network: NetworkConfig,
    /// Active-Routing Engine parameters.
    pub are: AreConfig,
    /// Power/energy constants.
    pub power: PowerConfig,
    /// Main-memory substrate.
    pub memory_mode: MemoryMode,
    /// Offloading scheme.
    pub scheme: OffloadScheme,
    /// Safety limit on simulated network cycles (0 = unlimited).
    pub max_cycles: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper()
    }
}

impl SystemConfig {
    /// The configuration of Table 4.1: 16 O3 cores @ 2 GHz, 16 KB L1, 16 MB
    /// S-NUCA L2, 4x4 mesh, 16-cube dragonfly memory network, HMC memory,
    /// no offloading (the `HMC` baseline).
    pub fn paper() -> Self {
        SystemConfig {
            cores: CoreConfig::default(),
            caches: CacheConfig::default(),
            noc: NocConfig::default(),
            dram: DramConfig::default(),
            hmc: HmcConfig::default(),
            network: NetworkConfig::default(),
            are: AreConfig::default(),
            power: PowerConfig::default(),
            memory_mode: MemoryMode::HmcNetwork,
            scheme: OffloadScheme::None,
            max_cycles: 200_000_000,
        }
    }

    /// A scaled-down configuration for fast unit tests: 4 cores, 4 cubes in a
    /// single group, smaller caches. The architecture is identical.
    pub fn small() -> Self {
        let mut cfg = SystemConfig::paper();
        cfg.cores.count = 4;
        cfg.caches.l2_bytes = 1024 * 1024;
        cfg.caches.l2_banks = 4;
        cfg.noc.mesh_width = 2;
        cfg.network.cubes = 4;
        cfg.network.groups = 2;
        cfg.network.host_ports = 2;
        cfg.dram.channels = 2;
        cfg.max_cycles = 20_000_000;
        cfg
    }

    /// The weak-scaling configuration: a 10x machine over the paper's
    /// (Table 4.1) design point — 160 cores on a 13x13 mesh driving a
    /// 160-cube dragonfly of 10 groups (16 cubes per group, all-to-all
    /// intra-group, 8 host access ports). The per-component architecture
    /// (cores, caches, HMC internals, ARE) is identical to
    /// [`SystemConfig::paper`]; only the machine is wider, which is what the
    /// `kernel_weak_scaling` bench group measures in-flight footprint and
    /// wall clock against.
    pub fn scaled() -> Self {
        let mut cfg = SystemConfig::paper();
        cfg.cores.count = 160;
        cfg.noc.mesh_width = 13;
        cfg.network.cubes = 160;
        cfg.network.groups = 10;
        cfg.network.host_ports = 8;
        cfg
    }

    /// Returns a copy configured as one of the named evaluation configs.
    #[must_use]
    pub fn named(mut self, named: NamedConfig) -> Self {
        self.memory_mode = named.memory_mode();
        self.scheme = named.scheme();
        self
    }

    /// Returns a copy with the given offloading scheme (implies the HMC
    /// memory network when the scheme offloads).
    #[must_use]
    pub fn with_scheme(mut self, scheme: OffloadScheme) -> Self {
        self.scheme = scheme;
        if scheme.offloads() {
            self.memory_mode = MemoryMode::HmcNetwork;
        }
        self
    }

    /// Returns a copy with the given memory mode.
    #[must_use]
    pub fn with_memory_mode(mut self, mode: MemoryMode) -> Self {
        self.memory_mode = mode;
        self
    }

    /// Address map of the HMC memory network implied by this configuration.
    pub fn address_map(&self) -> AddressMap {
        AddressMap::new(self.network.cubes, self.hmc.vaults, self.hmc.banks_per_vault)
    }

    /// Number of core cycles per network cycle (2 in the paper: 2 GHz cores,
    /// 1 GHz memory-network clock).
    pub fn core_cycles_per_network_cycle(&self) -> u64 {
        (self.cores.clock_ghz / self.network.clock_ghz).round().max(1.0) as u64
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency found,
    /// e.g. zero cores, a mesh too small for the memory controllers, cube
    /// count not divisible by the group count, or an offloading scheme
    /// combined with the DDR baseline.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores.count == 0 {
            return Err(ConfigError::new("core count must be non-zero"));
        }
        if self.cores.rob_entries == 0 || self.cores.issue_width == 0 {
            return Err(ConfigError::new("ROB size and issue width must be non-zero"));
        }
        if self.network.cubes == 0 || self.network.host_ports == 0 {
            return Err(ConfigError::new("memory network needs at least one cube and one port"));
        }
        if !self.network.cubes.is_multiple_of(self.network.groups) {
            return Err(ConfigError::new("cube count must be divisible by dragonfly group count"));
        }
        if self.network.host_ports > self.network.groups {
            return Err(ConfigError::new(
                "at most one host access port per dragonfly group is supported",
            ));
        }
        if self.noc.mesh_width * self.noc.mesh_width < self.cores.count {
            return Err(ConfigError::new("mesh is too small for the configured core count"));
        }
        if self.scheme.offloads() && self.memory_mode == MemoryMode::DdrBaseline {
            return Err(ConfigError::new(
                "Active-Routing offloading requires the HMC memory network",
            ));
        }
        if self.caches.block_bytes != 64 {
            return Err(ConfigError::new("only 64-byte cache blocks are supported"));
        }
        if self.are.operand_buffers == 0 || self.are.flow_table_entries == 0 {
            return Err(ConfigError::new("ARE needs at least one flow entry and operand buffer"));
        }
        Ok(())
    }

    /// Encodes every field of the configuration as a [`Json`] document.
    ///
    /// This is a one-way encoding used for *content addressing*: the
    /// sweep-server result cache includes it (canonically rendered) in each
    /// cache key, so changing any timing parameter, platform dimension or
    /// the cycle limit automatically invalidates the affected entries. There
    /// is deliberately no `from_json` — configurations travel as code, only
    /// their identity travels as data.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "cores",
                Json::obj([
                    ("count", Json::from(self.cores.count)),
                    ("clock_ghz", Json::from(self.cores.clock_ghz)),
                    ("issue_width", Json::from(self.cores.issue_width)),
                    ("rob_entries", Json::from(self.cores.rob_entries)),
                    ("max_outstanding_mem", Json::from(self.cores.max_outstanding_mem)),
                    ("mi_queue_depth", Json::from(self.cores.mi_queue_depth)),
                ]),
            ),
            (
                "caches",
                Json::obj([
                    ("l1_bytes", Json::from(self.caches.l1_bytes)),
                    ("l1_ways", Json::from(self.caches.l1_ways)),
                    ("l1_hit_latency", Json::from(self.caches.l1_hit_latency)),
                    ("l2_bytes", Json::from(self.caches.l2_bytes)),
                    ("l2_ways", Json::from(self.caches.l2_ways)),
                    ("l2_hit_latency", Json::from(self.caches.l2_hit_latency)),
                    ("l2_banks", Json::from(self.caches.l2_banks)),
                    ("mshrs", Json::from(self.caches.mshrs)),
                    ("block_bytes", Json::from(self.caches.block_bytes)),
                ]),
            ),
            (
                "noc",
                Json::obj([
                    ("mesh_width", Json::from(self.noc.mesh_width)),
                    ("hop_latency", Json::from(self.noc.hop_latency)),
                    ("link_bytes_per_cycle", Json::from(self.noc.link_bytes_per_cycle)),
                    ("memory_controllers", Json::from(self.noc.memory_controllers)),
                ]),
            ),
            (
                "dram",
                Json::obj([
                    ("channels", Json::from(self.dram.channels)),
                    ("ranks_per_channel", Json::from(self.dram.ranks_per_channel)),
                    ("banks_per_rank", Json::from(self.dram.banks_per_rank)),
                    ("t_rcd", Json::from(self.dram.t_rcd)),
                    ("t_ras", Json::from(self.dram.t_ras)),
                    ("t_rp", Json::from(self.dram.t_rp)),
                    ("t_cl", Json::from(self.dram.t_cl)),
                    ("t_bl", Json::from(self.dram.t_bl)),
                    ("t_rr", Json::from(self.dram.t_rr)),
                    ("bus_ghz", Json::from(self.dram.bus_ghz)),
                    ("queue_depth", Json::from(self.dram.queue_depth)),
                    ("capacity_gib", Json::from(self.dram.capacity_gib)),
                ]),
            ),
            (
                "hmc",
                Json::obj([
                    ("capacity_gib", Json::from(self.hmc.capacity_gib)),
                    ("layers", Json::from(self.hmc.layers)),
                    ("vaults", Json::from(self.hmc.vaults)),
                    ("banks_per_vault", Json::from(self.hmc.banks_per_vault)),
                    ("vault_access_latency", Json::from(self.hmc.vault_access_latency)),
                    ("bank_busy_penalty", Json::from(self.hmc.bank_busy_penalty)),
                    ("vault_queue_depth", Json::from(self.hmc.vault_queue_depth)),
                    ("bank_occupancy", Json::from(self.hmc.bank_occupancy)),
                    ("crossbar_latency", Json::from(self.hmc.crossbar_latency)),
                ]),
            ),
            (
                "network",
                Json::obj([
                    ("cubes", Json::from(self.network.cubes)),
                    ("host_ports", Json::from(self.network.host_ports)),
                    ("groups", Json::from(self.network.groups)),
                    ("lanes", Json::from(self.network.lanes)),
                    ("gbps_per_lane", Json::from(self.network.gbps_per_lane)),
                    ("clock_ghz", Json::from(self.network.clock_ghz)),
                    ("hop_latency", Json::from(self.network.hop_latency)),
                    ("virtual_channels", Json::from(self.network.virtual_channels)),
                    ("vc_buffer_packets", Json::from(self.network.vc_buffer_packets)),
                    ("link_bytes_per_cycle", Json::from(self.network.link_bytes_per_cycle)),
                ]),
            ),
            (
                "are",
                Json::obj([
                    ("flow_table_entries", Json::from(self.are.flow_table_entries)),
                    ("operand_buffers", Json::from(self.are.operand_buffers)),
                    ("alu_issue_per_cycle", Json::from(self.are.alu_issue_per_cycle)),
                    ("decode_latency", Json::from(self.are.decode_latency)),
                    ("adaptive_threshold", Json::from(self.are.adaptive_threshold)),
                ]),
            ),
            (
                "power",
                Json::obj([
                    ("pj_per_bit_hop", Json::from(self.power.pj_per_bit_hop)),
                    ("pj_per_bit_hmc", Json::from(self.power.pj_per_bit_hmc)),
                    ("pj_per_bit_dram", Json::from(self.power.pj_per_bit_dram)),
                    ("pj_per_l1_access", Json::from(self.power.pj_per_l1_access)),
                    ("pj_per_l2_access", Json::from(self.power.pj_per_l2_access)),
                    ("pj_per_bit_noc_hop", Json::from(self.power.pj_per_bit_noc_hop)),
                    ("pj_per_are_op", Json::from(self.power.pj_per_are_op)),
                ]),
            ),
            (
                "memory_mode",
                Json::from(match self.memory_mode {
                    MemoryMode::DdrBaseline => "ddr_baseline",
                    MemoryMode::HmcNetwork => "hmc_network",
                }),
            ),
            ("scheme", Json::from(self.scheme.to_string())),
            ("max_cycles", Json::from(self.max_cycles)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_4_1() {
        let cfg = SystemConfig::paper();
        assert_eq!(cfg.cores.count, 16);
        assert_eq!(cfg.cores.issue_width, 8);
        assert_eq!(cfg.cores.rob_entries, 64);
        assert_eq!(cfg.caches.l1_bytes, 16 * 1024);
        assert_eq!(cfg.caches.l2_bytes, 16 * 1024 * 1024);
        assert_eq!(cfg.noc.mesh_width, 4);
        assert_eq!(cfg.dram.channels, 4);
        assert_eq!(cfg.dram.t_rcd, 14);
        assert_eq!(cfg.hmc.vaults, 32);
        assert_eq!(cfg.network.cubes, 16);
        assert_eq!(cfg.network.host_ports, 4);
        assert_eq!(cfg.network.lanes, 16);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn small_config_is_valid() {
        assert!(SystemConfig::small().validate().is_ok());
    }

    #[test]
    fn scaled_config_is_a_valid_10x_machine() {
        let cfg = SystemConfig::scaled();
        assert!(cfg.validate().is_ok());
        let paper = SystemConfig::paper();
        assert_eq!(cfg.cores.count, 10 * paper.cores.count);
        assert_eq!(cfg.network.cubes, 10 * paper.network.cubes);
        assert!(cfg.network.cubes.is_multiple_of(cfg.network.groups));
        assert!(cfg.network.host_ports <= cfg.network.groups);
        // The per-component architecture is unchanged.
        assert_eq!(cfg.hmc, paper.hmc);
        assert_eq!(cfg.caches, paper.caches);
        assert_eq!(cfg.are, paper.are);
    }

    #[test]
    fn named_configs_map_to_modes_and_schemes() {
        assert_eq!(NamedConfig::Dram.memory_mode(), MemoryMode::DdrBaseline);
        assert_eq!(NamedConfig::Hmc.scheme(), OffloadScheme::None);
        assert_eq!(NamedConfig::Art.scheme(), OffloadScheme::Art);
        assert_eq!(NamedConfig::ArfTid.memory_mode(), MemoryMode::HmcNetwork);
        let cfg = SystemConfig::paper().named(NamedConfig::ArfAddr);
        assert_eq!(cfg.scheme, OffloadScheme::ArfAddr);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn offload_on_dram_is_rejected() {
        let mut cfg = SystemConfig::paper();
        cfg.memory_mode = MemoryMode::DdrBaseline;
        cfg.scheme = OffloadScheme::ArfTid;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn with_scheme_forces_hmc_network() {
        let cfg = SystemConfig::paper()
            .with_memory_mode(MemoryMode::DdrBaseline)
            .with_scheme(OffloadScheme::Art);
        assert_eq!(cfg.memory_mode, MemoryMode::HmcNetwork);
    }

    #[test]
    fn clock_ratio_is_two() {
        assert_eq!(SystemConfig::paper().core_cycles_per_network_cycle(), 2);
    }

    #[test]
    fn invalid_group_division_rejected() {
        let mut cfg = SystemConfig::paper();
        cfg.network.groups = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn all_with_adaptive_extends_the_plotted_five() {
        assert_eq!(NamedConfig::ALL_WITH_ADAPTIVE[..5], NamedConfig::ALL);
        assert_eq!(NamedConfig::ALL_WITH_ADAPTIVE[5], NamedConfig::ArfTidAdaptive);
        assert!(!NamedConfig::ALL.contains(&NamedConfig::ArfTidAdaptive));
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(OffloadScheme::ArfTid.to_string(), "ARF-tid");
        assert_eq!(NamedConfig::Dram.to_string(), "DRAM");
        assert_eq!(NamedConfig::ArfTidAdaptive.to_string(), "ARF-tid-adaptive");
    }

    #[test]
    fn config_json_identity_tracks_every_knob() {
        let paper = SystemConfig::paper().to_json();
        // Distinct configurations get distinct content addresses...
        assert_ne!(paper.content_hash(), SystemConfig::small().to_json().content_hash());
        let mut tweaked = SystemConfig::paper();
        tweaked.hmc.vault_access_latency += 1;
        assert_ne!(paper.content_hash(), tweaked.to_json().content_hash());
        let mut limited = SystemConfig::paper();
        limited.max_cycles /= 2;
        assert_ne!(paper.content_hash(), limited.to_json().content_hash());
        // ...while an identical clone hashes identically.
        assert_eq!(paper.content_hash(), SystemConfig::paper().to_json().content_hash());
        // Spot-check the encoding itself.
        assert_eq!(
            paper.get("cores").and_then(|c| c.get("count")).and_then(Json::as_u64),
            Some(16)
        );
        assert_eq!(paper.get("scheme").and_then(Json::as_str), Some("none"));
    }
}
