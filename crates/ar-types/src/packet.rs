//! Packet formats exchanged over the memory network.
//!
//! The HMC link protocol is packetised; this module models both the normal
//! memory request/response packets and the *active* packets introduced by
//! Active-Routing (Update, operand request/response, Gather request/response,
//! see Fig. 3.4 of the paper). Packet sizes are tracked in bytes so that the
//! traffic counters (Fig. 5.4) and the energy model (Figs. 5.5-5.7) can charge
//! pJ/bit costs per traversed hop.

use crate::addr::Addr;
use crate::ids::{CubeId, FlowId, NetNode, PortId, ThreadId};
use crate::op::ReduceOp;
use crate::Cycle;

/// Size in bytes of a packet header (request/response overhead in the HMC
/// link protocol).
pub const HEADER_BYTES: u32 = 16;
/// Size in bytes of a full cache-block data payload.
pub const DATA_BYTES: u32 = 64;
/// Size in bytes of a single scalar operand payload.
pub const OPERAND_BYTES: u32 = 8;

/// Identifier of an operand buffer entry inside a particular cube's ARE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandSlot {
    /// The cube whose ARE owns the operand buffer.
    pub cube: CubeId,
    /// Index of the entry within that ARE's operand buffer pool.
    pub index: usize,
}

/// Payload of an active (Active-Routing) packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActiveKind {
    /// An offloaded `Update(src1, src2, target, op)` command travelling from
    /// the host access port towards the cube where it will be computed,
    /// registering ARTree state at every cube it traverses.
    Update {
        /// Flow this update belongs to.
        flow: FlowId,
        /// Operation to perform.
        op: ReduceOp,
        /// First source operand address.
        src1: Addr,
        /// Optional second source operand address.
        src2: Option<Addr>,
        /// Optional immediate value (for `const_assign`).
        imm: Option<f64>,
        /// The cube where the update will be computed: the cube of the single
        /// operand, or the split point (last common cube of both operand
        /// routes) for two-operand operations.
        compute_cube: CubeId,
        /// Issuing thread.
        thread: ThreadId,
        /// Unique id of the update operation (for latency tracking).
        update_id: u64,
        /// Core cycle at which the MI injected the update.
        issued_at: Cycle,
    },
    /// A request from an ARE to a vault (possibly in a remote cube) for one
    /// source operand of a pending update.
    OperandReq {
        /// Flow the parent update belongs to.
        flow: FlowId,
        /// Operand buffer entry that is waiting for this operand
        /// (`None` when the single-operand bypass is used).
        slot: Option<OperandSlot>,
        /// Address of the operand.
        addr: Addr,
        /// Which operand of the update this is (0 or 1).
        which: u8,
        /// Unique id of the update operation.
        update_id: u64,
        /// Operation of the parent update (needed for the bypass path).
        op: ReduceOp,
    },
    /// The vault's reply carrying the operand value back to the requesting ARE.
    OperandResp {
        /// Flow the parent update belongs to.
        flow: FlowId,
        /// Operand buffer entry waiting for this operand.
        slot: Option<OperandSlot>,
        /// Which operand of the update this is (0 or 1).
        which: u8,
        /// The operand value read from memory.
        value: f64,
        /// Unique id of the update operation.
        update_id: u64,
        /// Operation of the parent update.
        op: ReduceOp,
    },
    /// A gather request travelling from the host to the root of an ARTree and
    /// then replicated down the tree to its children.
    GatherReq {
        /// Flow to gather.
        flow: FlowId,
        /// Reduction operation of the flow.
        op: ReduceOp,
        /// Number of gather requests the *root* must receive before starting
        /// the reduction (implicit barrier across threads).
        expected_at_root: u32,
        /// Issuing thread.
        thread: ThreadId,
    },
    /// A gather response travelling upwards along the ARTree carrying the
    /// partial result of the subtree rooted at the sender.
    GatherResp {
        /// Flow being gathered.
        flow: FlowId,
        /// Partial reduction value of the subtree.
        value: f64,
        /// Number of committed updates in the subtree (for sanity checking).
        updates: u64,
    },
}

impl ActiveKind {
    /// Returns the flow this active packet belongs to.
    pub fn flow(&self) -> FlowId {
        match *self {
            ActiveKind::Update { flow, .. }
            | ActiveKind::OperandReq { flow, .. }
            | ActiveKind::OperandResp { flow, .. }
            | ActiveKind::GatherReq { flow, .. }
            | ActiveKind::GatherResp { flow, .. } => flow,
        }
    }

    /// Payload size in bytes (excluding the packet header).
    pub fn payload_bytes(&self) -> u32 {
        match self {
            ActiveKind::Update { src2, .. } => {
                // target + src1 (+ src2) + opcode/immediate
                8 + 8 + if src2.is_some() { 8 } else { 0 } + 8
            }
            ActiveKind::OperandReq { .. } => 8,
            ActiveKind::OperandResp { .. } => OPERAND_BYTES,
            ActiveKind::GatherReq { .. } => 8,
            ActiveKind::GatherResp { .. } => OPERAND_BYTES + 8,
        }
    }
}

/// The kind of a memory-network packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketKind {
    /// Normal read request for one cache block.
    ReadReq {
        /// Host-side request id used to match the response.
        req_id: u64,
        /// Block-aligned address.
        addr: Addr,
    },
    /// Normal write request carrying one cache block.
    WriteReq {
        /// Host-side request id.
        req_id: u64,
        /// Block-aligned address.
        addr: Addr,
    },
    /// Read response carrying one cache block.
    ReadResp {
        /// Host-side request id this responds to.
        req_id: u64,
        /// Block-aligned address.
        addr: Addr,
    },
    /// Write acknowledgement.
    WriteAck {
        /// Host-side request id this responds to.
        req_id: u64,
        /// Block-aligned address.
        addr: Addr,
    },
    /// An Active-Routing packet.
    Active(ActiveKind),
}

impl PacketKind {
    /// Returns true if this is an active (Active-Routing) packet.
    pub fn is_active(&self) -> bool {
        matches!(self, PacketKind::Active(_))
    }

    /// Returns true if this packet is a response travelling back towards the
    /// host or a parent node (used for virtual-channel selection to avoid
    /// request/response protocol deadlock).
    pub fn is_response(&self) -> bool {
        matches!(
            self,
            PacketKind::ReadResp { .. }
                | PacketKind::WriteAck { .. }
                | PacketKind::Active(ActiveKind::OperandResp { .. })
                | PacketKind::Active(ActiveKind::GatherResp { .. })
        )
    }

    /// Total packet size in bytes, header included.
    pub fn size_bytes(&self) -> u32 {
        match self {
            PacketKind::ReadReq { .. } => HEADER_BYTES,
            PacketKind::WriteReq { .. } => HEADER_BYTES + DATA_BYTES,
            PacketKind::ReadResp { .. } => HEADER_BYTES + DATA_BYTES,
            PacketKind::WriteAck { .. } => HEADER_BYTES,
            PacketKind::Active(a) => HEADER_BYTES + a.payload_bytes(),
        }
    }
}

/// A packet in flight in the memory network.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Globally unique packet id.
    pub id: u64,
    /// Origin node.
    pub src: NetNode,
    /// Destination node.
    pub dst: NetNode,
    /// Payload description.
    pub kind: PacketKind,
    /// Network cycle at which the packet was injected at `src`.
    pub injected_at: Cycle,
    /// Number of network links traversed so far (updated by the routers).
    pub hops: u32,
}

impl Packet {
    /// Creates a new packet. `hops` starts at zero.
    pub fn new(id: u64, src: NetNode, dst: NetNode, kind: PacketKind, injected_at: Cycle) -> Self {
        Packet { id, src, dst, kind, injected_at, hops: 0 }
    }

    /// Total size of the packet in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.kind.size_bytes()
    }

    /// Number of 16-byte flits the packet occupies on a link.
    pub fn flits(&self) -> u32 {
        self.size_bytes().div_ceil(16).max(1)
    }

    /// Convenience constructor for a packet issued by a host port.
    pub fn from_host(id: u64, port: PortId, dst: CubeId, kind: PacketKind, now: Cycle) -> Self {
        Packet::new(id, NetNode::Host(port), NetNode::Cube(dst), kind, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowId {
        FlowId::new(0x4000, PortId::new(1))
    }

    #[test]
    fn read_response_is_larger_than_request() {
        let req = PacketKind::ReadReq { req_id: 1, addr: Addr::new(0) };
        let resp = PacketKind::ReadResp { req_id: 1, addr: Addr::new(0) };
        assert!(resp.size_bytes() > req.size_bytes());
        assert_eq!(resp.size_bytes(), HEADER_BYTES + DATA_BYTES);
    }

    #[test]
    fn active_packets_report_their_flow() {
        let k = ActiveKind::GatherReq {
            flow: flow(),
            op: ReduceOp::Sum,
            expected_at_root: 16,
            thread: ThreadId::new(0),
        };
        assert_eq!(k.flow(), flow());
        assert!(PacketKind::Active(k).is_active());
    }

    #[test]
    fn two_operand_update_is_larger_than_single() {
        let single = ActiveKind::Update {
            flow: flow(),
            op: ReduceOp::Sum,
            src1: Addr::new(64),
            src2: None,
            imm: None,
            compute_cube: CubeId::new(0),
            thread: ThreadId::new(0),
            update_id: 0,
            issued_at: 0,
        };
        let double = ActiveKind::Update {
            flow: flow(),
            op: ReduceOp::Mac,
            src1: Addr::new(64),
            src2: Some(Addr::new(128)),
            imm: None,
            compute_cube: CubeId::new(0),
            thread: ThreadId::new(0),
            update_id: 1,
            issued_at: 0,
        };
        assert!(double.payload_bytes() > single.payload_bytes());
    }

    #[test]
    fn response_classification_for_vc_selection() {
        assert!(PacketKind::ReadResp { req_id: 0, addr: Addr::new(0) }.is_response());
        assert!(!PacketKind::ReadReq { req_id: 0, addr: Addr::new(0) }.is_response());
        let gr =
            PacketKind::Active(ActiveKind::GatherResp { flow: flow(), value: 0.0, updates: 0 });
        assert!(gr.is_response());
    }

    #[test]
    fn flit_count_rounds_up() {
        let p = Packet::from_host(
            0,
            PortId::new(0),
            CubeId::new(3),
            PacketKind::ReadResp { req_id: 0, addr: Addr::new(0) },
            0,
        );
        assert_eq!(p.size_bytes(), 80);
        assert_eq!(p.flits(), 5);
        assert_eq!(p.hops, 0);
    }
}
