//! Packet formats exchanged over the memory network.
//!
//! The HMC link protocol is packetised; this module models both the normal
//! memory request/response packets and the *active* packets introduced by
//! Active-Routing (Update, operand request/response, Gather request/response,
//! see Fig. 3.4 of the paper). Packet sizes are tracked in bytes so that the
//! traffic counters (Fig. 5.4) and the energy model (Figs. 5.5-5.7) can charge
//! pJ/bit costs per traversed hop.

use crate::addr::Addr;
use crate::ids::{CubeId, FlowId, NetNode, PortId, ThreadId};
use crate::json::{Json, JsonError};
use crate::op::ReduceOp;
use crate::Cycle;

/// Size in bytes of a packet header (request/response overhead in the HMC
/// link protocol).
pub const HEADER_BYTES: u32 = 16;
/// Size in bytes of a full cache-block data payload.
pub const DATA_BYTES: u32 = 64;
/// Size in bytes of a single scalar operand payload.
pub const OPERAND_BYTES: u32 = 8;

/// Identifier of an operand buffer entry inside a particular cube's ARE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandSlot {
    /// The cube whose ARE owns the operand buffer.
    pub cube: CubeId,
    /// Index of the entry within that ARE's operand buffer pool.
    pub index: usize,
}

/// Payload of an active (Active-Routing) packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActiveKind {
    /// An offloaded `Update(src1, src2, target, op)` command travelling from
    /// the host access port towards the cube where it will be computed,
    /// registering ARTree state at every cube it traverses.
    Update {
        /// Flow this update belongs to.
        flow: FlowId,
        /// Operation to perform.
        op: ReduceOp,
        /// First source operand address.
        src1: Addr,
        /// Optional second source operand address.
        src2: Option<Addr>,
        /// Optional immediate value (for `const_assign`).
        imm: Option<f64>,
        /// The cube where the update will be computed: the cube of the single
        /// operand, or the split point (last common cube of both operand
        /// routes) for two-operand operations.
        compute_cube: CubeId,
        /// Issuing thread.
        thread: ThreadId,
        /// Unique id of the update operation (for latency tracking).
        update_id: u64,
        /// Core cycle at which the MI injected the update.
        issued_at: Cycle,
    },
    /// A request from an ARE to a vault (possibly in a remote cube) for one
    /// source operand of a pending update.
    OperandReq {
        /// Flow the parent update belongs to.
        flow: FlowId,
        /// Operand buffer entry that is waiting for this operand
        /// (`None` when the single-operand bypass is used).
        slot: Option<OperandSlot>,
        /// Address of the operand.
        addr: Addr,
        /// Which operand of the update this is (0 or 1).
        which: u8,
        /// Unique id of the update operation.
        update_id: u64,
        /// Operation of the parent update (needed for the bypass path).
        op: ReduceOp,
    },
    /// The vault's reply carrying the operand value back to the requesting ARE.
    OperandResp {
        /// Flow the parent update belongs to.
        flow: FlowId,
        /// Operand buffer entry waiting for this operand.
        slot: Option<OperandSlot>,
        /// Which operand of the update this is (0 or 1).
        which: u8,
        /// The operand value read from memory.
        value: f64,
        /// Unique id of the update operation.
        update_id: u64,
        /// Operation of the parent update.
        op: ReduceOp,
    },
    /// A gather request travelling from the host to the root of an ARTree and
    /// then replicated down the tree to its children.
    GatherReq {
        /// Flow to gather.
        flow: FlowId,
        /// Reduction operation of the flow.
        op: ReduceOp,
        /// Number of gather requests the *root* must receive before starting
        /// the reduction (implicit barrier across threads).
        expected_at_root: u32,
        /// Issuing thread.
        thread: ThreadId,
    },
    /// A gather response travelling upwards along the ARTree carrying the
    /// partial result of the subtree rooted at the sender.
    GatherResp {
        /// Flow being gathered.
        flow: FlowId,
        /// Partial reduction value of the subtree.
        value: f64,
        /// Number of committed updates in the subtree (for sanity checking).
        updates: u64,
    },
}

impl ActiveKind {
    /// Returns the flow this active packet belongs to.
    pub fn flow(&self) -> FlowId {
        match *self {
            ActiveKind::Update { flow, .. }
            | ActiveKind::OperandReq { flow, .. }
            | ActiveKind::OperandResp { flow, .. }
            | ActiveKind::GatherReq { flow, .. }
            | ActiveKind::GatherResp { flow, .. } => flow,
        }
    }

    /// Payload size in bytes (excluding the packet header).
    pub fn payload_bytes(&self) -> u32 {
        match self {
            ActiveKind::Update { src2, .. } => {
                // target + src1 (+ src2) + opcode/immediate
                8 + 8 + if src2.is_some() { 8 } else { 0 } + 8
            }
            ActiveKind::OperandReq { .. } => 8,
            ActiveKind::OperandResp { .. } => OPERAND_BYTES,
            ActiveKind::GatherReq { .. } => 8,
            ActiveKind::GatherResp { .. } => OPERAND_BYTES + 8,
        }
    }
}

fn opt_addr_to_json(addr: Option<Addr>) -> Json {
    addr.map_or(Json::Null, |a| Json::hex_u64(a.as_u64()))
}

fn opt_addr_from_json(doc: &Json, key: &str) -> Result<Option<Addr>, JsonError> {
    match doc.req(key)? {
        Json::Null => Ok(None),
        _ => Ok(Some(Addr::new(doc.req_hex_u64(key)?))),
    }
}

fn op_from_json(doc: &Json, key: &str) -> Result<ReduceOp, JsonError> {
    let name = doc.req_str(key)?;
    ReduceOp::from_name(name).ok_or_else(|| JsonError::state(format!("unknown reduce op {name:?}")))
}

fn slot_to_json(slot: Option<OperandSlot>) -> Json {
    slot.map_or(Json::Null, |s| {
        Json::obj([("cube", Json::from(s.cube.index())), ("index", Json::from(s.index))])
    })
}

fn slot_from_json(doc: &Json, key: &str) -> Result<Option<OperandSlot>, JsonError> {
    match doc.req(key)? {
        Json::Null => Ok(None),
        s => Ok(Some(OperandSlot {
            cube: CubeId::new(s.req_usize("cube")?),
            index: s.req_usize("index")?,
        })),
    }
}

impl ActiveKind {
    /// Encodes the payload for checkpointed state.
    pub fn state_to_json(&self) -> Json {
        match *self {
            ActiveKind::Update {
                flow,
                op,
                src1,
                src2,
                imm,
                compute_cube,
                thread,
                update_id,
                issued_at,
            } => Json::obj([
                ("t", Json::from("update")),
                ("flow", flow.state_to_json()),
                ("op", Json::from(op.to_string())),
                ("src1", Json::hex_u64(src1.as_u64())),
                ("src2", opt_addr_to_json(src2)),
                ("imm", imm.map_or(Json::Null, Json::hex_f64)),
                ("compute_cube", Json::from(compute_cube.index())),
                ("thread", Json::from(thread.index())),
                ("update_id", Json::hex_u64(update_id)),
                ("issued_at", Json::from(issued_at)),
            ]),
            ActiveKind::OperandReq { flow, slot, addr, which, update_id, op } => Json::obj([
                ("t", Json::from("operand_req")),
                ("flow", flow.state_to_json()),
                ("slot", slot_to_json(slot)),
                ("addr", Json::hex_u64(addr.as_u64())),
                ("which", Json::from(u32::from(which))),
                ("update_id", Json::hex_u64(update_id)),
                ("op", Json::from(op.to_string())),
            ]),
            ActiveKind::OperandResp { flow, slot, which, value, update_id, op } => Json::obj([
                ("t", Json::from("operand_resp")),
                ("flow", flow.state_to_json()),
                ("slot", slot_to_json(slot)),
                ("which", Json::from(u32::from(which))),
                ("value", Json::hex_f64(value)),
                ("update_id", Json::hex_u64(update_id)),
                ("op", Json::from(op.to_string())),
            ]),
            ActiveKind::GatherReq { flow, op, expected_at_root, thread } => Json::obj([
                ("t", Json::from("gather_req")),
                ("flow", flow.state_to_json()),
                ("op", Json::from(op.to_string())),
                ("expected_at_root", Json::from(expected_at_root)),
                ("thread", Json::from(thread.index())),
            ]),
            ActiveKind::GatherResp { flow, value, updates } => Json::obj([
                ("t", Json::from("gather_resp")),
                ("flow", flow.state_to_json()),
                ("value", Json::hex_f64(value)),
                ("updates", Json::from(updates)),
            ]),
        }
    }

    /// Decodes a payload produced by [`ActiveKind::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on an unknown tag or missing field.
    pub fn state_from_json(doc: &Json) -> Result<ActiveKind, JsonError> {
        let flow = FlowId::state_from_json(doc.req("flow")?)?;
        Ok(match doc.req_str("t")? {
            "update" => ActiveKind::Update {
                flow,
                op: op_from_json(doc, "op")?,
                src1: Addr::new(doc.req_hex_u64("src1")?),
                src2: opt_addr_from_json(doc, "src2")?,
                imm: match doc.req("imm")? {
                    Json::Null => None,
                    _ => Some(doc.req_hex_f64("imm")?),
                },
                compute_cube: CubeId::new(doc.req_usize("compute_cube")?),
                thread: ThreadId::new(doc.req_usize("thread")?),
                update_id: doc.req_hex_u64("update_id")?,
                issued_at: doc.req_u64("issued_at")?,
            },
            "operand_req" => ActiveKind::OperandReq {
                flow,
                slot: slot_from_json(doc, "slot")?,
                addr: Addr::new(doc.req_hex_u64("addr")?),
                which: doc.req_u32("which")? as u8,
                update_id: doc.req_hex_u64("update_id")?,
                op: op_from_json(doc, "op")?,
            },
            "operand_resp" => ActiveKind::OperandResp {
                flow,
                slot: slot_from_json(doc, "slot")?,
                which: doc.req_u32("which")? as u8,
                value: doc.req_hex_f64("value")?,
                update_id: doc.req_hex_u64("update_id")?,
                op: op_from_json(doc, "op")?,
            },
            "gather_req" => ActiveKind::GatherReq {
                flow,
                op: op_from_json(doc, "op")?,
                expected_at_root: doc.req_u32("expected_at_root")?,
                thread: ThreadId::new(doc.req_usize("thread")?),
            },
            "gather_resp" => ActiveKind::GatherResp {
                flow,
                value: doc.req_hex_f64("value")?,
                updates: doc.req_u64("updates")?,
            },
            other => return Err(JsonError::state(format!("unknown active kind {other:?}"))),
        })
    }
}

/// The kind of a memory-network packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketKind {
    /// Normal read request for one cache block.
    ReadReq {
        /// Host-side request id used to match the response.
        req_id: u64,
        /// Block-aligned address.
        addr: Addr,
    },
    /// Normal write request carrying one cache block.
    WriteReq {
        /// Host-side request id.
        req_id: u64,
        /// Block-aligned address.
        addr: Addr,
    },
    /// Read response carrying one cache block.
    ReadResp {
        /// Host-side request id this responds to.
        req_id: u64,
        /// Block-aligned address.
        addr: Addr,
    },
    /// Write acknowledgement.
    WriteAck {
        /// Host-side request id this responds to.
        req_id: u64,
        /// Block-aligned address.
        addr: Addr,
    },
    /// An Active-Routing packet.
    Active(ActiveKind),
}

impl PacketKind {
    /// Returns true if this is an active (Active-Routing) packet.
    pub fn is_active(&self) -> bool {
        matches!(self, PacketKind::Active(_))
    }

    /// Returns true if this packet is a response travelling back towards the
    /// host or a parent node (used for virtual-channel selection to avoid
    /// request/response protocol deadlock).
    pub fn is_response(&self) -> bool {
        matches!(
            self,
            PacketKind::ReadResp { .. }
                | PacketKind::WriteAck { .. }
                | PacketKind::Active(ActiveKind::OperandResp { .. })
                | PacketKind::Active(ActiveKind::GatherResp { .. })
        )
    }

    /// Total packet size in bytes, header included.
    pub fn size_bytes(&self) -> u32 {
        match self {
            PacketKind::ReadReq { .. } => HEADER_BYTES,
            PacketKind::WriteReq { .. } => HEADER_BYTES + DATA_BYTES,
            PacketKind::ReadResp { .. } => HEADER_BYTES + DATA_BYTES,
            PacketKind::WriteAck { .. } => HEADER_BYTES,
            PacketKind::Active(a) => HEADER_BYTES + a.payload_bytes(),
        }
    }

    /// Encodes the kind for checkpointed state.
    pub fn state_to_json(&self) -> Json {
        let plain = |tag: &str, req_id: u64, addr: Addr| {
            Json::obj([
                ("t", Json::from(tag)),
                ("req_id", Json::hex_u64(req_id)),
                ("addr", Json::hex_u64(addr.as_u64())),
            ])
        };
        match *self {
            PacketKind::ReadReq { req_id, addr } => plain("read_req", req_id, addr),
            PacketKind::WriteReq { req_id, addr } => plain("write_req", req_id, addr),
            PacketKind::ReadResp { req_id, addr } => plain("read_resp", req_id, addr),
            PacketKind::WriteAck { req_id, addr } => plain("write_ack", req_id, addr),
            PacketKind::Active(ref a) => {
                Json::obj([("t", Json::from("active")), ("active", a.state_to_json())])
            }
        }
    }

    /// Decodes a kind produced by [`PacketKind::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on an unknown tag or missing field.
    pub fn state_from_json(doc: &Json) -> Result<PacketKind, JsonError> {
        let tag = doc.req_str("t")?;
        if tag == "active" {
            return Ok(PacketKind::Active(ActiveKind::state_from_json(doc.req("active")?)?));
        }
        let req_id = doc.req_hex_u64("req_id")?;
        let addr = Addr::new(doc.req_hex_u64("addr")?);
        Ok(match tag {
            "read_req" => PacketKind::ReadReq { req_id, addr },
            "write_req" => PacketKind::WriteReq { req_id, addr },
            "read_resp" => PacketKind::ReadResp { req_id, addr },
            "write_ack" => PacketKind::WriteAck { req_id, addr },
            other => return Err(JsonError::state(format!("unknown packet kind {other:?}"))),
        })
    }
}

/// A packet in flight in the memory network.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Globally unique packet id.
    pub id: u64,
    /// Origin node.
    pub src: NetNode,
    /// Destination node.
    pub dst: NetNode,
    /// Payload description.
    pub kind: PacketKind,
    /// Network cycle at which the packet was injected at `src`.
    pub injected_at: Cycle,
    /// Number of network links traversed so far (updated by the routers).
    pub hops: u32,
}

impl Packet {
    /// Creates a new packet. `hops` starts at zero.
    pub fn new(id: u64, src: NetNode, dst: NetNode, kind: PacketKind, injected_at: Cycle) -> Self {
        Packet { id, src, dst, kind, injected_at, hops: 0 }
    }

    /// Total size of the packet in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.kind.size_bytes()
    }

    /// Number of 16-byte flits the packet occupies on a link.
    pub fn flits(&self) -> u32 {
        self.size_bytes().div_ceil(16).max(1)
    }

    /// Convenience constructor for a packet issued by a host port.
    pub fn from_host(id: u64, port: PortId, dst: CubeId, kind: PacketKind, now: Cycle) -> Self {
        Packet::new(id, NetNode::Host(port), NetNode::Cube(dst), kind, now)
    }

    /// Encodes the packet for checkpointed state.
    pub fn state_to_json(&self) -> Json {
        Json::obj([
            ("id", Json::hex_u64(self.id)),
            ("src", self.src.state_to_json()),
            ("dst", self.dst.state_to_json()),
            ("kind", self.kind.state_to_json()),
            ("injected_at", Json::from(self.injected_at)),
            ("hops", Json::from(self.hops)),
        ])
    }

    /// Decodes a packet produced by [`Packet::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn state_from_json(doc: &Json) -> Result<Packet, JsonError> {
        Ok(Packet {
            id: doc.req_hex_u64("id")?,
            src: NetNode::state_from_json(doc.req("src")?)?,
            dst: NetNode::state_from_json(doc.req("dst")?)?,
            kind: PacketKind::state_from_json(doc.req("kind")?)?,
            injected_at: doc.req_u64("injected_at")?,
            hops: doc.req_u32("hops")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowId {
        FlowId::new(0x4000, PortId::new(1))
    }

    #[test]
    fn read_response_is_larger_than_request() {
        let req = PacketKind::ReadReq { req_id: 1, addr: Addr::new(0) };
        let resp = PacketKind::ReadResp { req_id: 1, addr: Addr::new(0) };
        assert!(resp.size_bytes() > req.size_bytes());
        assert_eq!(resp.size_bytes(), HEADER_BYTES + DATA_BYTES);
    }

    #[test]
    fn active_packets_report_their_flow() {
        let k = ActiveKind::GatherReq {
            flow: flow(),
            op: ReduceOp::Sum,
            expected_at_root: 16,
            thread: ThreadId::new(0),
        };
        assert_eq!(k.flow(), flow());
        assert!(PacketKind::Active(k).is_active());
    }

    #[test]
    fn two_operand_update_is_larger_than_single() {
        let single = ActiveKind::Update {
            flow: flow(),
            op: ReduceOp::Sum,
            src1: Addr::new(64),
            src2: None,
            imm: None,
            compute_cube: CubeId::new(0),
            thread: ThreadId::new(0),
            update_id: 0,
            issued_at: 0,
        };
        let double = ActiveKind::Update {
            flow: flow(),
            op: ReduceOp::Mac,
            src1: Addr::new(64),
            src2: Some(Addr::new(128)),
            imm: None,
            compute_cube: CubeId::new(0),
            thread: ThreadId::new(0),
            update_id: 1,
            issued_at: 0,
        };
        assert!(double.payload_bytes() > single.payload_bytes());
    }

    #[test]
    fn response_classification_for_vc_selection() {
        assert!(PacketKind::ReadResp { req_id: 0, addr: Addr::new(0) }.is_response());
        assert!(!PacketKind::ReadReq { req_id: 0, addr: Addr::new(0) }.is_response());
        let gr =
            PacketKind::Active(ActiveKind::GatherResp { flow: flow(), value: 0.0, updates: 0 });
        assert!(gr.is_response());
    }

    #[test]
    fn packet_state_json_round_trips_every_kind() {
        let kinds = [
            PacketKind::ReadReq { req_id: (1 << 59) | 5, addr: Addr::new(0x1_0040) },
            PacketKind::WriteReq { req_id: (1 << 58) | 9, addr: Addr::new(0x2_0080) },
            PacketKind::ReadResp { req_id: 3, addr: Addr::new(64) },
            PacketKind::WriteAck { req_id: 4, addr: Addr::new(128) },
            PacketKind::Active(ActiveKind::Update {
                flow: flow(),
                op: ReduceOp::Mac,
                src1: Addr::new(64),
                src2: Some(Addr::new(128)),
                imm: Some(0.1),
                compute_cube: CubeId::new(7),
                thread: ThreadId::new(3),
                update_id: 42,
                issued_at: 1000,
            }),
            PacketKind::Active(ActiveKind::OperandReq {
                flow: flow(),
                slot: Some(OperandSlot { cube: CubeId::new(2), index: 11 }),
                addr: Addr::new(192),
                which: 1,
                update_id: 42,
                op: ReduceOp::Mac,
            }),
            PacketKind::Active(ActiveKind::OperandResp {
                flow: flow(),
                slot: None,
                which: 0,
                value: 1.0 / 3.0,
                update_id: 43,
                op: ReduceOp::Sum,
            }),
            PacketKind::Active(ActiveKind::GatherReq {
                flow: flow(),
                op: ReduceOp::Min,
                expected_at_root: 16,
                thread: ThreadId::new(0),
            }),
            PacketKind::Active(ActiveKind::GatherResp { flow: flow(), value: -0.0, updates: 99 }),
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let mut p = Packet::new(
                (7 << 40) | i as u64,
                NetNode::Host(PortId::new(1)),
                NetNode::Cube(CubeId::new(12)),
                kind,
                777,
            );
            p.hops = 3;
            let doc = crate::json::Json::parse(&p.state_to_json().render()).unwrap();
            let back = Packet::state_from_json(&doc).unwrap();
            assert_eq!(back.kind.size_bytes(), p.kind.size_bytes());
            assert_eq!(back, p, "kind #{i}");
        }
        let bad = crate::json::Json::obj([("t", crate::json::Json::from("teleport"))]);
        assert!(PacketKind::state_from_json(&bad).is_err());
    }

    #[test]
    fn flit_count_rounds_up() {
        let p = Packet::from_host(
            0,
            PortId::new(0),
            CubeId::new(3),
            PacketKind::ReadResp { req_id: 0, addr: Addr::new(0) },
            0,
        );
        assert_eq!(p.size_bytes(), 80);
        assert_eq!(p.flits(), 5);
        assert_eq!(p.hops, 0);
    }
}
