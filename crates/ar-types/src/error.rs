//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Error returned when a [`crate::config::SystemConfig`] is internally
/// inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError { message: message.into() }
    }

    /// The human-readable description of the inconsistency.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// Error returned when a simulation cannot make forward progress (for
/// example, the cycle limit was reached before all threads finished).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationError {
    message: String,
    /// Cycle at which the error was raised.
    pub cycle: u64,
}

impl SimulationError {
    /// Creates a simulation error.
    pub fn new(message: impl Into<String>, cycle: u64) -> Self {
        SimulationError { message: message.into(), cycle }
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error at cycle {}: {}", self.cycle, self.message)
    }
}

impl Error for SimulationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_displays_message() {
        let e = ConfigError::new("zero cores");
        assert!(e.to_string().contains("zero cores"));
        assert_eq!(e.message(), "zero cores");
    }

    #[test]
    fn simulation_error_displays_cycle() {
        let e = SimulationError::new("deadlock", 1234);
        assert!(e.to_string().contains("1234"));
        assert_eq!(e.cycle, 1234);
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error>() {}
        assert_err::<ConfigError>();
        assert_err::<SimulationError>();
    }
}
