//! Reduction / update operations supported by the Active-Routing Engine ALU.
//!
//! These correspond to the `op` argument of the `Update()` programming
//! interface (Section 3.1 of the paper). An update either contributes to a
//! commutative reduction over a flow (`sum += ...`) or performs a simple
//! in-memory write (`mov`, `const_assign`) used by kernels such as PageRank.

use std::fmt;

/// The operation carried by an `Update` packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `target += src1` — single-operand reduction (bypasses the operand buffer).
    Sum,
    /// `target += src1 * src2` — multiply-accumulate over two source operands.
    Mac,
    /// `target += |src1 - src2|` — absolute-difference accumulation (PageRank's
    /// convergence test).
    AbsDiff,
    /// `target = src1` — plain in-memory move, no reduction.
    Mov,
    /// `target = constant` — assign an immediate carried in the packet.
    ConstAssign,
    /// `target = min(target, src1)` — minimum reduction.
    Min,
    /// `target = max(target, src1)` — maximum reduction.
    Max,
    /// `target = target` — no-op, used in tests and as a placeholder.
    Nop,
}

impl ReduceOp {
    /// Number of source memory operands the operation needs to fetch.
    pub const fn operand_count(self) -> usize {
        match self {
            ReduceOp::Sum | ReduceOp::Mov | ReduceOp::Min | ReduceOp::Max => 1,
            ReduceOp::Mac | ReduceOp::AbsDiff => 2,
            ReduceOp::ConstAssign | ReduceOp::Nop => 0,
        }
    }

    /// Returns true if the operation accumulates into a flow result that must
    /// later be gathered (commutative reduction), false if it only writes to
    /// memory (`mov` / `const_assign`) or does nothing.
    pub const fn is_reduction(self) -> bool {
        matches!(
            self,
            ReduceOp::Sum | ReduceOp::Mac | ReduceOp::AbsDiff | ReduceOp::Min | ReduceOp::Max
        )
    }

    /// Returns true if two independently computed partial results of this
    /// operation can be merged with [`ReduceOp::merge`]. Only reductions are
    /// mergeable.
    pub const fn is_commutative(self) -> bool {
        self.is_reduction()
    }

    /// The identity element of the reduction (the initial value of a flow
    /// result register).
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
            _ => 0.0,
        }
    }

    /// Applies the update locally: combines the current accumulator value with
    /// the operand values and returns the new accumulator value.
    ///
    /// `src2` is ignored by single-operand operations. For `Mov` and
    /// `ConstAssign` the "accumulator" is simply replaced.
    pub fn apply(self, acc: f64, src1: f64, src2: f64) -> f64 {
        match self {
            ReduceOp::Sum => acc + src1,
            ReduceOp::Mac => acc + src1 * src2,
            ReduceOp::AbsDiff => acc + (src1 - src2).abs(),
            ReduceOp::Mov | ReduceOp::ConstAssign => src1,
            ReduceOp::Min => acc.min(src1),
            ReduceOp::Max => acc.max(src1),
            ReduceOp::Nop => acc,
        }
    }

    /// Merges two partial reduction results (used when gather responses from
    /// children of the ARTree are combined with the local result).
    ///
    /// # Panics
    ///
    /// Does not panic, but merging a non-commutative operation simply keeps
    /// the left value, which callers should avoid by checking
    /// [`ReduceOp::is_commutative`] first.
    pub fn merge(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum | ReduceOp::Mac | ReduceOp::AbsDiff => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Mov | ReduceOp::ConstAssign | ReduceOp::Nop => a,
        }
    }

    /// Parses the lowercase name produced by the `Display` impl — the inverse
    /// used when decoding checkpointed state.
    pub fn from_name(name: &str) -> Option<ReduceOp> {
        Some(match name {
            "sum" => ReduceOp::Sum,
            "mac" => ReduceOp::Mac,
            "absdiff" => ReduceOp::AbsDiff,
            "mov" => ReduceOp::Mov,
            "const_assign" => ReduceOp::ConstAssign,
            "min" => ReduceOp::Min,
            "max" => ReduceOp::Max,
            "nop" => ReduceOp::Nop,
            _ => return None,
        })
    }

    /// Latency of the operation in ARE ALU cycles (1 GHz network clock).
    pub const fn alu_latency(self) -> u64 {
        match self {
            ReduceOp::Sum | ReduceOp::Min | ReduceOp::Max => 2,
            ReduceOp::Mac | ReduceOp::AbsDiff => 4,
            ReduceOp::Mov | ReduceOp::ConstAssign | ReduceOp::Nop => 1,
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Mac => "mac",
            ReduceOp::AbsDiff => "absdiff",
            ReduceOp::Mov => "mov",
            ReduceOp::ConstAssign => "const_assign",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
            ReduceOp::Nop => "nop",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_counts_match_semantics() {
        assert_eq!(ReduceOp::Sum.operand_count(), 1);
        assert_eq!(ReduceOp::Mac.operand_count(), 2);
        assert_eq!(ReduceOp::AbsDiff.operand_count(), 2);
        assert_eq!(ReduceOp::ConstAssign.operand_count(), 0);
    }

    #[test]
    fn apply_computes_expected_values() {
        assert_eq!(ReduceOp::Sum.apply(1.0, 2.0, 0.0), 3.0);
        assert_eq!(ReduceOp::Mac.apply(1.0, 2.0, 3.0), 7.0);
        assert_eq!(ReduceOp::AbsDiff.apply(0.0, 2.0, 5.0), 3.0);
        assert_eq!(ReduceOp::Mov.apply(9.0, 2.0, 0.0), 2.0);
        assert_eq!(ReduceOp::Min.apply(4.0, 2.0, 0.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(4.0, 7.0, 0.0), 7.0);
        assert_eq!(ReduceOp::Nop.apply(4.0, 7.0, 1.0), 4.0);
    }

    #[test]
    fn merge_is_consistent_with_apply_for_sums() {
        // Splitting a sum across two partial accumulators and merging must give
        // the same answer as accumulating serially.
        let items = [1.0, 2.5, -3.0, 4.25, 10.0, -0.5];
        let serial = items.iter().fold(0.0, |acc, &x| ReduceOp::Sum.apply(acc, x, 0.0));
        let left = items[..3].iter().fold(0.0, |acc, &x| ReduceOp::Sum.apply(acc, x, 0.0));
        let right = items[3..].iter().fold(0.0, |acc, &x| ReduceOp::Sum.apply(acc, x, 0.0));
        assert!((ReduceOp::Sum.merge(left, right) - serial).abs() < 1e-12);
    }

    #[test]
    fn identity_is_neutral_element() {
        for op in [ReduceOp::Sum, ReduceOp::Mac, ReduceOp::Min, ReduceOp::Max] {
            let x = 42.0;
            assert_eq!(op.merge(op.identity(), x), x);
        }
    }

    #[test]
    fn reduction_classification() {
        assert!(ReduceOp::Mac.is_reduction());
        assert!(ReduceOp::Sum.is_commutative());
        assert!(!ReduceOp::Mov.is_reduction());
        assert!(!ReduceOp::ConstAssign.is_commutative());
    }

    #[test]
    fn display_names_are_lowercase() {
        assert_eq!(ReduceOp::Mac.to_string(), "mac");
        assert_eq!(ReduceOp::ConstAssign.to_string(), "const_assign");
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for op in [
            ReduceOp::Sum,
            ReduceOp::Mac,
            ReduceOp::AbsDiff,
            ReduceOp::Mov,
            ReduceOp::ConstAssign,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::Nop,
        ] {
            assert_eq!(ReduceOp::from_name(&op.to_string()), Some(op));
        }
        assert_eq!(ReduceOp::from_name("divide"), None);
    }

    #[test]
    fn alu_latency_positive() {
        for op in [
            ReduceOp::Sum,
            ReduceOp::Mac,
            ReduceOp::AbsDiff,
            ReduceOp::Mov,
            ReduceOp::ConstAssign,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::Nop,
        ] {
            assert!(op.alu_latency() >= 1);
        }
    }
}
