//! Strongly-typed identifiers for the components of the simulated system.
//!
//! Using newtypes instead of bare `usize`s prevents the most common class of
//! wiring bug in a simulator of this size: passing a core index where a cube
//! index is expected.

use crate::json::{Json, JsonError};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(index: usize) -> Self {
                $name(index)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                $name(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a host processor core (0..15 in the paper configuration).
    CoreId,
    "core"
);
id_type!(
    /// Identifier of a software thread. The paper runs one thread per core.
    ThreadId,
    "thread"
);
id_type!(
    /// Identifier of a memory cube (HMC) in the memory network (0..15).
    CubeId,
    "cube"
);
id_type!(
    /// Identifier of a vault within a cube (0..31).
    VaultId,
    "vault"
);
id_type!(
    /// Identifier of a host-side memory-network access port / HMC controller (0..3).
    PortId,
    "port"
);

/// Identifier of an Active-Routing flow.
///
/// A flow is identified by the *target* address of the reduction (the address
/// of the accumulator variable) together with the access port whose tree the
/// flow uses — the same reduction target forms one tree per port under the
/// Active-Routing-Forest schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId {
    /// Target (accumulator) address of the reduction.
    pub target: u64,
    /// Access port whose ARTree this flow belongs to.
    pub port: PortId,
}

impl FlowId {
    /// Creates a flow identifier.
    pub const fn new(target: u64, port: PortId) -> Self {
        FlowId { target, port }
    }
}

impl FlowId {
    /// Encodes the flow id for checkpointed state (target carries tag bits,
    /// so it travels as hex).
    pub fn state_to_json(&self) -> Json {
        Json::obj([("target", Json::hex_u64(self.target)), ("port", Json::from(self.port.index()))])
    }

    /// Decodes a flow id produced by [`FlowId::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn state_from_json(doc: &Json) -> Result<FlowId, JsonError> {
        Ok(FlowId::new(doc.req_hex_u64("target")?, PortId::new(doc.req_usize("port")?)))
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow({:#x}@{})", self.target, self.port)
    }
}

/// A node of the memory network: either a memory cube or one of the host
/// access ports (HMC controllers) attached to the edge of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetNode {
    /// A memory cube.
    Cube(CubeId),
    /// A host access port (HMC controller).
    Host(PortId),
}

impl NetNode {
    /// Returns the cube id if this node is a cube.
    pub fn as_cube(self) -> Option<CubeId> {
        match self {
            NetNode::Cube(c) => Some(c),
            NetNode::Host(_) => None,
        }
    }

    /// Returns the port id if this node is a host port.
    pub fn as_host(self) -> Option<PortId> {
        match self {
            NetNode::Host(p) => Some(p),
            NetNode::Cube(_) => None,
        }
    }

    /// Returns true if this node is a host access port.
    pub fn is_host(self) -> bool {
        matches!(self, NetNode::Host(_))
    }

    /// Encodes the node for checkpointed state.
    pub fn state_to_json(&self) -> Json {
        match self {
            NetNode::Cube(c) => Json::obj([("cube", Json::from(c.index()))]),
            NetNode::Host(p) => Json::obj([("host", Json::from(p.index()))]),
        }
    }

    /// Decodes a node produced by [`NetNode::state_to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when neither variant key is present.
    pub fn state_from_json(doc: &Json) -> Result<NetNode, JsonError> {
        if doc.get("cube").is_some() {
            Ok(NetNode::Cube(CubeId::new(doc.req_usize("cube")?)))
        } else if doc.get("host").is_some() {
            Ok(NetNode::Host(PortId::new(doc.req_usize("host")?)))
        } else {
            Err(JsonError::state("net node needs a \"cube\" or \"host\" field"))
        }
    }
}

impl fmt::Display for NetNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetNode::Cube(c) => write!(f, "{c}"),
            NetNode::Host(p) => write!(f, "host-{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_has_prefix() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(CubeId::new(15).to_string(), "cube15");
        assert_eq!(PortId::new(0).to_string(), "port0");
    }

    #[test]
    fn id_roundtrip_conversions() {
        let c: CubeId = 7usize.into();
        assert_eq!(usize::from(c), 7);
        assert_eq!(c.index(), 7);
    }

    #[test]
    fn flow_id_equality_depends_on_port() {
        let a = FlowId::new(0x1000, PortId::new(0));
        let b = FlowId::new(0x1000, PortId::new(1));
        assert_ne!(a, b);
        assert_eq!(a, FlowId::new(0x1000, PortId::new(0)));
    }

    #[test]
    fn flow_and_node_state_json_round_trips() {
        let flow = FlowId::new((1 << 60) | 0x40, PortId::new(3));
        let doc = Json::parse(&flow.state_to_json().render()).unwrap();
        assert_eq!(FlowId::state_from_json(&doc).unwrap(), flow);
        for node in [NetNode::Cube(CubeId::new(9)), NetNode::Host(PortId::new(2))] {
            let doc = Json::parse(&node.state_to_json().render()).unwrap();
            assert_eq!(NetNode::state_from_json(&doc).unwrap(), node);
        }
        assert!(NetNode::state_from_json(&Json::obj([("tile", Json::from(1_u64))])).is_err());
    }

    #[test]
    fn net_node_accessors() {
        let n = NetNode::Cube(CubeId::new(2));
        assert_eq!(n.as_cube(), Some(CubeId::new(2)));
        assert_eq!(n.as_host(), None);
        assert!(!n.is_host());
        let h = NetNode::Host(PortId::new(1));
        assert!(h.is_host());
        assert_eq!(h.as_host(), Some(PortId::new(1)));
        assert_eq!(h.to_string(), "host-port1");
    }
}
