//! Common foundation types shared by every crate in the Active-Routing
//! reproduction workspace.
//!
//! The crate is intentionally dependency-light: it only defines plain data
//! types — simulated physical [`addr::Addr`]esses, component identifiers,
//! reduction [`op::ReduceOp`]erations, network [`packet::Packet`]s, the
//! per-thread [`work::WorkItem`] representation consumed by the core model,
//! the [`config::SystemConfig`] describing Table 4.1 of the paper, and the
//! dependency-free [`json`] document model used for machine-readable reports.
//!
//! # Example
//!
//! ```
//! use ar_types::config::{SystemConfig, MemoryMode, OffloadScheme};
//!
//! let cfg = SystemConfig::paper().with_scheme(OffloadScheme::ArfTid);
//! assert_eq!(cfg.memory_mode, MemoryMode::HmcNetwork);
//! assert_eq!(cfg.cores.count, 16);
//! ```

pub mod addr;
pub mod config;
pub mod error;
pub mod hash;
pub mod ids;
pub mod json;
pub mod op;
pub mod packet;
pub mod pool;
pub mod work;

pub use addr::Addr;
pub use config::{MemoryMode, OffloadScheme, SystemConfig};
pub use error::ConfigError;
pub use ids::{CoreId, CubeId, FlowId, PortId, ThreadId, VaultId};
pub use json::{Json, JsonError};
pub use op::ReduceOp;
pub use packet::{ActiveKind, Packet, PacketKind};
pub use pool::{PacketPool, PacketRef};
pub use work::{WorkItem, WorkStream};

/// A simulation timestamp, measured in memory-network clock cycles (1 GHz in
/// the paper's configuration). The host cores run at 2 GHz, i.e. two core
/// cycles per network cycle.
pub type Cycle = u64;
