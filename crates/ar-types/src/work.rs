//! The per-thread work representation consumed by the core timing model.
//!
//! Instead of instrumenting x86 binaries with Pin (as the paper's McSimA+
//! front-end does), the workloads in this reproduction emit a stream of
//! [`WorkItem`]s per thread: compute blocks, loads/stores, atomic
//! read-modify-writes, and the `Update`/`Gather` offload commands of the
//! Active-Routing programming interface. The core model executes these items
//! through an ROB-limited out-of-order window, so the memory- and
//! offload-traffic timing matches what an execution-driven simulation of the
//! same kernel would produce to first order.

use crate::addr::Addr;
use crate::ids::ThreadId;
use crate::op::ReduceOp;
use std::collections::VecDeque;

/// One unit of work executed by a thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkItem {
    /// `n` back-to-back ALU instructions with no memory access.
    Compute(u32),
    /// A load from the given address (goes through the cache hierarchy).
    Load(Addr),
    /// A store to the given address (write-allocate, goes through the caches).
    Store(Addr),
    /// An atomic read-modify-write on a (typically shared) address. Models the
    /// `atomic diff += loc_diff` pattern of the baseline kernels: it costs a
    /// coherence round trip that invalidates other sharers.
    AtomicRmw {
        /// Address of the shared variable.
        addr: Addr,
    },
    /// An offloaded `Update(src1, src2, target, op)` command (Section 3.1.1).
    Update {
        /// Operation to perform near data.
        op: ReduceOp,
        /// First source operand address.
        src1: Addr,
        /// Optional second source operand address.
        src2: Option<Addr>,
        /// Optional immediate operand (for `const_assign`).
        imm: Option<f64>,
        /// Target (accumulator) address identifying the flow.
        target: Addr,
    },
    /// An offloaded `Gather(target, num_threads)` command.
    Gather {
        /// Target (accumulator) address identifying the flow.
        target: Addr,
        /// Reduction operation of the flow (needed to merge tree results).
        op: ReduceOp,
        /// Number of threads participating in the implicit barrier at the
        /// ARTree root.
        num_threads: u32,
        /// If true, the issuing thread blocks (and does not issue younger
        /// instructions) until the gathered result returns — required when
        /// later code reads the result or overwrites the flow's operands. If
        /// false, the gather is fire-and-forget and later independent work
        /// overlaps with the in-network reduction.
        wait: bool,
    },
    /// A software barrier: the thread blocks until all threads reach the
    /// barrier with the same id.
    Barrier {
        /// Barrier identifier (must be issued in the same order by every
        /// participating thread).
        id: u32,
    },
}

impl WorkItem {
    /// Dynamic instruction count of an `Update` item, as a named constant
    /// for closed-form schedules (the offload-drain planner) that fold it
    /// into scalar arithmetic instead of matching on an item in hand. Must
    /// agree with [`WorkItem::instruction_count`].
    pub const UPDATE_INSNS: u64 = 3;

    /// Number of dynamic instructions this item represents (used for IPC
    /// accounting, Fig. 5.8).
    pub fn instruction_count(&self) -> u64 {
        match self {
            WorkItem::Compute(n) => u64::from(*n),
            WorkItem::Load(_) | WorkItem::Store(_) => 1,
            WorkItem::AtomicRmw { .. } => 2,
            // An Update is the extended instruction plus the address
            // generation feeding the MI registers.
            WorkItem::Update { .. } => 3,
            WorkItem::Gather { .. } => 1,
            WorkItem::Barrier { .. } => 1,
        }
    }

    /// Returns true if the item accesses memory through the cache hierarchy.
    pub fn is_memory_access(&self) -> bool {
        matches!(self, WorkItem::Load(_) | WorkItem::Store(_) | WorkItem::AtomicRmw { .. })
    }

    /// Returns true if the item is an Active-Routing offload command.
    pub fn is_offload(&self) -> bool {
        matches!(self, WorkItem::Update { .. } | WorkItem::Gather { .. })
    }
}

/// The full stream of work items for one thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkStream {
    /// The thread that executes this stream.
    pub thread: ThreadId,
    items: VecDeque<WorkItem>,
}

impl WorkStream {
    /// Creates an empty stream for the given thread.
    pub fn new(thread: ThreadId) -> Self {
        WorkStream { thread, items: VecDeque::new() }
    }

    /// Appends one item to the stream.
    pub fn push(&mut self, item: WorkItem) {
        self.items.push_back(item);
    }

    /// Appends all items from an iterator.
    pub fn extend<I: IntoIterator<Item = WorkItem>>(&mut self, items: I) {
        self.items.extend(items);
    }

    /// Removes and returns the next item, or `None` when the stream is done.
    pub fn pop(&mut self) -> Option<WorkItem> {
        self.items.pop_front()
    }

    /// Peeks at the next item without consuming it.
    pub fn peek(&self) -> Option<&WorkItem> {
        self.items.front()
    }

    /// Number of remaining items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns true if no items remain.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the remaining items.
    pub fn iter(&self) -> impl Iterator<Item = &WorkItem> {
        self.items.iter()
    }

    /// Total number of dynamic instructions represented by the remaining
    /// items.
    pub fn instruction_count(&self) -> u64 {
        self.items.iter().map(WorkItem::instruction_count).sum()
    }

    /// Number of remaining `Update` items (used by the experiments to report
    /// offload counts).
    pub fn update_count(&self) -> u64 {
        self.items.iter().filter(|i| matches!(i, WorkItem::Update { .. })).count() as u64
    }

    /// Number of remaining memory-access items.
    pub fn memory_access_count(&self) -> u64 {
        self.items.iter().filter(|i| i.is_memory_access()).count() as u64
    }
}

impl FromIterator<WorkItem> for WorkStream {
    fn from_iter<I: IntoIterator<Item = WorkItem>>(iter: I) -> Self {
        let mut s = WorkStream::new(ThreadId::new(0));
        s.extend(iter);
        s
    }
}

impl Extend<WorkItem> for WorkStream {
    fn extend<I: IntoIterator<Item = WorkItem>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_fifo() {
        let mut s = WorkStream::new(ThreadId::new(1));
        s.push(WorkItem::Compute(4));
        s.push(WorkItem::Load(Addr::new(64)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop(), Some(WorkItem::Compute(4)));
        assert_eq!(s.pop(), Some(WorkItem::Load(Addr::new(64))));
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn instruction_counting() {
        let mut s = WorkStream::new(ThreadId::new(0));
        s.push(WorkItem::Compute(10));
        s.push(WorkItem::Load(Addr::new(0)));
        s.push(WorkItem::Update {
            op: ReduceOp::Mac,
            src1: Addr::new(0),
            src2: Some(Addr::new(64)),
            imm: None,
            target: Addr::new(128),
        });
        assert_eq!(s.instruction_count(), 10 + 1 + 3);
        assert_eq!(s.update_count(), 1);
        assert_eq!(s.memory_access_count(), 1);
    }

    #[test]
    fn item_classification() {
        assert!(WorkItem::Load(Addr::new(0)).is_memory_access());
        assert!(!WorkItem::Compute(1).is_memory_access());
        assert!(WorkItem::Gather {
            target: Addr::new(0),
            op: ReduceOp::Sum,
            num_threads: 4,
            wait: true
        }
        .is_offload());
        assert!(!WorkItem::Barrier { id: 0 }.is_offload());
    }

    #[test]
    fn collect_from_iterator() {
        let s: WorkStream = (0..5).map(|i| WorkItem::Load(Addr::new(i * 64))).collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.iter().count(), 5);
    }
}
