//! A fast, deterministic hasher for the simulator's hot lookup tables.
//!
//! The timing-critical maps of the workspace — the coherence directory, the
//! outstanding-transaction and vault-purpose tables, the functional memory —
//! are all keyed by small integers (block indices, transaction ids,
//! addresses) and are hit several times per simulated memory access. The
//! standard library's default SipHash spends more time hashing the 8-byte
//! key than the probe itself costs; this multiply-rotate hasher (the
//! Fx/rustc scheme) reduces that to a couple of ALU ops.
//!
//! Two properties matter here beyond speed:
//!
//! * **Determinism.** The standard hasher is randomly seeded per process;
//!   this one is fixed, so two runs of the same simulation probe the same
//!   buckets in the same order. (No map in the workspace is *iterated* in a
//!   way that reaches the timing model or the reports — the golden corpus
//!   pins that — but deterministic probing keeps wall-clock comparisons
//!   honest too.)
//! * **No DoS resistance.** These tables are fed by the simulator itself,
//!   never by untrusted input, so SipHash's flooding protection buys
//!   nothing.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the Fx hashing scheme (a 64-bit value close
/// to 2^64 / φ, spreading consecutive integers across the full width).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// A non-cryptographic, deterministic hasher: rotate, xor, multiply per
/// word. Ideal for integer-keyed tables; do not use for untrusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte string with 64-bit FNV-1a.
///
/// Unlike [`FastHasher`] (a per-word scheme tuned for hash-*table* probes),
/// FNV-1a consumes the input byte by byte, so the digest of a rendered
/// document is independent of how the caller chunks it — the property a
/// *content address* needs. The sweep-server result cache keys every report
/// by `fnv1a_64` of the canonical JSON encoding of its inputs
/// ([`crate::json::Json::content_hash`]).
///
/// This is not a cryptographic hash: it protects against accidental
/// collisions and corruption, not against an adversary crafting keys. Cache
/// consumers additionally store the full key document next to each entry and
/// compare it on lookup, so even an FNV collision degrades to a cache miss
/// rather than a wrong report.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A `HashMap` using [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` using [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_behaves_like_a_map() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.remove(&0), Some(0));
        assert_eq!(m.get(&0), None);
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let hash_of = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash_of(42), hash_of(42));
        // Consecutive small integers (the dominant key shape) must not
        // collide in the low bits the table indexes with.
        let mut low: FastHashSet<u64> = FastHashSet::default();
        for i in 0..1_000 {
            low.insert(hash_of(i) & 0xFFFF);
        }
        assert!(low.len() > 900, "low bits must spread ({} distinct)", low.len());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        // Chunking must not matter: the digest is a pure function of bytes.
        let doc = br#"{"config":"ARF-tid","workload":"pagerank"}"#;
        assert_eq!(fnv1a_64(doc), fnv1a_64(&[&doc[..7], &doc[7..]].concat()));
    }

    #[test]
    fn byte_writes_match_word_writes_for_whole_words() {
        let mut a = FastHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
